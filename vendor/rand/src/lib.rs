//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8 API
//! that Digest uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the three trait surfaces it needs — [`RngCore`], [`SeedableRng`], and the
//! [`Rng`] extension trait — together with unbiased range sampling and the
//! [`seq::SliceRandom`] helpers. The implementations are deliberately small,
//! deterministic, and allocation-free; every consumer in the workspace drives
//! them through an explicit, seeded `rand_chacha::ChaCha8Rng`-style
//! generator, so no thread-local or OS entropy source is provided at all
//! (which is exactly what Digest's determinism policy wants).

#![forbid(unsafe_code)]

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let take = rem.len();
            rem.copy_from_slice(&bytes[..take]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (same construction as
    /// upstream `rand 0.8`) and builds the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        let mut chunks = seed.as_mut().chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = sm.next_u32().to_le_bytes();
            let take = rem.len();
            rem.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only for seed expansion in [`SeedableRng::seed_from_u64`].
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A half-open range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; the range must be non-empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that support uniform sampling from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[low, high)`; the range must be non-empty.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

// The single generic impl ties the sampled type to the range's element type,
// which is what lets integer/float literal inference work (`0.0..1.0` ⇒
// `f64` without annotations), mirroring upstream `rand`.
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits, the standard conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer sampling in `[0, span)` via widening multiply + rejection
/// (Lemire's method).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = low + u * (high - low);
        // Guard against round-up to `high` at the boundary.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = low + u * (high - low);
        if v >= high {
            low
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let off = uniform_u64_below(rng, span);
                ((low as $u).wrapping_add(off as $u)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        Rr: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` saturates (`p <= 0` → always false, `p >= 1` →
    /// always true), matching how Digest's callers clamp probabilities.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(p.is_finite(), "gen_bool called with non-finite probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`).

    use super::{uniform_u64_below, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element reference (`None` when empty).
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_u64_below(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix so the stream is well distributed.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: i64 = rng.gen_range(-8..-2);
            assert!((-8..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_saturates() {
        let mut rng = Counter(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((600..1400).contains(&hits), "p=0.25 hits {hits}/4000");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_covers() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
