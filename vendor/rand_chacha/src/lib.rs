//! Vendored ChaCha8 random number generator.
//!
//! A real ChaCha stream cipher core (8 rounds), exposed through the vendored
//! [`rand::RngCore`] / [`rand::SeedableRng`] traits. The word stream is not
//! bit-identical to upstream `rand_chacha` (block-to-word serialisation
//! differs), but it is a cryptographically mixed, fully deterministic,
//! seedable generator — which is the property Digest's simulator and
//! estimators rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// ChaCha8-based deterministic RNG (64-bit block counter, zero nonce).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer` (`BLOCK_WORDS` ⇒ refill needed).
    index: usize,
}

#[inline(always)]
fn quarter_round(v: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    v[a] = v[a].wrapping_add(v[b]);
    v[d] = (v[d] ^ v[a]).rotate_left(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_left(12);
    v[a] = v[a].wrapping_add(v[b]);
    v[d] = (v[d] ^ v[a]).rotate_left(8);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(chunk);
            state[4 + i] = u32::from_le_bytes(bytes);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..17 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity: bit balance of the keystream (crude statistical check).
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let total = 64_000f64;
        let frac = f64::from(ones) / total;
        assert!((0.48..0.52).contains(&frac), "bit fraction {frac}");
    }
}
