//! Vendored, dependency-free micro-benchmark harness.
//!
//! Implements the slice of the `criterion` API that Digest's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are a
//! simple median-of-runs over `std::time::Instant`; there is no statistical
//! regression analysis, plots, or baselines — just honest per-iteration
//! timings printed to stdout so `cargo bench` works offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches.
    SmallInput,
    /// Large per-iteration inputs; modest batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Collects timing samples for a single benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: u64,
}

/// Target measurement runs per benchmark (kept small: this harness is a
/// smoke-level timer, not a statistics engine).
const MEASUREMENT_RUNS: usize = 15;

impl Bencher {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            iterations: 0,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..MEASUREMENT_RUNS {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            self.iterations += 1;
            drop(out);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let per_batch = size.iters_per_batch();
        let mut done = 0u64;
        while done < MEASUREMENT_RUNS as u64 {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            for input in inputs {
                let start = Instant::now();
                let out = routine(input);
                self.samples.push(start.elapsed());
                drop(out);
                done += 1;
                self.iterations += 1;
                if done >= MEASUREMENT_RUNS as u64 {
                    break;
                }
            }
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

/// Benchmark registry / runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        println!(
            "bench {name:<40} {:>12} ns/iter ({} iterations)",
            bencher.median_ns(),
            bencher.iterations
        );
        self
    }
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= MEASUREMENT_RUNS as u64);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut criterion = Criterion::default();
        criterion.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        criterion.bench_function("per_iteration", |b| {
            b.iter_batched(|| 1u8, |x| x, BatchSize::PerIteration);
        });
    }
}
