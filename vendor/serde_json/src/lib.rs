//! Vendored, dependency-free JSON value type and serialiser.
//!
//! Implements the subset of the `serde_json` API used by Digest's
//! experiment harness: [`Value`], [`Map`], the [`json!`] macro,
//! [`to_string`] and [`to_string_pretty`]. Object keys are stored in a
//! `BTreeMap`, so serialisation order is always sorted and deterministic
//! (matching upstream `serde_json` without its `preserve_order` feature —
//! and matching Digest's determinism policy).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON object: string keys to values, sorted by key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair, returning the previous value if any.
    ///
    /// Takes `String` (not `impl Into<String>`) to match upstream
    /// `serde_json`, whose callers rely on `"key".into()` inference.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`; non-finite values serialise as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// Shared `null` for missing-key indexing.
const NULL: Value = Value::Null;

impl Value {
    /// The value as `f64` when it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && *n == n.trunc() => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integral number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if *n == n.trunc() => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array when it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object when it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Object field lookup; `None` unless this is an object with the key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn write_indented(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    item.write_indented(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1, pretty);
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write_indented(out, indent + 1, pretty);
                }
                newline_indent(out, indent, pretty);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_indented(&mut out, 0, false);
        f.write_str(&out)
    }
}

/// Serialisation error type. This vendored serialiser is infallible, but the
/// upstream-compatible signatures return `Result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises a value to a compact JSON string.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write_indented(&mut out, 0, false);
    Ok(out)
}

/// Serialises a value to a 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails in this vendored implementation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write_indented(&mut out, 0, true);
    Ok(out)
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
            fn from(n: $t) -> Self {
                Value::Number(n as f64)
            }
        }
    )*};
}

impl_from_number!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; yields `Null` for missing keys or non-objects,
    /// matching upstream `serde_json` indexing semantics.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; yields `Null` out of bounds or for non-arrays.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] when the input is not valid JSON (the message carries
/// a byte offset).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error)
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error)
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error)
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
            None => Err(Error),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(Error);
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or(Error)?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or(Error)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4).ok_or(Error)?;
                            let hex = std::str::from_utf8(hex).map_err(|_| Error)?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
        text.parse::<f64>().map(Value::Number).map_err(|_| Error)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            if self.peek() != Some(b':') {
                return Err(Error);
            }
            self.pos += 1;
            map.insert(key, self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax (objects, arrays, literals, and
/// interpolated Rust expressions).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array [] $($tt)+)
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal token muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- Arrays: accumulate element exprs, splitting on top-level commas.
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([ $($inner)* ])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($inner)* })] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::from($value)] $($($rest)*)?)
    };

    // ---- Objects: `@object <map ident> (<pending key tokens>) <rest>`.
    (@object $map:ident ()) => {};
    // Key collected, value is a nested object literal.
    (@object $map:ident ($key:expr) : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    // Key collected, value is a nested array literal.
    (@object $map:ident ($key:expr) : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    // Key collected, value is `null`.
    (@object $map:ident ($key:expr) : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    // Key collected, value is a general expression up to the next top-level
    // comma.
    (@object $map:ident ($key:expr) : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::from($value));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    // Collect the key (a literal) then continue at the colon.
    (@object $map:ident () $key:literal $($rest:tt)*) => {
        $crate::json_internal!(@object $map ($key) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(2.5), Value::Number(2.5));
        assert_eq!(json!("hi"), Value::String("hi".into()));
        let n = 3u64;
        assert_eq!(json!(n), Value::Number(3.0));
    }

    #[test]
    fn objects_serialise_sorted_and_nested() {
        let rows = vec![json!(1), json!(2)];
        let v = json!({
            "b": 2,
            "a": { "inner": [1, 2.5, "x"], "empty": {} },
            "rows": rows,
            "maybe": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"a":{"empty":{},"inner":[1,2.5,"x"]},"b":2,"maybe":null,"rows":[1,2]}"#
        );
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let v = json!({ "k": [1, 2], "s": "line\nbreak" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n    1,\n    2\n  ]"));
        assert!(pretty.contains("\\n"));
        assert_eq!(to_string_pretty(&v).unwrap(), pretty);
    }

    #[test]
    fn map_api_matches_usage() {
        let mut m = Map::new();
        m.insert("x".to_string(), json!(1));
        m.insert("y".into(), json!({"z": 2}));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("x"), Some(&Value::Number(1.0)));
        let v = Value::Object(m);
        assert_eq!(to_string(&v).unwrap(), r#"{"x":1,"y":{"z":2}}"#);
    }

    #[test]
    fn numbers_format_like_json() {
        assert_eq!(to_string(&json!(1.0)).unwrap(), "1");
        assert_eq!(to_string(&json!(0.5)).unwrap(), "0.5");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(-3i64)).unwrap(), "-3");
    }

    #[test]
    fn parse_round_trips() {
        let v = json!({
            "a": [1, -2.5, "x\ny", true, null],
            "b": { "nested": 1e3 },
        });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 trailing").is_err());
    }

    #[test]
    fn indexing_yields_null_for_missing() {
        let v = json!({ "rows": [ {"x": 1} ] });
        assert_eq!(v["rows"][0]["x"], Value::Number(1.0));
        assert_eq!(v["rows"][7], Value::Null);
        assert_eq!(v["nope"]["deep"], Value::Null);
        assert_eq!(v["rows"][0]["x"].as_f64(), Some(1.0));
        assert_eq!(v["rows"].as_array().map(Vec::len), Some(1));
    }

    #[test]
    fn accessors_discriminate_types() {
        assert_eq!(json!(3).as_u64(), Some(3));
        assert_eq!(json!(-3).as_u64(), None);
        assert_eq!(json!(-3).as_i64(), Some(-3));
        assert_eq!(json!(0.5).as_i64(), None);
        assert_eq!(json!("s").as_str(), Some("s"));
        assert_eq!(json!(true).as_bool(), Some(true));
        assert!(json!({"k": 1}).as_object().is_some());
        assert_eq!(json!({"k": 1}).get("k"), Some(&Value::Number(1.0)));
        assert_eq!(json!([1]).get("k"), None);
    }

    #[test]
    fn expressions_with_calls_and_conditionals() {
        fn double(x: u32) -> u32 {
            x * 2
        }
        let nan = f64::NAN;
        let v = json!({
            "call": double(4),
            "cond": if nan.is_nan() { Value::Null } else { json!(nan) },
        });
        assert_eq!(to_string(&v).unwrap(), r#"{"call":8,"cond":null}"#);
    }
}
