//! Vendored, dependency-free property-testing harness.
//!
//! Implements the subset of the `proptest` API that Digest's test suites
//! use: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map`, range and
//! tuple strategies, [`strategy::Just`], `prop::collection::vec`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports the case
//! index and seed instead of a minimised input) and sampling is driven by a
//! fixed per-test seed derived from the test name, so runs are fully
//! deterministic — in line with Digest's determinism policy.

#![forbid(unsafe_code)]
// Boxed-closure strategy types mirror the upstream API surface; aliasing
// them here would just rename the complexity.
#![allow(clippy::type_complexity)]

pub mod test_runner {
    //! Deterministic random source for strategy sampling.

    /// SplitMix64-based test RNG. Good distribution, trivially seedable.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from an explicit value.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Creates an RNG deterministically seeded from a test name
        /// (FNV-1a hash), so every test gets its own reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "below(0) is undefined");
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(span);
                let low = m as u64;
                if low >= span.wrapping_neg() % span {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// Builds a union from sampler closures; must be non-empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            (self.arms[arm])(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    let off = rng.below(span);
                    ((self.start as $u).wrapping_add(off as $u)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `&str` strategies are regex patterns generating matching strings
    /// (upstream proptest behaviour). Only the subset needed here is
    /// supported: literal chars, `.`, escaped chars, `[...]` classes with
    /// ranges, and the quantifiers `{m}` / `{m,n}` / `*` / `+` / `?`.
    /// Unsupported syntax panics with a clear message at sampling time.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    const PRINTABLE: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-+*/().,";

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class, an escaped char, `.`, or a literal.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let class: Vec<char> = chars[i + 1..i + close].to_vec();
                    i += close + 1;
                    expand_class(&class, pattern)
                }
                '\\' => {
                    i += 2;
                    vec![*chars
                        .get(i - 1)
                        .unwrap_or_else(|| panic!("dangling \\ in pattern {pattern:?}"))]
                }
                '.' => {
                    i += 1;
                    PRINTABLE.iter().map(|&b| b as char).collect()
                }
                c if "(){}*+?|^$".contains(c) => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let spec: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<usize>().unwrap_or(0),
                            hi.trim().parse::<usize>().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse::<usize>().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[pick]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(
            class.first() != Some(&'^'),
            "negated classes unsupported in pattern {pattern:?}"
        );
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            match class[j] {
                '\\' => {
                    j += 1;
                    if let Some(&c) = class.get(j) {
                        alphabet.push(c);
                        j += 1;
                    }
                }
                c if class.get(j + 1) == Some(&'-') && j + 2 < class.len() => {
                    let hi = class[j + 2];
                    for code in (c as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            alphabet.push(ch);
                        }
                    }
                    j += 3;
                }
                c => {
                    alphabet.push(c);
                    j += 1;
                }
            }
        }
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        alphabet
    }

    /// Strategy producing `Vec`s with length drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
        pub(crate) _marker: PhantomData<S>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::{Strategy, VecStrategy};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// `Vec` strategy with element strategy `element` and length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len,
            _marker: PhantomData,
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$(
            {
                let arm = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::new_value(&arm, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }
        ),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B(u32),
    }

    fn tag_strategy() -> impl Strategy<Value = Tag> {
        prop_oneof![Just(Tag::A), (1u32..5).prop_map(Tag::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_covers_arms(tags in prop::collection::vec(tag_strategy(), 8..32)) {
            for t in &tags {
                match t {
                    Tag::A => {}
                    Tag::B(k) => prop_assert!((1..5).contains(k)),
                }
            }
        }

        #[test]
        fn regex_strategies_match_their_class(s in "[a-c0-2+\\-. ]{2,10}") {
            prop_assert!(s.len() >= 2 && s.len() <= 10);
            prop_assert!(s.chars().all(|c| "abc012+-. ".contains(c)));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, -2i64..2)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((-2..2).contains(&pair.1));
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(x in 0u32..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("det");
        let mut b = crate::test_runner::TestRng::for_test("det");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
