//! Std-only stand-in for the `loom` concurrency model checker.
//!
//! The build environment has no crates.io access, so — like the vendored
//! `rand` / `proptest` / `criterion` stand-ins — this crate implements the
//! API *subset* Digest's `--cfg loom` protocol tests use, not the full
//! upstream crate:
//!
//! * [`model`] — runs a closure under every distinguishable thread
//!   interleaving (depth-first schedule exploration).
//! * [`thread::spawn`] / [`thread::JoinHandle`] — model threads.
//! * [`sync::atomic::AtomicUsize`] / [`sync::atomic::AtomicU64`] /
//!   [`sync::atomic::AtomicBool`] — atomics whose every operation is a
//!   scheduling point.
//! * [`sync::Mutex`] / [`sync::OnceLock`] / [`sync::Arc`] — blocking and
//!   write-once cells with scheduling points.
//!
//! # How it works
//!
//! Each execution serializes the model's threads: exactly one thread runs
//! at a time, and every visible operation (atomic access, lock, unlock,
//! once-set, spawn, join) is a *decision point* where the scheduler picks
//! which runnable thread performs the next operation. The scheduler
//! records the runnable set at each decision; after the execution
//! finishes, it backtracks depth-first to the last decision with an
//! untried alternative and replays. The exploration therefore visits
//! every interleaving of visible operations exactly once.
//!
//! # Divergence from upstream loom
//!
//! Upstream loom additionally models C11 weak-memory effects (stale
//! `Relaxed` loads, store buffering). This stand-in explores
//! *interleavings only* — every atomic op is effectively `SeqCst` — so it
//! proves mutual-exclusion/uniqueness/lost-update properties but not
//! memory-ordering-sensitivity. Digest pairs it with ThreadSanitizer in
//! CI, which covers the data-race blind spot on real hardware.
//!
//! The exploration budget is bounded by `LOOM_MAX_ITERATIONS`
//! (default 1 000 000 executions); exceeding it panics so an accidental
//! state-space explosion fails loudly instead of hanging CI.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, PoisonError};

const OUTSIDE_MODEL: &str =
    "loom primitive used outside loom::model — wrap the test body in loom::model(|| ...)";
const ABANDONED: &str = "loom execution abandoned (another thread panicked or deadlocked)";

/// Run state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Schedulable: may be picked at the next decision point.
    Runnable,
    /// Waiting for a mutex to be released.
    BlockedOnMutex(usize),
    /// Waiting for another thread to finish.
    BlockedOnJoin(usize),
    /// Completed.
    Finished,
}

/// Mutable scheduler state of one execution.
#[derive(Debug, Default)]
struct ExecState {
    threads: Vec<Run>,
    /// The single thread currently allowed to run.
    active: usize,
    /// Thread chosen at each decision point. The prefix inherited from
    /// the previous execution is replayed; the suffix is recorded fresh.
    schedule: Vec<usize>,
    /// The runnable set each decision chose from (for backtracking).
    choices: Vec<Vec<usize>>,
    /// Next position in `schedule`.
    step: usize,
    /// Held-state of each registered mutex.
    mutexes: Vec<bool>,
    /// Set when a thread panicked or a deadlock was detected: every
    /// waiting thread wakes and unwinds.
    abandoned: bool,
}

/// One execution's scheduler: a token (`active`) passed between OS
/// threads at decision points.
struct Execution {
    state: StdMutex<ExecState>,
    cond: Condvar,
}

impl Execution {
    fn new(prefix: Vec<usize>) -> Self {
        Self {
            state: StdMutex::new(ExecState {
                threads: vec![Run::Runnable], // thread 0: the model closure
                schedule: prefix,
                ..ExecState::default()
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes one scheduling decision: picks the next thread to run from
    /// the current runnable set (replaying the inherited prefix when one
    /// remains), records the choice, and wakes everyone so the chosen
    /// thread can proceed.
    fn reschedule(&self, s: &mut ExecState) {
        let runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if s.threads.iter().all(|r| *r == Run::Finished) {
                // Execution complete; nothing to schedule.
                self.cond.notify_all();
                return;
            }
            s.abandoned = true;
            self.cond.notify_all();
            panic!(
                "loom: deadlock — no runnable thread (states: {:?}, schedule so far: {:?})",
                s.threads, s.schedule
            );
        }
        let chosen = if s.step < s.schedule.len() {
            let c = s.schedule[s.step];
            assert!(
                runnable.contains(&c),
                "loom: replay divergence — schedule wanted thread {c} but runnable set is \
                 {runnable:?}; the model closure must be deterministic apart from scheduling"
            );
            c
        } else {
            let c = runnable[0];
            s.schedule.push(c);
            c
        };
        if s.step >= s.choices.len() {
            s.choices.push(runnable);
        }
        s.step += 1;
        s.active = chosen;
        self.cond.notify_all();
    }

    /// A decision point before a visible operation by the current thread.
    fn yield_point(&self, me: usize) {
        let mut s = self.lock();
        if s.abandoned {
            panic!("{ABANDONED}");
        }
        self.reschedule(&mut s);
        while s.active != me {
            if s.abandoned {
                panic!("{ABANDONED}");
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.abandoned {
            panic!("{ABANDONED}");
        }
    }

    /// Parks the current thread as `how` until it is both runnable again
    /// and scheduled. The unblocking side flips the state to `Runnable`.
    fn block(&self, me: usize, how: Run) {
        let mut s = self.lock();
        if s.abandoned {
            panic!("{ABANDONED}");
        }
        s.threads[me] = how;
        self.reschedule(&mut s);
        while !(s.threads[me] == Run::Runnable && s.active == me) {
            if s.abandoned {
                panic!("{ABANDONED}");
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.abandoned {
            panic!("{ABANDONED}");
        }
    }

    /// Registers a freshly spawned model thread and returns its id.
    fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(Run::Runnable);
        s.threads.len() - 1
    }

    /// A new thread's first wait: it may not run until first scheduled.
    fn wait_first(&self, me: usize) {
        let mut s = self.lock();
        while s.active != me {
            if s.abandoned {
                panic!("{ABANDONED}");
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Joins `target`: a plain decision point when it already finished,
    /// otherwise blocks until its [`Execution::finish`] wakes us.
    fn join_thread(&self, me: usize, target: usize) {
        let finished = { self.lock().threads[target] == Run::Finished };
        // No decision point separates the check from the block, so the
        // target's state cannot change in between (threads are
        // serialized).
        if finished {
            self.yield_point(me);
        } else {
            self.block(me, Run::BlockedOnJoin(target));
        }
    }

    /// Marks `me` finished, wakes its joiners, and schedules a successor.
    fn finish(&self, me: usize) {
        let mut s = self.lock();
        s.threads[me] = Run::Finished;
        for r in s.threads.iter_mut() {
            if *r == Run::BlockedOnJoin(me) {
                *r = Run::Runnable;
            }
        }
        if s.abandoned {
            self.cond.notify_all();
            return;
        }
        self.reschedule(&mut s);
    }

    fn abandon(&self) {
        let mut s = self.lock();
        s.abandoned = true;
        self.cond.notify_all();
    }

    fn register_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutexes.push(false);
        s.mutexes.len() - 1
    }

    /// Decision point + blocking acquire of model mutex `id`.
    fn acquire_mutex(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            {
                let mut s = self.lock();
                if !s.mutexes[id] {
                    s.mutexes[id] = true;
                    return;
                }
            }
            self.block(me, Run::BlockedOnMutex(id));
        }
    }

    /// Releases model mutex `id`, waking its waiters (a decision point).
    fn release_mutex(&self, me: usize, id: usize) {
        {
            let mut s = self.lock();
            s.mutexes[id] = false;
            for r in s.threads.iter_mut() {
                if *r == Run::BlockedOnMutex(id) {
                    *r = Run::Runnable;
                }
            }
        }
        self.yield_point(me);
    }

    /// Blocks until every model thread has finished (used by [`model`]
    /// to close out one execution).
    fn wait_all_finished(&self) {
        let mut s = self.lock();
        while !s.threads.iter().all(|r| *r == Run::Finished) {
            if s.abandoned {
                // Threads still unwind to Finished after abandonment;
                // keep waiting so no OS thread outlives the execution.
                let all_done = s.threads.iter().all(|r| *r == Run::Finished);
                if all_done {
                    break;
                }
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_trace(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let mut s = self.lock();
        (
            std::mem::take(&mut s.schedule),
            std::mem::take(&mut s.choices),
        )
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(StdArc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (StdArc<Execution>, usize) {
    CURRENT.with(|c| c.borrow().clone()).expect(OUTSIDE_MODEL)
}

fn set_current(exec: StdArc<Execution>, id: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, id)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A decision point for the calling model thread.
fn schedule_point() {
    let (exec, me) = current();
    exec.yield_point(me);
}

/// Computes the schedule prefix of the next unexplored execution, or
/// `None` when the space is exhausted.
fn next_prefix(mut schedule: Vec<usize>, mut choices: Vec<Vec<usize>>) -> Option<Vec<usize>> {
    loop {
        let chosen = schedule.pop()?;
        let alts = choices.pop()?;
        if let Some(pos) = alts.iter().position(|&t| t == chosen) {
            if pos + 1 < alts.len() {
                schedule.push(alts[pos + 1]);
                return Some(schedule);
            }
        }
    }
}

fn iteration_budget() -> u64 {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Explores every thread interleaving of `f`.
///
/// `f` is re-run once per distinguishable schedule; any panic in any
/// model thread fails the exploration with the offending schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let budget = iteration_budget();
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= budget,
            "loom: exploration exceeded {budget} executions — shrink the model or raise \
             LOOM_MAX_ITERATIONS"
        );
        let exec = StdArc::new(Execution::new(prefix.clone()));
        let exec_main = StdArc::clone(&exec);
        let f_main = StdArc::clone(&f);
        let main = std::thread::Builder::new()
            .name("loom-main".into())
            .spawn(move || {
                set_current(StdArc::clone(&exec_main), 0);
                let result = catch_unwind(AssertUnwindSafe(|| f_main()));
                if result.is_err() {
                    exec_main.abandon();
                }
                // `finish` can itself panic (deadlock detection fires in
                // whichever thread observes it); fold that into the
                // execution result instead of killing the OS thread.
                let finished = catch_unwind(AssertUnwindSafe(|| exec_main.finish(0)));
                clear_current();
                match (result, finished) {
                    (Ok(()), Err(payload)) => Err(payload),
                    (result, _) => result,
                }
            })
            .expect("spawn loom main thread");
        let result = main.join().expect("loom main thread must not be killed");
        exec.wait_all_finished();
        let (schedule, choices) = exec.take_trace();
        if let Err(payload) = result {
            eprintln!("loom: model failed on execution #{iterations} with schedule {schedule:?}");
            resume_unwind(payload);
        }
        match next_prefix(schedule, choices) {
            Some(next) => prefix = next,
            None => break,
        }
    }
}

pub mod thread {
    //! Model threads: spawned threads are scheduled by the exploration,
    //! not the OS.

    use super::{
        catch_unwind, clear_current, current, schedule_point, set_current, AssertUnwindSafe,
        PoisonError, StdArc, StdMutex,
    };

    /// Handle to a spawned model thread (API subset of
    /// `std::thread::JoinHandle`).
    pub struct JoinHandle<T> {
        id: usize,
        os: std::thread::JoinHandle<()>,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes, then
        /// returns its result exactly like `std::thread::JoinHandle`.
        ///
        /// # Panics
        ///
        /// Panics if the result slot is empty, which would mean the
        /// model thread was killed rather than run to completion.
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = current();
            exec.join_thread(me, self.id);
            // The model thread has finished; its OS thread exits
            // momentarily — this join never blocks on model state.
            self.os.join().expect("loom worker OS thread");
            self.result
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("loom thread finished without storing a result")
        }
    }

    /// Spawns a model thread. The child does not run until the
    /// exploration schedules it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, _me) = current();
        let id = exec.register_thread();
        let result = StdArc::new(StdMutex::new(None));
        let result_slot = StdArc::clone(&result);
        let exec_child = StdArc::clone(&exec);
        let os = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                set_current(StdArc::clone(&exec_child), id);
                // Catch the abandonment panic from `wait_first` too, so
                // the result slot is always written and `finish` always
                // runs — `wait_all_finished` depends on it.
                let r = catch_unwind(AssertUnwindSafe(|| {
                    exec_child.wait_first(id);
                    f()
                }));
                if r.is_err() {
                    exec_child.abandon();
                }
                *result_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                let _ = catch_unwind(AssertUnwindSafe(|| exec_child.finish(id)));
                clear_current();
            })
            .expect("spawn loom worker thread");
        // Spawning is itself a visible operation: give the scheduler a
        // decision point so the child may run before the parent's next op.
        schedule_point();
        JoinHandle { id, os, result }
    }
}

pub mod sync {
    //! Synchronization primitives whose operations are scheduling points.

    pub use std::sync::Arc;

    use super::{current, schedule_point, PoisonError, StdMutex};

    pub mod atomic {
        //! Model atomics. Executions are serialized, so operations are
        //! performed `SeqCst` on plain `std` atomics; the modelled
        //! behaviour is the interleaving of operations, not C11 weak
        //! memory (see the crate docs).

        pub use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Atomic whose every operation is a loom decision point.
                #[derive(Debug, Default)]
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// Creates the atomic (no decision point).
                    #[must_use]
                    pub fn new(v: $prim) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    /// Atomic load (decision point; ordering recorded
                    /// but executed `SeqCst`).
                    pub fn load(&self, _order: Ordering) -> $prim {
                        super::super::schedule_point();
                        self.v.load(Ordering::SeqCst)
                    }

                    /// Atomic store (decision point).
                    pub fn store(&self, v: $prim, _order: Ordering) {
                        super::super::schedule_point();
                        self.v.store(v, Ordering::SeqCst);
                    }

                    /// Atomic fetch-add (decision point).
                    pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                        super::super::schedule_point();
                        self.v.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Atomic swap (decision point).
                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        super::super::schedule_point();
                        self.v.swap(v, Ordering::SeqCst)
                    }

                    /// Atomic compare-exchange (decision point).
                    ///
                    /// # Errors
                    ///
                    /// Returns the observed value when it differs from
                    /// `currentv`.
                    pub fn compare_exchange(
                        &self,
                        currentv: $prim,
                        new: $prim,
                        _ok: Ordering,
                        _err: Ordering,
                    ) -> Result<$prim, $prim> {
                        super::super::schedule_point();
                        self.v
                            .compare_exchange(currentv, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        /// Atomic bool whose every operation is a loom decision point.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            v: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates the atomic (no decision point).
            #[must_use]
            pub fn new(v: bool) -> Self {
                Self {
                    v: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Atomic load (decision point).
            pub fn load(&self, _order: Ordering) -> bool {
                super::super::schedule_point();
                self.v.load(Ordering::SeqCst)
            }

            /// Atomic store (decision point).
            pub fn store(&self, v: bool, _order: Ordering) {
                super::super::schedule_point();
                self.v.store(v, Ordering::SeqCst);
            }

            /// Atomic swap (decision point).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                super::super::schedule_point();
                self.v.swap(v, Ordering::SeqCst)
            }
        }
    }

    /// Model mutex: acquisition order is explored by the scheduler.
    #[derive(Debug)]
    pub struct Mutex<T> {
        id: usize,
        data: StdMutex<T>,
    }

    /// Guard returned by [`Mutex::lock`]; releases at drop (a decision
    /// point).
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        id: usize,
    }

    impl<T> Mutex<T> {
        /// Creates and registers the mutex with the current execution.
        #[must_use]
        pub fn new(data: T) -> Self {
            let (exec, _) = current();
            Self {
                id: exec.register_mutex(),
                data: StdMutex::new(data),
            }
        }

        /// Blocking lock (decision point; contention explored).
        ///
        /// # Errors
        ///
        /// Never errs — poisoning is not modelled; the signature matches
        /// `std` so call sites stay identical.
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
            let (exec, me) = current();
            exec.acquire_mutex(me, self.id);
            Ok(MutexGuard {
                inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
                id: self.id,
            })
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after release")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after release")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            let (exec, me) = current();
            exec.release_mutex(me, self.id);
        }
    }

    /// Write-once cell (API subset of `std::sync::OnceLock`): concurrent
    /// `set` races are explored; reads happen after joins via `&mut`.
    #[derive(Debug, Default)]
    pub struct OnceLock<T> {
        data: StdMutex<Option<T>>,
    }

    impl<T> OnceLock<T> {
        /// Creates an empty cell (no decision point).
        #[must_use]
        pub fn new() -> Self {
            Self {
                data: StdMutex::new(None),
            }
        }

        /// Stores `v` if the cell is empty (decision point).
        ///
        /// # Errors
        ///
        /// Returns `v` back when the cell was already set — the signal a
        /// claim protocol double-assigned a slot.
        pub fn set(&self, v: T) -> Result<(), T> {
            schedule_point();
            let mut slot = self.data.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_some() {
                return Err(v);
            }
            *slot = Some(v);
            Ok(())
        }

        /// Takes the value out (exclusive access: no decision point).
        pub fn take(&mut self) -> Option<T> {
            self.data
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
        }

        /// Whether the cell has been set (exclusive access: no decision
        /// point — used by post-join assertions).
        pub fn is_set(&mut self) -> bool {
            self.data
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .is_some()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex, OnceLock};

    /// Two incrementing threads: the final count is always 2 because
    /// fetch_add is atomic; the exploration must terminate.
    #[test]
    fn counter_increments_are_atomic() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for handle in h {
                handle.join().unwrap();
            }
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
    }

    /// The canonical loom demo: a *non-atomic* read-modify-write (load
    /// then store) CAN lose an update under some interleaving — the
    /// explorer must find that schedule, proving it actually explores.
    #[test]
    fn exploration_finds_lost_updates() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        super::thread::spawn(move || {
                            let v = c.load(Ordering::Relaxed);
                            c.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for handle in h {
                    handle.join().unwrap();
                }
                assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
            });
        });
        assert!(found.is_err(), "the lost-update schedule must be found");
    }

    /// Mutual exclusion: a mutex-protected non-atomic counter never
    /// loses updates under any schedule.
    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model(|| {
            let c = Arc::new(Mutex::new(0_usize));
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    super::thread::spawn(move || {
                        let mut g = c.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for handle in h {
                handle.join().unwrap();
            }
            assert_eq!(*c.lock().unwrap(), 2);
        });
    }

    /// OnceLock: concurrent setters — exactly one wins in every
    /// interleaving.
    #[test]
    fn once_lock_single_winner() {
        super::model(|| {
            let cell = Arc::new(OnceLock::new());
            let h: Vec<_> = (0..2)
                .map(|i| {
                    let cell = Arc::clone(&cell);
                    super::thread::spawn(move || usize::from(cell.set(i).is_ok()))
                })
                .collect();
            let wins: usize = h.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(wins, 1, "exactly one setter must win");
            let mut cell = Arc::try_unwrap(cell).ok().expect("sole owner after joins");
            assert!(cell.take().is_some());
        });
    }
}
