//! `digest-cli` — run continuous queries against a simulated peer-to-peer
//! database from the command line.
//!
//! ```text
//! digest-cli [--world temperature|memory] [--ticks N] [--scheduler all|predK]
//!            [--estimator indep|rpt] [--sampling-workers N]
//!            "<STATEMENT>" ["<STATEMENT>" ...]
//! ```
//!
//! Each statement is a full continuous query, e.g.
//!
//! ```bash
//! cargo run --release --bin digest-cli -- --world temperature --ticks 120 \
//!   "SELECT AVG(temperature) FROM R WITH delta=3, epsilon=1, p=0.95" \
//!   "SELECT MEDIAN(temperature) FROM R WITH delta=3, epsilon=1, p=0.9"
//! ```
//!
//! The CLI builds the requested synthetic world, runs every query
//! side-by-side, prints each δ-update as it happens next to the oracle
//! truth, and closes with a cost summary.
//!
//! `--telemetry <path.jsonl>` additionally streams structured events
//! (one JSON object per line, sorted keys — see README "Telemetry") to
//! `path.jsonl` and appends a deterministic counter/stage summary table
//! to stdout.
//!
//! `--audit` attaches the continuous-guarantee auditor: per query, an
//! oracle computes the exact aggregate every tick, ε-violations and CI
//! calibration are tallied at each reporting occasion, and a same-run
//! message-cost ledger accounts what the `ALL` / `ALL+FILTER` push
//! baselines would have spent. `--audit-json <file>` writes the reports
//! as canonical JSON; `--trace-out <file>` exports the causal occasion
//! trace (span + instant events, `trace`-id envelopes) as Chrome/Perfetto
//! trace-event JSON.

use digest::audit::{MuxAudit, QueryAudit};
use digest::core::{
    AggregateOp, ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, MuxConfig, Precision,
    QueryMux, QuerySystem, SchedulerKind, TickContext, TickObserver,
};
use digest::db::{Expr, Schema};
use digest::sampling::SamplingConfig;
use digest::sim::RunConfig;
use digest::workload::{
    MemoryConfig, MemoryWorkload, TemperatureConfig, TemperatureWorkload, Workload,
};
use digest_telemetry::{Field, JsonlSink, MemorySink, MetricHandle, TeeSink};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Options {
    world: String,
    ticks: Option<u64>,
    scheduler: SchedulerKind,
    estimator: EstimatorKind,
    seed: u64,
    sampling_workers: Option<usize>,
    telemetry: Option<String>,
    audit: bool,
    audit_json: Option<String>,
    trace_out: Option<String>,
    event_loop: bool,
    mux: bool,
    queries_spec: Option<String>,
    statements: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: digest-cli [--world temperature|memory] [--ticks N] \
         [--scheduler all|pred<K>] [--estimator indep|rpt] [--seed S] \
         [--sampling-workers N] [--telemetry out.jsonl] [--audit] \
         [--audit-json report.json] [--trace-out trace.json] \
         [--event-loop] [--mux] [--queries N[@delta,epsilon,p]] \
         [--queries kind+kind+...[@delta,epsilon,p]] \
         \"SELECT ...\" [\"SELECT ...\"]\n\
         \n\
         --event-loop drives independent engines from scheduler due-time \
         hints instead of a dense tick sweep: ticks where every engine \
         reports a pure idle hold and the workload is quiet are skipped \
         outright. The trace is byte-identical to the dense loop by \
         contract (hints only ever name provably idle spans).\n\
         --mux serves all statements through one shared QueryMux (shared \
         sample panels, coalesced PRED-k rounds) instead of independent \
         engines; --queries additionally registers N generated AVG \
         queries — cycling a contract-tier mix, or all at the given \
         delta,epsilon,p — and implies --mux. A \"+\"-separated kind \
         list (avg|median|distinct|p<N>|top<K>, e.g. p90+distinct+top4) \
         registers one query per kind instead, served by the sketch \
         sweep estimators where applicable."
    );
    std::process::exit(2);
}

/// Parses one aggregate-kind token of the "+"-separated `--queries`
/// grammar: `avg`, `median`, `distinct`, `p<N>` (the N-th percentile,
/// 1–99), or `top<K>` (top-K heavy-hitter mass, 1–64).
fn parse_kind_token(token: &str) -> Result<AggregateOp, String> {
    let t = token.trim().to_ascii_lowercase();
    match t.as_str() {
        "avg" => return Ok(AggregateOp::Avg),
        "median" => return Ok(AggregateOp::Median),
        "distinct" => return Ok(AggregateOp::Distinct),
        _ => {}
    }
    if let Some(p) = t.strip_prefix('p') {
        if let Ok(pct) = p.parse::<u16>() {
            if (1..=99).contains(&pct) {
                return Ok(AggregateOp::Percentile {
                    q_permille: pct * 10,
                });
            }
        }
        return Err(format!("bad --queries percentile `{token}` (want p1..p99)"));
    }
    if let Some(k) = t.strip_prefix("top") {
        if let Ok(k) = k.parse::<u16>() {
            if (1..=64).contains(&k) {
                return Ok(AggregateOp::TopK { k });
            }
        }
        return Err(format!("bad --queries top-k `{token}` (want top1..top64)"));
    }
    Err(format!(
        "bad --queries kind `{token}` (want avg|median|distinct|p<N>|top<K>)"
    ))
}

/// Default `(δ, ε, p)` per aggregate kind when a "+"-fleet gives no
/// explicit contract, scaled to each kind's ε-semantics: absolute value
/// units for `AVG`/`MEDIAN`/`PERCENTILE`, *relative* ε for `COUNT
/// DISTINCT`, and mass-fraction units for `TOPK` (DESIGN.md §17).
fn default_contract(op: &AggregateOp) -> (f64, f64, f64) {
    match op {
        AggregateOp::Distinct => (8.0, 0.15, 0.95),
        AggregateOp::TopK { .. } => (0.05, 0.1, 0.95),
        _ => (4.0, 2.0, 0.95),
    }
}

/// Parses `--queries` fleet specs. Two grammars:
///
/// * `N[@delta,epsilon,p]` — `N` AVG queries over the first schema
///   attribute, either all at the given contract or cycling a four-tier
///   δ/ε/p mix;
/// * a "+"-separated kind list such as `p90+distinct+top4` or
///   `avg+median+p95@4,0.2,0.95` — one query per token (see
///   [`parse_kind_token`]), at the shared contract if given or at
///   per-kind defaults matched to each kind's ε-semantics (DESIGN.md
///   §17) otherwise.
fn parse_fleet_spec(spec: &str, schema: &Schema) -> Result<Vec<ContinuousQuery>, String> {
    let (count_text, contract) = match spec.split_once('@') {
        Some((n, c)) => (n, Some(c)),
        None => (spec, None),
    };
    let shared: Option<(f64, f64, f64)> = match contract {
        Some(c) => {
            let parts: Vec<&str> = c.split(',').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "bad --queries contract `{c}` (want delta,epsilon,p)"
                ));
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad number `{s}` in --queries contract"))
            };
            Some((parse(parts[0])?, parse(parts[1])?, parse(parts[2])?))
        }
        None => None,
    };

    // Kind-list grammar: any spec that is not a bare integer count.
    if count_text.parse::<usize>().is_err() {
        return count_text
            .split('+')
            .map(|token| {
                let op = parse_kind_token(token)?;
                let (delta, eps, p) = shared.unwrap_or_else(|| default_contract(&op));
                let precision = Precision::new(delta, eps, p)
                    .map_err(|e| format!("bad --queries contract: {e}"))?;
                Ok(ContinuousQuery::new(
                    op,
                    Expr::first_attr(schema),
                    precision,
                ))
            })
            .collect();
    }

    let count: usize = count_text
        .parse()
        .map_err(|_| format!("bad --queries count `{count_text}`"))?;
    let tiers: Vec<(f64, f64, f64)> = match shared {
        Some(c) => vec![c],
        None => vec![
            (8.0, 4.0, 0.90),
            (8.0, 2.0, 0.95),
            (4.0, 4.0, 0.90),
            (4.0, 2.0, 0.95),
        ],
    };
    (0..count)
        .map(|i| {
            let (delta, eps, p) = tiers[i % tiers.len()];
            let precision = Precision::new(delta, eps, p)
                .map_err(|e| format!("bad --queries contract: {e}"))?;
            Ok(ContinuousQuery::avg(Expr::first_attr(schema), precision))
        })
        .collect()
}

fn parse_args() -> Options {
    let mut opts = Options {
        world: "temperature".to_owned(),
        ticks: None,
        scheduler: SchedulerKind::Pred(3),
        estimator: EstimatorKind::Repeated,
        seed: 42,
        sampling_workers: None,
        telemetry: None,
        audit: false,
        audit_json: None,
        trace_out: None,
        event_loop: false,
        mux: false,
        queries_spec: None,
        statements: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--world" => opts.world = args.next().unwrap_or_else(|| usage()),
            "--telemetry" => opts.telemetry = Some(args.next().unwrap_or_else(|| usage())),
            "--audit" => opts.audit = true,
            "--event-loop" => opts.event_loop = true,
            "--mux" => opts.mux = true,
            "--queries" => {
                opts.queries_spec = Some(args.next().unwrap_or_else(|| usage()));
                opts.mux = true;
            }
            "--audit-json" => opts.audit_json = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => opts.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--ticks" => {
                opts.ticks = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--sampling-workers" => {
                opts.sampling_workers = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&w: &usize| w >= 1)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scheduler" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scheduler = if v.eq_ignore_ascii_case("all") {
                    SchedulerKind::All
                } else if let Some(k) = v.strip_prefix("pred").and_then(|k| k.parse().ok()) {
                    SchedulerKind::Pred(k)
                } else {
                    usage()
                };
            }
            "--estimator" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.estimator = match v.to_ascii_lowercase().as_str() {
                    "indep" => EstimatorKind::Independent,
                    "rpt" => EstimatorKind::Repeated,
                    _ => usage(),
                };
            }
            "--help" | "-h" => usage(),
            s if s.starts_with("--") => usage(),
            statement => opts.statements.push(statement.to_owned()),
        }
    }
    if opts.statements.is_empty() && opts.queries_spec.is_none() {
        usage();
    }
    opts
}

/// Prints the deterministic end-of-run telemetry summary: every non-zero
/// counter/gauge (registry order), then per-stage span counts and totals.
fn print_telemetry_summary() {
    println!();
    println!("--- telemetry summary ---");
    for d in digest_telemetry::descriptors() {
        match d.handle {
            MetricHandle::Counter(c) => {
                let v = c.get();
                if v != 0 {
                    println!("  {:<32} {v:>12}", d.name);
                }
            }
            MetricHandle::Gauge(g) => {
                let v = g.get();
                if v != 0.0 {
                    println!("  {:<32} {v:>12.4}", d.name);
                }
            }
            MetricHandle::Histogram(h) => {
                let n = h.count();
                if n != 0 {
                    println!(
                        "  {:<32} {n:>12} obs  mean {:.2}  p50 {:.1}  p95 {:.1}  p99 {:.1}",
                        d.name,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    );
                }
            }
        }
    }
    for report in digest_telemetry::stage_reports() {
        if report.count != 0 {
            println!(
                "  stage {:<26} {:>12} spans  {:>12} units",
                report.stage.name(),
                report.count,
                report.total,
            );
        }
    }
}

/// Serves every query through one shared [`QueryMux`] (shared sample
/// panels, coalesced PRED-k rounds) and prints per-query updates, the
/// cost summary, and — under `--audit` — each member's guarantee audit.
fn serve_mux<W: Workload>(
    world: &mut W,
    opts: &Options,
    queries: Vec<ContinuousQuery>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut mux = QueryMux::new(MuxConfig {
        scheduler: opts.scheduler,
        estimator: opts.estimator,
        sampling: SamplingConfig {
            workers: opts
                .sampling_workers
                .unwrap_or_else(digest::sampling::default_workers),
            ..SamplingConfig::recommended(world.graph().node_count())
        },
        ..MuxConfig::default()
    })?;
    let auditing = opts.audit || opts.audit_json.is_some();
    let mut audit = MuxAudit::new();
    for q in queries {
        let id = mux.register(q)?;
        if auditing {
            audit.register(id, mux.query(id).ok_or("registered query")?)?;
        }
    }
    let ids = mux.query_ids();
    for &id in &ids {
        let q = mux.query(id).ok_or("registered query")?;
        println!("  [{id}] {q}");
    }
    println!("serving {} queries through one shared mux", ids.len());
    println!();

    let ticks = opts
        .ticks
        .unwrap_or_else(|| world.duration())
        .min(world.duration());
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let reports = digest::sim::run_mux(
        world,
        &mut mux,
        RunConfig::for_ticks(ticks),
        &mut rng,
        &mut audit,
    )?;

    // δ-updates in tick order, interleaved across queries.
    let mut updates: Vec<(u64, u64, f64, f64)> = Vec::new();
    for (report, &id) in reports.iter().zip(&ids) {
        for record in report.records.iter().filter(|r| r.updated) {
            updates.push((record.tick, id, record.estimate, record.exact));
        }
    }
    updates.sort_by_key(|u| (u.0, u.1));
    for (tick, id, estimate, exact) in &updates {
        println!("t={tick:>5}  [{id}] UPDATE  X̂ = {estimate:>12.3}   (oracle = {exact:>10.3})");
    }

    println!();
    println!("--- cost summary over {ticks} ticks ({}) ---", mux.name());
    for &id in &ids {
        if let Some(totals) = mux.query_totals(id) {
            println!(
                "  [{id}] {:>6} snapshots  {:>9} samples  {:>10} messages",
                totals.snapshots, totals.samples, totals.messages,
            );
        }
    }
    println!(
        "  total: {} samples, {} messages",
        mux.total_samples(),
        mux.total_messages()
    );

    if auditing {
        let audit_reports = audit.reports();
        if opts.audit {
            println!();
            println!("--- guarantee audit ---");
            for (_, report) in &audit_reports {
                print!("{}", report.render_table());
            }
        }
        if let Some(path) = &opts.audit_json {
            let value = serde_json::Value::Array(
                audit_reports
                    .iter()
                    .map(|(_, r)| r.to_json_value())
                    .collect(),
            );
            let mut text = serde_json::to_string_pretty(&value)?;
            text.push('\n');
            std::fs::write(path, text)?;
        }
    }
    Ok(())
}

fn run<W: Workload>(mut world: W, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    // Sink wiring: JSONL stream for --telemetry, an in-memory buffer for
    // --trace-out (exported as a Chrome trace at end of run), a lock-free
    // tee when both are requested. Span events only exist when a trace is
    // being collected.
    let mut trace_buffer: Option<MemorySink> = None;
    let sink_installed = opts.telemetry.is_some() || opts.trace_out.is_some();
    if sink_installed {
        digest_telemetry::reset_run_state();
        let jsonl = match &opts.telemetry {
            Some(path) => Some(JsonlSink::create(std::path::Path::new(path))?),
            None => None,
        };
        let memory = opts.trace_out.as_ref().map(|_| MemorySink::new());
        if let Some(m) = &memory {
            trace_buffer = Some(m.clone());
        }
        match (jsonl, memory) {
            (Some(j), Some(m)) => {
                digest_telemetry::install_sink(Box::new(TeeSink::new(j, m)));
            }
            (Some(j), None) => {
                digest_telemetry::install_sink(Box::new(j));
            }
            (None, Some(m)) => {
                digest_telemetry::install_sink(Box::new(m));
            }
            (None, None) => {}
        }
        digest_telemetry::set_span_events(opts.trace_out.is_some());
    }
    let schema = world.db().schema().clone();
    println!(
        "world: {} ({} nodes, {} tuples, σ̂≈{:.1})",
        world.name(),
        world.graph().node_count(),
        world.db().total_tuples(),
        world.sigma_ref()
    );

    let mut queries: Vec<ContinuousQuery> = opts
        .statements
        .iter()
        .map(|text| ContinuousQuery::parse(text, &schema))
        .collect::<Result<_, _>>()?;
    if let Some(spec) = &opts.queries_spec {
        queries.extend(parse_fleet_spec(spec, &schema)?);
    }

    if opts.mux {
        serve_mux(&mut world, opts, queries)?;
        if sink_installed {
            digest_telemetry::flush();
            digest_telemetry::take_sink();
            digest_telemetry::set_span_events(false);
        }
        if let (Some(path), Some(buffer)) = (&opts.trace_out, &trace_buffer) {
            std::fs::write(path, digest::audit::chrome_trace_json(&buffer.lines()))?;
        }
        if opts.telemetry.is_some() {
            print_telemetry_summary();
        }
        return Ok(());
    }

    let mut engines: Vec<DigestEngine> = queries
        .iter()
        .map(|q| {
            DigestEngine::new(
                q.clone(),
                EngineConfig {
                    scheduler: opts.scheduler,
                    estimator: opts.estimator,
                    sampling: SamplingConfig {
                        workers: opts
                            .sampling_workers
                            .unwrap_or_else(digest::sampling::default_workers),
                        ..SamplingConfig::recommended(world.graph().node_count())
                    },
                    ..Default::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;
    for (i, q) in queries.iter().enumerate() {
        println!("  [{i}] {q}");
    }
    println!();

    let auditing = opts.audit || opts.audit_json.is_some();
    let mut audits: Vec<QueryAudit> = if auditing {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryAudit::new(q, i as u64))
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };

    let ticks = opts
        .ticks
        .unwrap_or_else(|| world.duration())
        .min(world.duration());
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut origin = world.graph().nodes().next().ok_or("world has no nodes")?;
    let mut tick = 0u64;
    while tick < ticks {
        digest_telemetry::set_tick(tick);
        // `advance_to` replays one `advance` per consecutive tick, so the
        // dense path is unchanged; under --event-loop it carries sparse
        // workloads across skipped quiet spans without touching the RNG.
        world.advance_to(tick, &mut rng);
        if !world.graph().contains(origin) {
            origin = world.graph().random_node(&mut rng)?;
        }
        for (i, engine) in engines.iter_mut().enumerate() {
            let (outcome, exact) = {
                let ctx = TickContext {
                    tick,
                    graph: world.graph(),
                    db: world.db(),
                    origin,
                };
                let outcome = engine.on_tick(&ctx, &mut rng)?;
                // Restore this engine's occasion trace id: with several
                // queries per run the global register still holds the
                // *last* engine's id after `on_tick`.
                digest_telemetry::set_trace(engine.trace_id());
                let exact = engine
                    .oracle_truth(&ctx)
                    .unwrap_or_else(|| world.exact_aggregate());
                if let Some(audit) = audits.get_mut(i) {
                    audit.observe(&ctx, &outcome, exact);
                }
                (outcome, exact)
            };
            if digest_telemetry::events_enabled() {
                digest_telemetry::emit(
                    "tick",
                    &[
                        ("estimate", Field::F64(outcome.estimate)),
                        ("exact", Field::F64(world.exact_aggregate())),
                        ("snapshot", Field::Bool(outcome.snapshot_executed)),
                        ("samples", Field::U64(outcome.samples_this_tick)),
                        ("fresh", Field::U64(outcome.fresh_samples_this_tick)),
                        ("messages", Field::U64(outcome.messages_this_tick)),
                        ("updated", Field::U64(u64::from(outcome.updated))),
                        ("query", Field::U64(i as u64)),
                    ],
                );
            }
            if outcome.updated {
                println!(
                    "t={tick:>5}  [{i}] UPDATE  X̂ = {:>12.3}   (oracle = {exact:>10.3})",
                    outcome.estimate,
                );
            }
        }
        // Dense sweep unless --event-loop: then skip straight to the
        // earliest tick any engine or the workload needs. A `None` hint
        // from either side means "cannot predict" and forces tick + 1,
        // so the skip only ever covers provably idle spans and the trace
        // stays byte-identical to the dense loop.
        tick = if opts.event_loop {
            let mut due = Some(u64::MAX);
            for engine in &mut engines {
                match engine.next_due(tick) {
                    Some(t) => due = due.map(|d: u64| d.min(t)),
                    None => {
                        due = None;
                        break;
                    }
                }
            }
            match (world.next_activity(), due) {
                (Some(w), Some(s)) => w.min(s).max(tick + 1),
                _ => tick + 1,
            }
        } else {
            tick + 1
        };
    }

    println!();
    println!("--- cost summary over {ticks} ticks ---");
    for (i, engine) in engines.iter().enumerate() {
        println!(
            "  [{i}] {:<14} {:>6} snapshots  {:>9} samples  {:>10} messages",
            engine.name(),
            engine.total_snapshots(),
            engine.total_samples(),
            engine.total_messages(),
        );
    }
    if !audits.is_empty() {
        let reports: Vec<digest::audit::AuditReport> =
            audits.iter().map(QueryAudit::report).collect();
        if opts.audit {
            println!();
            println!("--- guarantee audit ---");
            for report in &reports {
                print!("{}", report.render_table());
            }
        }
        if let Some(path) = &opts.audit_json {
            let value =
                serde_json::Value::Array(reports.iter().map(|r| r.to_json_value()).collect());
            let mut text = serde_json::to_string_pretty(&value)?;
            text.push('\n');
            std::fs::write(path, text)?;
        }
    }
    if sink_installed {
        digest_telemetry::flush();
        digest_telemetry::take_sink();
        digest_telemetry::set_span_events(false);
    }
    if let (Some(path), Some(buffer)) = (&opts.trace_out, &trace_buffer) {
        std::fs::write(path, digest::audit::chrome_trace_json(&buffer.lines()))?;
    }
    if opts.telemetry.is_some() {
        print_telemetry_summary();
    }
    Ok(())
}

fn main() {
    let opts = parse_args();
    let outcome = match opts.world.to_ascii_lowercase().as_str() {
        "temperature" => run(
            TemperatureWorkload::new(TemperatureConfig {
                seed: opts.seed,
                ..TemperatureConfig::reduced(2_000, 10, 20, 100_000)
            }),
            &opts,
        ),
        "memory" => run(
            MemoryWorkload::new(MemoryConfig {
                seed: opts.seed,
                ..MemoryConfig::reduced(500, 200, 1_000_000)
            }),
            &opts,
        ),
        other => {
            eprintln!("unknown world `{other}` (expected temperature|memory)");
            std::process::exit(2);
        }
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
