//! # digest
//!
//! Facade crate for the **Digest** workspace — a from-scratch Rust
//! reproduction of *"Fixed-Precision Approximate Continuous Aggregate
//! Queries in Peer-to-Peer Databases"* (Banaei-Kashani & Shahabi,
//! ICDE 2008), plus its §VIII future-work extensions (`WHERE`
//! predicates, statement parsing, forward regression, `MEDIAN`,
//! `GROUP BY`).
//!
//! Each subsystem lives in its own crate, re-exported here under a short
//! module name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `digest-core` | the two-tier query engine: `(δ, ε, p)` semantics, `ALL`/`PRED-k` schedulers, `INDEP`/`RPT`/quantile/grouped estimators, push/TAG baselines |
//! | [`sampling`] | `digest-sampling` | the Metropolis random-walk sampling operator, mixing diagnostics, size estimation |
//! | [`net`] | `digest-net` | the unstructured overlay: topologies and churn |
//! | [`db`] | `digest-db` | the horizontally partitioned relation, expressions, predicates |
//! | [`stats`] | `digest-stats` | the numerical substrate (moments, quantiles, CLT sizing, Levenberg–Marquardt, Taylor extrapolation, repeated-sampling algebra) |
//! | [`workload`] | `digest-workload` | the calibrated TEMPERATURE / MEMORY synthetic datasets |
//! | [`sim`] | `digest-sim` | the discrete-time runner with oracle verification and parallel replication |
//! | [`audit`] | `digest-audit` | the continuous-guarantee auditor: ε-violation tracking, CI calibration, message-cost ledger, Perfetto trace export |
//!
//! See the repository README for a quickstart and the `examples/`
//! directory for end-to-end scenarios.

#![forbid(unsafe_code)]

pub use digest_audit as audit;
pub use digest_core as core;
pub use digest_db as db;
pub use digest_net as net;
pub use digest_sampling as sampling;
pub use digest_sim as sim;
pub use digest_stats as stats;
pub use digest_workload as workload;
