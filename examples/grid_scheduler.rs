//! The paper's second motivating example: *"Notify me whenever the total
//! amount of available memory is more than 4 GB"* — a `SUM` query over a
//! churning peer-to-peer computing grid.
//!
//! `SUM` needs the relation size, which no peer knows; the engine
//! estimates it on the fly by capture–recapture over uniform node samples
//! and scales the sampled average. Watch the threshold crossings fire.
//!
//! ```bash
//! cargo run --release --example grid_scheduler
//! ```

use digest::core::{
    AggregateOp, ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision,
    QuerySystem, SchedulerKind, TickContext,
};
use digest::db::Expr;
use digest::sampling::SamplingConfig;
use digest::workload::{MemoryConfig, MemoryWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A churning compute grid: 300 units on 150 power-law peers, mean
    // ~512 MB free per unit → total swings around ~150 GB; we watch a
    // threshold near the middle of its range.
    let mut grid = MemoryWorkload::new(MemoryConfig {
        leave_prob: 0.001,
        join_rate: 0.3,
        ..MemoryConfig::reduced(300, 150, 3_600)
    });
    let threshold_mb = 300.0 * 512.0; // "4 GB" scaled to this grid's size

    let query = ContinuousQuery::new(
        AggregateOp::Sum,
        Expr::first_attr(grid.db().schema()),
        // Precision in MB: re-report on ≥ 2 GB moves, ±1.5 GB @ 90 %.
        Precision::new(2_048.0, 1_536.0, 0.90)?,
    );
    println!("issuing: {query}");
    println!("watching: total available memory vs {:.0} MB", threshold_mb);
    println!();

    let mut engine = DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::Pred(2),
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::recommended(grid.graph().node_count()),
            size_refresh_interval: 5,
            size_sample_target: 400,
            ..Default::default()
        },
    )?;

    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut origin = grid.graph().nodes().next().expect("non-empty");
    let mut above = None;

    for tick in 0..grid.duration() {
        grid.advance(&mut rng);
        if !grid.graph().contains(origin) {
            origin = grid.graph().random_node(&mut rng)?;
        }
        let outcome = {
            let ctx = TickContext {
                tick,
                graph: grid.graph(),
                db: grid.db(),
                origin,
            };
            engine.on_tick(&ctx, &mut rng)?
        };

        let now_above = outcome.estimate > threshold_mb;
        if outcome.updated && above != Some(now_above) {
            let expr = Expr::first_attr(grid.db().schema());
            let exact = grid.db().exact_sum(&expr)?;
            println!(
                "t={:>4}s: {}  SUM ≈ {:>9.0} MB (exact {exact:>9.0}; N̂ ≈ {:.0}, N = {})",
                tick * grid.config().seconds_per_tick,
                if now_above {
                    "ENOUGH MEMORY  "
                } else {
                    "below threshold"
                },
                outcome.estimate,
                engine.size_estimate().unwrap_or(0.0),
                grid.db().total_tuples(),
            );
            above = Some(now_above);
        }
    }

    println!();
    println!(
        "totals: {} snapshots, {} samples, {} messages; {} churn events survived.",
        engine.total_snapshots(),
        engine.total_samples(),
        engine.total_messages(),
        grid.churn_events(),
    );
    Ok(())
}
