//! The paper's motivating example: *"Over next 24 hours, notify me
//! whenever the average temperature of the area changes more than 2 °F."*
//!
//! Runs Digest over the synthetic TEMPERATURE network (weather stations on
//! a mesh) and prints each notification next to the ground truth, plus a
//! cost summary against naive continuous querying.
//!
//! ```bash
//! cargo run --release --example weather_monitor
//! ```

use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, QuerySystem,
    SchedulerKind, TickContext,
};
use digest::db::Expr;
use digest::sampling::SamplingConfig;
use digest::workload::{TemperatureConfig, TemperatureWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 530-station mesh would also work (TemperatureConfig::paper_scale());
    // keep the example snappy with a 200-station network over ~45 days.
    let mut weather = TemperatureWorkload::new(TemperatureConfig {
        // Halve the day/night swing: this stand-in area has mild nights,
        // so the aggregate moves mostly with fronts and seasons — the
        // regime where extrapolation shines.
        diurnal_amplitude: 0.5,
        ..TemperatureConfig::reduced(2_000, 10, 20, 90)
    });

    // δ = 3 °F notification threshold (above the ±2 °F day/night swing,
    // so alarms track genuine weather moves); estimates ±1 °F @ 95 %.
    let query = ContinuousQuery::avg(
        Expr::first_attr(weather.db().schema()),
        Precision::new(3.0, 1.0, 0.95)?,
    );
    println!("issuing: {query}");
    println!("(one tick = 12 h of station updates)");
    println!();

    let mut engine = DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::recommended(weather.graph().node_count()),
            ..Default::default()
        },
    )?;

    let mut rng = ChaCha8Rng::seed_from_u64(24);
    let origin = weather.graph().nodes().next().expect("non-empty");
    let mut notifications = 0u32;
    let mut last_notified = f64::NAN;

    for tick in 0..weather.duration() {
        weather.advance(&mut rng);
        let outcome = {
            let ctx = TickContext {
                tick,
                graph: weather.graph(),
                db: weather.db(),
                origin,
            };
            engine.on_tick(&ctx, &mut rng)?
        };
        if outcome.updated {
            notifications += 1;
            let exact = weather.exact_aggregate();
            let moved = if last_notified.is_nan() {
                "first report".to_owned()
            } else {
                format!("moved {:+.2} °F", outcome.estimate - last_notified)
            };
            println!(
                "day {:>4.1}: NOTIFY  avg ≈ {:>6.2} °F  (exact {exact:>6.2}; {moved})",
                tick as f64 / 2.0,
                outcome.estimate,
            );
            last_notified = outcome.estimate;
        }
    }

    println!();
    println!(
        "{notifications} notifications over {} days; {} snapshot queries \
         ({} skipped by extrapolation), {} samples, {} messages.",
        weather.duration() / 2,
        engine.total_snapshots(),
        weather.duration() - engine.total_snapshots(),
        engine.total_samples(),
        engine.total_messages(),
    );
    Ok(())
}
