//! Quickstart: a fixed-precision approximate continuous AVG query over a
//! small peer-to-peer database, end to end.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, QuerySystem,
    SchedulerKind, TickContext,
};
use digest::db::{Expr, P2PDatabase, Schema, Tuple};
use digest::net::topology;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. An unstructured overlay: 100 peers, Erdős–Rényi wiring.
    let graph = topology::erdos_renyi(100, 0.05, &mut rng)?;

    // 2. A horizontally partitioned relation: each peer stores a handful
    //    of tuples with one numeric attribute.
    let mut db = P2PDatabase::new(Schema::single("load"));
    let mut handles = Vec::new();
    for node in graph.nodes() {
        db.register_node(node);
        for _ in 0..5 {
            let value = 40.0 + rng.gen_range(-10.0..10.0);
            handles.push(db.insert(node, Tuple::single(value))?);
        }
    }

    // 3. The continuous query: report AVG(load) with resolution δ = 2,
    //    confidence |X̂ − X| ≤ 1 with probability 0.95.
    let query = ContinuousQuery::avg(
        Expr::first_attr(db.schema()),
        Precision::new(2.0, 1.0, 0.95)?,
    );
    println!("issuing: {query}");

    // 4. The Digest engine: PRED-3 extrapolation + repeated sampling.
    let mut engine = DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            ..Default::default()
        },
    )?;

    // 5. Drive it: each tick the data drifts a little; the engine decides
    //    when to sample and what to report.
    let origin = graph.nodes().next().expect("non-empty graph");
    for tick in 0..60 {
        // Data drift: a slow upward trend plus jitter.
        for &h in &handles {
            let old = db.read(h)?.value(0)?;
            db.update(h, &[old + 0.15 + rng.gen_range(-0.3..0.3)])?;
        }

        let outcome = {
            let ctx = TickContext {
                tick,
                graph: &graph,
                db: &db,
                origin,
            };
            engine.on_tick(&ctx, &mut rng)?
        };
        if outcome.updated {
            let exact = db.exact_avg(&Expr::first_attr(db.schema()))?;
            println!(
                "tick {tick:>3}: UPDATE  X̂ = {:>7.2}  (exact {exact:>7.2}, \
                 {} samples, {} messages this tick)",
                outcome.estimate, outcome.samples_this_tick, outcome.messages_this_tick
            );
        }
    }

    println!();
    println!(
        "totals: {} snapshots, {} samples, {} messages over 60 ticks",
        engine.total_snapshots(),
        engine.total_samples(),
        engine.total_messages()
    );
    println!(
        "(an exact push-everything approach would have moved {} tuple values)",
        db.total_tuples() * 60
    );
    Ok(())
}
