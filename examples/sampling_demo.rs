//! The bottom tier in isolation: watch the Metropolis random walk
//! converge to an arbitrary target distribution, and see why the naive
//! walk needs the Metropolis correction.
//!
//! ```bash
//! cargo run --release --example sampling_demo
//! ```

use digest::net::{topology, NodeId};
use digest::sampling::{
    mixing, uniform_weight, NaiveWalkSampler, OracleSampler, SamplingConfig, SamplingOperator,
};
use digest::stats::{total_variation_distance, DiscreteDistribution};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    // A power-law overlay — hubs and leaves, the worst case for naive
    // walks.
    let graph = topology::barabasi_albert(400, 2, &mut rng)?;
    println!(
        "overlay: {} nodes, {} edges, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.nodes().map(|v| graph.degree(v)).max().unwrap_or(0)
    );

    // --- 1. Exact mixing: TVD to the uniform target over time. ---
    let w = uniform_weight();
    let (p, nodes, target) = mixing::transition_matrix(&graph, &w)?;
    let worst_start = nodes
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| graph.degree(v))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let curve = mixing::tvd_curve(&p, &target, worst_start, 120)?;
    println!();
    println!("TVD of the walk distribution to the uniform target (worst start):");
    for &t in &[0usize, 5, 10, 20, 40, 80, 120] {
        println!(
            "  step {t:>4}: {:>7.4}  {}",
            curve[t],
            bar(curve[t], 1.0, 40)
        );
    }
    let diag = mixing::spectral_diagnostics(&p, &target, 300)?;
    println!(
        "  spectral gap θ = {:.4}  (Theorem 3: τ(γ) ≤ θ⁻¹·(ln p_min⁻¹ + ln γ⁻¹))",
        diag.eigengap
    );

    // --- 2. Empirical check: Metropolis vs naive walk vs oracle. ---
    println!();
    println!("10 000 samples each; deviation from uniform (TVD, smaller = better):");
    let samples = 10_000u32;
    let mut index = vec![usize::MAX; graph.id_upper_bound()];
    for (i, &v) in nodes.iter().enumerate() {
        index[v.0 as usize] = i;
    }
    let origin = nodes[worst_start];

    let count_tvd = |counts: &[u64]| -> f64 {
        let emp = DiscreteDistribution::from_counts(counts).expect("non-empty");
        total_variation_distance(&emp, &target).expect("same support")
    };

    // Metropolis operator.
    let mut op = SamplingOperator::new(SamplingConfig::recommended(graph.node_count()))?;
    let mut counts = vec![0u64; nodes.len()];
    for _ in 0..samples {
        op.begin_occasion();
        let (v, _) = op.sample_node(&graph, &w, origin, &mut rng)?;
        counts[index[v.0 as usize]] += 1;
    }
    println!(
        "  Metropolis walk : TVD {:.4}   ({:.1} msgs/sample)",
        count_tvd(&counts),
        op.total_messages() as f64 / f64::from(samples)
    );

    // Naive (uncorrected) walk — converges to the degree distribution.
    let naive = NaiveWalkSampler::new(op.config().walk_length)?;
    let mut counts = vec![0u64; nodes.len()];
    for _ in 0..samples {
        let v = naive.sample_node(&graph, origin, &mut rng)?;
        counts[index[v.0 as usize]] += 1;
    }
    println!(
        "  naive walk      : TVD {:.4}   (degree-biased!)",
        count_tvd(&counts)
    );

    // Oracle (centralised) sampler — the unreachable ideal.
    let oracle = OracleSampler::new();
    let mut counts = vec![0u64; nodes.len()];
    for _ in 0..samples {
        let v = oracle.sample_node(&graph, &w, &mut rng)?;
        counts[index[v.0 as usize]] += 1;
    }
    println!(
        "  oracle          : TVD {:.4}   (sampling noise floor)",
        count_tvd(&counts)
    );

    // --- 3. Nonuniform targets work too. ---
    println!();
    println!("nonuniform target (w_v = v mod 5 + 1), Metropolis only:");
    let wexpr = |v: NodeId| f64::from(v.0 % 5 + 1);
    let weights: Vec<f64> = nodes.iter().map(|&v| wexpr(v)).collect();
    let target2 = DiscreteDistribution::from_weights(&weights)?;
    let mut op2 = SamplingOperator::new(SamplingConfig::recommended(graph.node_count()))?;
    let mut counts = vec![0u64; nodes.len()];
    for _ in 0..samples {
        op2.begin_occasion();
        let (v, _) = op2.sample_node(&graph, &wexpr, origin, &mut rng)?;
        counts[index[v.0 as usize]] += 1;
    }
    let emp = DiscreteDistribution::from_counts(&counts)?;
    println!(
        "  TVD to target: {:.4}",
        total_variation_distance(&emp, &target2)?
    );
    Ok(())
}
