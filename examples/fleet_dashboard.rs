//! A fleet dashboard: several predicated continuous queries running side
//! by side over one churning peer-to-peer fleet — the §VIII "complex
//! queries" extension in action.
//!
//! Queries:
//!   1. `AVG(load) FROM R`                      — overall fleet load
//!   2. `AVG(memory) FROM R WHERE load >= 0.75` — memory on hot machines
//!   3. `COUNT(*)   FROM R WHERE memory < 8`    — machines near OOM
//!
//! ```bash
//! cargo run --release --example fleet_dashboard
//! ```

use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, QuerySystem, SchedulerKind,
    TickContext,
};
use digest::db::{Expr, P2PDatabase, Predicate, Schema, Tuple, TupleHandle};
use digest::net::topology;
use digest::sampling::SamplingConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct Machine {
    handle: TupleHandle,
    load: f64,
    memory: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // The fleet: 150 peers, ~4 machines each, attributes (load, memory GB).
    let graph = topology::barabasi_albert(150, 2, &mut rng)?;
    let schema = Schema::new(["load", "memory"]);
    let mut db = P2PDatabase::new(schema.clone());
    let mut machines = Vec::new();
    for node in graph.nodes() {
        db.register_node(node);
        for _ in 0..4 {
            let load = rng.gen_range(0.05..0.95);
            let memory = rng.gen_range(4.0..64.0);
            let handle = db.insert(node, Tuple::new(vec![load, memory]))?;
            machines.push(Machine {
                handle,
                load,
                memory,
            });
        }
    }

    // The three dashboard queries, straight from statement text.
    let queries: Vec<ContinuousQuery> = [
        "SELECT AVG(load)   FROM fleet WITH delta=0.08, epsilon=0.04, p=0.95",
        "SELECT AVG(memory) FROM fleet WHERE load >= 0.75 WITH delta=6, epsilon=4, p=0.9",
        "SELECT COUNT(*)    FROM fleet WHERE memory < 8   WITH delta=40, epsilon=30, p=0.9",
    ]
    .iter()
    .map(|text| ContinuousQuery::parse(text, &schema))
    .collect::<Result<_, _>>()?;

    let mut engines: Vec<DigestEngine> = queries
        .iter()
        .map(|q| {
            DigestEngine::new(
                q.clone(),
                EngineConfig {
                    scheduler: SchedulerKind::Pred(2),
                    estimator: EstimatorKind::Repeated,
                    sampling: SamplingConfig::recommended(150),
                    size_sample_target: 600,
                    ..Default::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;

    for q in &queries {
        println!("issuing: {q}");
    }
    println!();
    println!(
        "{:>5} {:>12} {:>18} {:>14}",
        "tick", "fleet load", "hot-mem (GB)", "near-OOM"
    );

    let origin = graph.nodes().next().expect("non-empty");
    let mut latest = vec![f64::NAN; engines.len()];
    for tick in 0..60 {
        // Fleet dynamics: loads wander, memory fills as load rises.
        for m in &mut machines {
            m.load = (m.load + rng.gen_range(-0.06..0.062)).clamp(0.01, 0.99);
            m.memory = (m.memory - 2.0 * (m.load - 0.5) * rng.gen_range(0.0..1.0)).clamp(1.0, 64.0);
            db.update(m.handle, &[m.load, m.memory])?;
        }

        let mut any_update = false;
        for (engine, slot) in engines.iter_mut().zip(latest.iter_mut()) {
            let outcome = {
                let ctx = TickContext {
                    tick,
                    graph: &graph,
                    db: &db,
                    origin,
                };
                engine.on_tick(&ctx, &mut rng)?
            };
            if outcome.updated {
                *slot = outcome.estimate;
                any_update = true;
            }
        }
        if any_update {
            println!(
                "{tick:>5} {:>12.3} {:>18.1} {:>14.0}",
                latest[0], latest[1], latest[2]
            );
        }
    }

    println!();
    // Ground truth for the final dashboard row.
    let load_expr = Expr::attr(&schema, "load")?;
    let mem_expr = Expr::attr(&schema, "memory")?;
    let hot = Predicate::parse("load >= 0.75", &schema)?;
    let oom = Predicate::parse("memory < 8", &schema)?;
    println!(
        "oracle now: fleet load {:.3}, hot-mem {:.1} GB, near-OOM {}",
        db.exact_avg(&load_expr)?,
        db.exact_avg_where(&mem_expr, &hot).unwrap_or(f64::NAN),
        db.exact_count_where(&oom)?,
    );
    for engine in &engines {
        println!(
            "  {:<60} {:>6} snapshots, {:>7} samples, {:>8} messages",
            engine.query().to_string(),
            engine.total_snapshots(),
            engine.total_samples(),
            engine.total_messages(),
        );
    }
    Ok(())
}
