//! Integration: failure injection — the engine must degrade gracefully,
//! never panic or error, when the world turns hostile mid-query.

use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, QuerySystem,
    SchedulerKind, TickContext,
};
use digest::db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
use digest::net::{topology, Graph, NodeId};
use digest::sampling::SamplingConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct World {
    graph: Graph,
    db: P2PDatabase,
    handles: Vec<TupleHandle>,
}

fn world() -> World {
    let graph = topology::complete(10).unwrap();
    let mut db = P2PDatabase::new(Schema::single("a"));
    let mut handles = Vec::new();
    for (i, v) in graph.nodes().enumerate() {
        db.register_node(v);
        for j in 0..10 {
            handles.push(db.insert(v, Tuple::single((i * 10 + j) as f64)).unwrap());
        }
    }
    World { graph, db, handles }
}

fn engine(w: &World, estimator: EstimatorKind) -> DigestEngine {
    let query = ContinuousQuery::avg(
        Expr::first_attr(w.db.schema()),
        Precision::new(5.0, 3.0, 0.9).unwrap(),
    );
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::All,
            estimator,
            sampling: SamplingConfig::recommended(w.graph.node_count()),
            ..Default::default()
        },
    )
    .unwrap()
}

fn tick<'a>(t: u64, w: &'a World) -> TickContext<'a> {
    TickContext {
        tick: t,
        graph: &w.graph,
        db: &w.db,
        origin: w.graph.nodes().next().unwrap(),
    }
}

#[test]
fn emptied_relation_holds_instead_of_erroring() {
    for estimator in [EstimatorKind::Independent, EstimatorKind::Repeated] {
        let mut w = world();
        let mut sys = engine(&w, estimator);
        let mut rng = ChaCha8Rng::seed_from_u64(1);

        let before = sys.on_tick(&tick(0, &w), &mut rng).unwrap();
        assert!(before.snapshot_executed);

        // Every tuple disappears (mass deletion).
        for h in w.handles.drain(..) {
            let _ = w.db.delete(h);
        }
        assert_eq!(w.db.total_tuples(), 0);

        // The engine must hold its estimate, not crash.
        let during = sys
            .on_tick(&tick(1, &w), &mut rng)
            .expect("empty relation must not be an engine error");
        assert_eq!(during.estimate, before.estimate, "estimate held");
        assert!(!during.updated);

        // Data returns; the engine recovers on its own.
        for v in w.graph.nodes() {
            w.handles
                .push(w.db.insert(v, Tuple::single(100.0)).unwrap());
        }
        let mut recovered = false;
        for t in 2..8 {
            let o = sys.on_tick(&tick(t, &w), &mut rng).unwrap();
            if (o.estimate - 100.0).abs() < 3.0 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "engine should re-estimate after data returns");
    }
}

#[test]
fn origin_isolation_is_survivable() {
    // Cut the origin down to a single neighbor, then restore: walks keep
    // working through the bottleneck (just slower to mix).
    let mut w = world();
    let mut sys = engine(&w, EstimatorKind::Repeated);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    sys.on_tick(&tick(0, &w), &mut rng).unwrap();

    let origin = w.graph.nodes().next().unwrap();
    let neighbors: Vec<NodeId> = w.graph.neighbors(origin).to_vec();
    for &nb in &neighbors[1..] {
        w.graph.remove_edge(origin, nb).unwrap();
    }
    assert_eq!(w.graph.degree(origin), 1);
    let o = sys.on_tick(&tick(1, &w), &mut rng).unwrap();
    assert!(o.estimate.is_finite());
    assert!(o.snapshot_executed);
}

#[test]
fn mass_churn_between_every_snapshot() {
    // Replace half the network's fragments every tick: the RPT panel is
    // wiped constantly and must keep self-repairing.
    let mut w = world();
    let mut sys = engine(&w, EstimatorKind::Repeated);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for t in 0..12 {
        let o = sys.on_tick(&tick(t, &w), &mut rng).unwrap();
        assert!(o.estimate.is_finite());
        // Churn: node (t mod 10) dumps its fragment and refills.
        let victim = NodeId((t % 10) as u32);
        let _ = w.db.remove_node(victim);
        w.db.register_node(victim);
        for j in 0..10 {
            w.handles.push(
                w.db.insert(victim, Tuple::single(f64::from(j) * 10.0))
                    .unwrap(),
            );
        }
    }
    assert_eq!(sys.total_snapshots(), 12);
}

#[test]
fn nan_values_in_the_relation_are_skipped() {
    // A buggy peer publishes NaN; estimates must stay finite.
    let mut w = world();
    for &h in w.handles.iter().take(20) {
        w.db.update(h, &[f64::NAN]).unwrap();
    }
    let mut sys = engine(&w, EstimatorKind::Independent);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for t in 0..5 {
        let o = sys.on_tick(&tick(t, &w), &mut rng).unwrap();
        assert!(o.estimate.is_finite(), "NaN leaked into the estimate");
    }
}
