//! Multi-query serving equivalence: the `QueryMux` must be a pure
//! refactor of N independent engines when panel sharing is off, and must
//! keep every member's `(ε, p)` contract (audited against the oracle)
//! when sharing is on — at every worker count, with a byte-identical
//! telemetry trace across worker counts.
//!
//! Everything lives in one `#[test]` because the telemetry sink is
//! process-global: integration-test binaries are separate processes, but
//! tests inside one binary share the registry, and the byte-diff section
//! must own the sink exclusively.

use digest::audit::MuxAudit;
use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, MuxConfig, NoopMuxObserver, Precision, QueryMux,
    QuerySystem, TickContext,
};
use digest::db::{Expr, Predicate};
use digest::sim::{run_mux, RunConfig};
use digest::workload::{TemperatureConfig, TemperatureWorkload, Workload};
use digest_telemetry::MemorySink;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEEDS: [u64; 12] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];
const WORKERS: [usize; 2] = [1, 4];
const TICKS: u64 = 40;

fn workload(seed: u64) -> TemperatureWorkload {
    TemperatureWorkload::new(TemperatureConfig {
        seed,
        ..TemperatureConfig::reduced(400, 5, 8, TICKS)
    })
}

/// Heterogeneous member contracts: two plain AVGs at different (δ, ε, p)
/// and one predicate AVG — all consuming the same shared panel.
fn queries(w: &TemperatureWorkload) -> Vec<ContinuousQuery> {
    let schema = w.db().schema();
    vec![
        ContinuousQuery::avg(
            Expr::first_attr(schema),
            Precision::new(4.0, 2.0, 0.95).unwrap(),
        ),
        ContinuousQuery::avg(
            Expr::first_attr(schema),
            Precision::new(8.0, 4.0, 0.90).unwrap(),
        ),
        ContinuousQuery::avg(
            Expr::first_attr(schema),
            Precision::new(4.0, 3.0, 0.90).unwrap(),
        )
        .with_predicate(Predicate::parse("temperature > 60", schema).unwrap()),
    ]
}

fn mux_config(sharing: bool) -> MuxConfig {
    MuxConfig {
        sharing,
        ..MuxConfig::default()
    }
}

/// Per-query estimate streams of a mux run, as bit patterns.
fn mux_streams(seed: u64, workers: usize, sharing: bool) -> Vec<Vec<u64>> {
    let mut w = workload(seed);
    let mut mux = QueryMux::new(mux_config(sharing)).unwrap();
    for q in queries(&w) {
        mux.register(q).unwrap();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD16E57);
    let reports = run_mux(
        &mut w,
        &mut mux,
        RunConfig {
            sampling_workers: Some(workers),
            ..RunConfig::for_ticks(TICKS)
        },
        &mut rng,
        &mut NoopMuxObserver,
    )
    .unwrap();
    reports
        .iter()
        .map(|r| r.records.iter().map(|t| t.estimate.to_bits()).collect())
        .collect()
}

/// The same run shape, but N standalone engines driven in query order —
/// exactly what a driver without a mux would do.
fn independent_streams(seed: u64, workers: usize) -> Vec<Vec<u64>> {
    let mut w = workload(seed);
    let mut engines: Vec<DigestEngine> = queries(&w)
        .into_iter()
        .map(|q| {
            let config = mux_config(false);
            let mut e = DigestEngine::new(
                q,
                EngineConfig {
                    scheduler: config.scheduler,
                    estimator: config.estimator,
                    sampling: config.sampling,
                    rpt: config.rpt,
                    size_refresh_interval: config.size_refresh_rounds,
                    size_sample_target: config.size_sample_target,
                },
            )
            .unwrap();
            e.set_sampling_workers(workers);
            e
        })
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD16E57);
    let mut origin = w.graph().nodes().next().unwrap();
    let mut streams = vec![Vec::new(); engines.len()];
    for tick in 0..TICKS {
        w.advance(&mut rng);
        if !w.graph().contains(origin) {
            origin = w.graph().random_node(&mut rng).unwrap();
        }
        let ctx = TickContext {
            tick,
            graph: w.graph(),
            db: w.db(),
            origin,
        };
        for (engine, stream) in engines.iter_mut().zip(streams.iter_mut()) {
            let outcome = engine.on_tick(&ctx, &mut rng).unwrap();
            stream.push(outcome.estimate.to_bits());
        }
    }
    streams
}

/// Sharing off ⇒ the mux is byte-for-byte the N-independent-engines
/// driver, for every seed and worker count.
fn check_unshared_identity() {
    for &seed in &SEEDS {
        for &workers in &WORKERS {
            let mux = mux_streams(seed, workers, false);
            let solo = independent_streams(seed, workers);
            assert_eq!(
                mux, solo,
                "unshared mux diverged from independent engines (seed {seed}, workers {workers})"
            );
        }
    }
}

/// Sharing on ⇒ every member's audited ε-violation rate stays within its
/// own binomial bound (aggregated across seeds for statistical power),
/// and streams are worker-count independent.
fn check_shared_contract() {
    let n_queries = 3;
    let mut violations = vec![0u64; n_queries];
    let mut occasions = vec![0u64; n_queries];
    let mut confidences = vec![0.0f64; n_queries];
    for &seed in &SEEDS {
        let mut per_worker = Vec::new();
        for &workers in &WORKERS {
            let mut w = workload(seed);
            let qs = queries(&w);
            let mut mux = QueryMux::new(mux_config(true)).unwrap();
            let mut audit = MuxAudit::new();
            for q in qs {
                let id = mux.register(q).unwrap();
                audit.register(id, mux.query(id).unwrap()).unwrap();
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5A4ED);
            let reports = run_mux(
                &mut w,
                &mut mux,
                RunConfig {
                    sampling_workers: Some(workers),
                    ..RunConfig::for_ticks(TICKS)
                },
                &mut rng,
                &mut audit,
            )
            .unwrap();
            per_worker.push(
                reports
                    .iter()
                    .map(|r| {
                        r.records
                            .iter()
                            .map(|t| t.estimate.to_bits())
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            );
            if workers == WORKERS[0] {
                for (i, (_, report)) in audit.reports().into_iter().enumerate() {
                    violations[i] += report.violations;
                    occasions[i] += report.occasions;
                    confidences[i] = report.confidence;
                }
            }
        }
        assert_eq!(
            per_worker[0], per_worker[1],
            "shared mux estimates diverged across worker counts (seed {seed})"
        );
    }
    for i in 0..n_queries {
        assert!(
            occasions[i] >= 40,
            "query {i}: too few audited occasions ({})",
            occasions[i]
        );
        let n = occasions[i] as f64;
        let p = confidences[i];
        let rate = violations[i] as f64 / n;
        let bound = (1.0 - p) + 3.0 * (p * (1.0 - p) / n).sqrt();
        assert!(
            rate <= bound,
            "query {i}: audited violation rate {rate:.4} exceeds (1-p) + 3σ = {bound:.4} \
             over {n} occasions"
        );
    }
}

/// One audited, sink-captured shared run; returns the JSONL lines.
fn traced_lines(workers: usize) -> Vec<String> {
    digest_telemetry::reset_run_state();
    let buffer = MemorySink::new();
    digest_telemetry::install_sink(Box::new(buffer.clone()));

    let mut w = workload(7);
    let qs = queries(&w);
    let mut mux = QueryMux::new(mux_config(true)).unwrap();
    let mut audit = MuxAudit::new();
    for q in qs {
        let id = mux.register(q).unwrap();
        audit.register(id, mux.query(id).unwrap()).unwrap();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    run_mux(
        &mut w,
        &mut mux,
        RunConfig {
            sampling_workers: Some(workers),
            ..RunConfig::for_ticks(TICKS)
        },
        &mut rng,
        &mut audit,
    )
    .unwrap();

    digest_telemetry::flush();
    digest_telemetry::take_sink();
    buffer.lines()
}

/// The audited mux trace must be byte-identical across worker counts and
/// must carry the mux-specific causality: `mux.round` events whose trace
/// ids member `audit.occasion` events reference via `round`.
fn check_trace_byte_identity() {
    let one = traced_lines(1);
    let four = traced_lines(4);
    assert_eq!(
        one.len(),
        four.len(),
        "trace length differs across worker counts"
    );
    for (a, b) in one.iter().zip(four.iter()) {
        assert_eq!(a, b, "mux trace diverged across worker counts");
    }
    let rounds = one
        .iter()
        .filter(|l| l.contains("\"kind\":\"mux.round\""))
        .count();
    assert!(rounds > 0, "no mux.round events in the trace");
    let parented = one
        .iter()
        .filter(|l| l.contains("\"kind\":\"audit.occasion\"") && l.contains("\"round\":"))
        .count();
    assert!(
        parented >= 3 * rounds,
        "each round must parent one audit.occasion per member: {parented} occasions for {rounds} rounds"
    );
    for line in &one {
        digest_telemetry::schema::validate_line(line)
            .unwrap_or_else(|e| panic!("schema violation in mux trace: {e}"));
    }
}

#[test]
fn mux_equivalence_and_contract_across_seeds_and_workers() {
    check_unshared_identity();
    check_shared_contract();
    check_trace_byte_identity();
}
