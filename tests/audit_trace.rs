//! Causal-trace and span-stream determinism: the audited telemetry
//! stream (occasion traces, re-emitted worker spans, audit events) must
//! be byte-identical across same-seed replays and across sampling worker
//! counts, with the deterministic-tick clock monotone over the whole
//! stream.
//!
//! Everything lives in one `#[test]` because the telemetry sink is
//! process-global: integration-test binaries are separate processes, but
//! tests inside one binary share the registry.

use digest::audit::{chrome_trace_json, QueryAudit};
use digest::core::{ContinuousQuery, DigestEngine, EngineConfig, Precision};
use digest::core::{EstimatorKind, QuerySystem, SchedulerKind};
use digest::db::Expr;
use digest::sim::{run_observed, RunConfig};
use digest::workload::{TemperatureConfig, TemperatureWorkload, Workload};
use digest_telemetry::MemorySink;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn workload() -> TemperatureWorkload {
    TemperatureWorkload::new(TemperatureConfig {
        seed: 7,
        ..TemperatureConfig::reduced(600, 6, 10, 50)
    })
}

/// One fully audited, span-traced run at the given worker count;
/// returns the JSONL event lines and the audit-report JSON.
fn traced_run(workers: usize) -> (Vec<String>, String) {
    digest_telemetry::reset_run_state();
    let buffer = MemorySink::new();
    digest_telemetry::install_sink(Box::new(buffer.clone()));
    digest_telemetry::set_span_events(true);

    let mut w = workload();
    let query = ContinuousQuery::avg(
        Expr::first_attr(w.db().schema()),
        Precision::new(8.0, 2.0, 0.95).unwrap(),
    );
    let mut audit = QueryAudit::new(&query, 0).unwrap();
    let mut engine = DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            ..Default::default()
        },
    )
    .unwrap();
    engine.set_sampling_workers(workers);
    let mut rng = ChaCha8Rng::seed_from_u64(20080402);
    run_observed(
        &mut w,
        &mut engine,
        RunConfig::for_ticks(50),
        8.0,
        2.0,
        &mut rng,
        &mut audit,
    )
    .unwrap();

    digest_telemetry::flush();
    digest_telemetry::set_span_events(false);
    digest_telemetry::take_sink();
    let report = serde_json::to_string_pretty(&audit.report().to_json_value()).unwrap();
    (buffer.lines(), report)
}

/// Extracts `"key":<u64>` from a JSONL event line.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn audited_stream_is_worker_independent_and_tick_monotone() {
    let (lines_1, report_1) = traced_run(1);
    let (lines_4, report_4) = traced_run(4);

    // Worker-side spans are suppressed inside the batch and re-emitted
    // post-join in slot order, so the whole stream — spans included —
    // must not depend on the worker count.
    assert_eq!(
        lines_1, lines_4,
        "telemetry stream diverged between 1 and 4 sampling workers"
    );
    assert_eq!(report_1, report_4, "audit report depends on worker count");

    // Same-seed replay at the same worker count: byte-identical stream,
    // report, and Chrome trace export.
    let (lines_4b, report_4b) = traced_run(4);
    assert_eq!(lines_4, lines_4b, "same-seed replay diverged");
    assert_eq!(report_4, report_4b, "same-seed audit report diverged");
    assert_eq!(
        chrome_trace_json(&lines_4),
        chrome_trace_json(&lines_4b),
        "Chrome trace export diverged across replays"
    );

    // The deterministic-tick clock must be monotone over the emitted
    // stream: re-emitting suppressed worker spans after the join must
    // never time-travel an event before its predecessors.
    let mut last_tick = 0u64;
    let mut span_events = 0usize;
    let mut audit_events = 0usize;
    for line in &lines_4 {
        let tick = u64_field(line, "tick").expect("every event carries a tick");
        assert!(
            tick >= last_tick,
            "tick went backwards ({last_tick} -> {tick}) at: {line}"
        );
        last_tick = tick;
        if line.contains("\"kind\":\"span\"") {
            span_events += 1;
        }
        if line.contains("\"kind\":\"audit.occasion\"") {
            audit_events += 1;
        }
    }
    assert!(span_events > 0, "no span events were re-emitted");
    assert!(audit_events > 0, "no audit.occasion events were emitted");

    // Causality: every audit.occasion is stamped with the trace id of
    // the occasion that produced it, and occasion ids strictly increase.
    let mut last_trace = 0u64;
    for line in &lines_4 {
        if !line.contains("\"kind\":\"audit.occasion\"") {
            continue;
        }
        let trace = u64_field(line, "trace").expect("audit events carry a trace id");
        assert!(
            trace > last_trace,
            "occasion trace ids must strictly increase ({last_trace} -> {trace})"
        );
        last_trace = trace;
    }
}
