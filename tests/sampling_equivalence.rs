//! Integration: the deterministic parallel walk executor.
//!
//! Three pins on the sampling operator's batch mode:
//!
//! 1. **Worker-count independence** — the sampled panel (handles, tuple
//!    values, per-sample costs, caller-RNG advance) is byte-identical at
//!    1, 2, 4, and 8 workers across a matrix of seeds and topologies.
//! 2. **Statistical correctness** — panels drawn through the parallel
//!    executor stay uniform over tuples (the §V guarantee), measured by
//!    total-variation distance exactly like the sequential suite.
//! 3. **Snapshot-cache invisibility** — overlay churn between occasions
//!    (joins, departures, rewired edges) must leave the cached /
//!    incrementally-patched snapshot path byte-identical to cold
//!    rebuilds, for every worker count and seed, and caching must not
//!    move a single caller-RNG draw (estimators consume that stream).

use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
};
use digest::db::{Expr, P2PDatabase, Schema, Tuple};
use digest::net::{topology, Graph, NodeId};
use digest::sampling::{SamplingConfig, SamplingOperator};
use digest::sim::{run, RunConfig};
use digest::stats::{total_variation_distance, DiscreteDistribution};
use digest::workload::{MemoryConfig, MemoryWorkload, Workload};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A database with skewed content sizes: node `i` holds `(i mod 7)² + 1`
/// tuples (same shape as the sequential correctness suite).
fn skewed_db(g: &Graph) -> P2PDatabase {
    let mut db = P2PDatabase::new(Schema::single("a"));
    for (i, v) in g.nodes().enumerate() {
        db.register_node(v);
        let m = (i % 7) * (i % 7) + 1;
        for j in 0..m {
            db.insert(v, Tuple::single((i * 1_000 + j) as f64)).unwrap();
        }
    }
    db
}

/// Draws `occasions` panels of `panel` tuples with the given worker
/// count and returns every observable byte: handles, value bits, costs,
/// pool evolution, and the caller RNG's post-run position.
fn panel_fingerprint(
    g: &Graph,
    db: &P2PDatabase,
    seed: u64,
    workers: usize,
    occasions: usize,
    panel: usize,
) -> Vec<u64> {
    let mut op = SamplingOperator::new(SamplingConfig {
        workers,
        ..SamplingConfig::recommended(g.node_count())
    })
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let origin = g.nodes().next().unwrap();
    let mut fp = Vec::new();
    for _ in 0..occasions {
        op.begin_occasion();
        let batch = op.sample_tuples(g, db, origin, panel, &mut rng).unwrap();
        assert_eq!(batch.len(), panel);
        for (handle, tuple, cost) in batch {
            fp.push(u64::from(handle.node.0));
            fp.push(u64::from(handle.slot));
            fp.push(u64::from(handle.generation));
            for v in tuple.values() {
                fp.push(v.to_bits());
            }
            fp.push(cost.walk_messages);
            fp.push(cost.report_messages);
        }
        fp.push(op.pool_size() as u64);
        fp.push(op.total_messages());
    }
    // The caller's RNG must land in the same state regardless of workers.
    fp.push(rng.next_u64());
    fp
}

#[test]
fn parallel_panels_are_byte_identical_across_seeds_and_worker_counts() {
    let mut topo_rng = ChaCha8Rng::seed_from_u64(99);
    let g = topology::barabasi_albert(150, 2, &mut topo_rng).unwrap();
    let db = skewed_db(&g);

    for seed in [1, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let reference = panel_fingerprint(&g, &db, seed, 1, 3, 24);
        for workers in [2, 4, 8] {
            let parallel = panel_fingerprint(&g, &db, seed, workers, 3, 24);
            assert_eq!(
                reference, parallel,
                "seed {seed}: panel at {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn parallel_panels_are_byte_identical_on_a_mesh_overlay() {
    // A second topology family so the pin is not BA-specific.
    let g = topology::mesh(8, 8, false).unwrap();
    let db = skewed_db(&g);
    for seed in [7, 11, 19, 23, 31, 43, 47, 61] {
        let reference = panel_fingerprint(&g, &db, seed, 1, 2, 16);
        for workers in [2, 4, 8] {
            let parallel = panel_fingerprint(&g, &db, seed, workers, 2, 16);
            assert_eq!(
                reference, parallel,
                "seed {seed}: mesh panel at {workers} workers diverged"
            );
        }
    }
}

/// Appends one occasion's observable bytes to `fp`.
fn draw_occasion(
    g: &Graph,
    db: &P2PDatabase,
    op: &mut SamplingOperator,
    origin: NodeId,
    panel: usize,
    rng: &mut ChaCha8Rng,
    fp: &mut Vec<u64>,
) {
    op.begin_occasion();
    let batch = op.sample_tuples(g, db, origin, panel, rng).unwrap();
    assert_eq!(batch.len(), panel);
    for (handle, tuple, cost) in batch {
        fp.push(u64::from(handle.node.0));
        fp.push(u64::from(handle.slot));
        fp.push(u64::from(handle.generation));
        for v in tuple.values() {
            fp.push(v.to_bits());
        }
        fp.push(cost.walk_messages);
        fp.push(cost.report_messages);
    }
    fp.push(op.pool_size() as u64);
    fp.push(op.total_messages());
}

/// Replays a fixed churn script — two quiet occasions, then a join
/// (node + two edges), a departure, and an edge rewire, each followed by
/// an occasion — and fingerprints everything the operator returned plus
/// the caller RNG's final position. The graph, database, and mutation
/// sequence are reconstructed identically on every call, so any
/// fingerprint difference is the snapshot cache's fault.
fn churned_fingerprint(seed: u64, workers: usize, cache_snapshots: bool) -> Vec<u64> {
    let mut topo_rng = ChaCha8Rng::seed_from_u64(0xC0FF_EE00 ^ seed);
    let mut g = topology::barabasi_albert(100, 2, &mut topo_rng).unwrap();
    let mut db = skewed_db(&g);
    let mut op = SamplingOperator::new(SamplingConfig {
        workers,
        cache_snapshots,
        ..SamplingConfig::recommended(g.node_count())
    })
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let origin = g.nodes().next().unwrap();
    let mut fp = Vec::new();

    // Two quiet occasions: the second is the cache's reuse case.
    draw_occasion(&g, &db, &mut op, origin, 20, &mut rng, &mut fp);
    draw_occasion(&g, &db, &mut op, origin, 20, &mut rng, &mut fp);

    // Join: a new node with content and two edges.
    let joined = g.add_node();
    db.register_node(joined);
    db.insert(joined, Tuple::single(9_999.0)).unwrap();
    g.add_edge(joined, origin).unwrap();
    let anchor = g.nodes().find(|&u| u != joined && u != origin).unwrap();
    g.add_edge(joined, anchor).unwrap();
    draw_occasion(&g, &db, &mut op, origin, 20, &mut rng, &mut fp);

    // Departure: remove a node (its tuples become unreachable).
    let victim = g
        .nodes()
        .find(|&u| u != origin && u != joined && u != anchor)
        .unwrap();
    g.remove_node(victim).unwrap();
    draw_occasion(&g, &db, &mut op, origin, 20, &mut rng, &mut fp);

    // Rewire: detach one edge and attach its endpoint elsewhere.
    let a = g
        .nodes()
        .find(|&u| u != origin && g.degree(u) >= 2)
        .unwrap();
    let b = g.neighbors(a)[0];
    let c = g
        .nodes()
        .find(|&u| u != a && u != b && !g.has_edge(a, u))
        .unwrap();
    g.remove_edge(a, b).unwrap();
    g.add_edge(a, c).unwrap();
    draw_occasion(&g, &db, &mut op, origin, 20, &mut rng, &mut fp);

    if cache_snapshots {
        let stats = op.snapshot_stats();
        assert_eq!(stats.built, 1, "seed {seed}: one cold build");
        assert_eq!(stats.reused, 1, "seed {seed}: quiet occasion reuses");
        assert_eq!(stats.patched, 3, "seed {seed}: churn occasions patch");
    }
    fp.push(rng.next_u64());
    fp
}

/// Churn-invalidation suite: cached/patched snapshots must be invisible
/// — byte-identical panels versus a cold-build run — across {1,2,4,8}
/// workers and 8 seeds, with joins, departures, and rewires between
/// occasions.
#[test]
fn churned_overlay_panels_match_cold_builds_across_workers_and_seeds() {
    for seed in [2, 3, 5, 7, 11, 13, 17, 19] {
        let cold = churned_fingerprint(seed, 1, false);
        for workers in [1, 2, 4, 8] {
            let cached = churned_fingerprint(seed, workers, true);
            assert_eq!(
                cold, cached,
                "seed {seed}, {workers} workers: cached snapshot diverged from cold build"
            );
        }
    }
}

/// Estimator-level RNG pin: a full Digest run over a churning MEMORY
/// world must consume the caller RNG stream identically with snapshot
/// caching on and off — the cache may only skip rebuild work, never
/// move a draw. (Estimators sit between the RNG and the operator, so
/// equality here pins their draws too.)
#[test]
fn snapshot_caching_does_not_change_estimator_rng_draws() {
    let run_once = |cache_snapshots: bool| {
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: 0.002,
            join_rate: 0.8,
            seed: 5,
            ..MemoryConfig::reduced(200, 100, 2_400)
        });
        let query = ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(10.0, 3.0, 0.95).unwrap(),
        );
        let mut sys = DigestEngine::new(
            query,
            EngineConfig {
                scheduler: SchedulerKind::Pred(3),
                estimator: EstimatorKind::Repeated,
                sampling: SamplingConfig {
                    cache_snapshots,
                    ..SamplingConfig::recommended(w.graph().node_count())
                },
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let report = run(&mut w, &mut sys, RunConfig::default(), 10.0, 3.0, &mut rng).unwrap();
        (
            report.ticks(),
            report.total_snapshots(),
            report.confidence_violation_rate().to_bits(),
            report.resolution_violation_rate().to_bits(),
            rng.next_u64(),
        )
    };
    assert_eq!(
        run_once(true),
        run_once(false),
        "snapshot caching moved an estimator RNG draw or a result"
    );
}

#[test]
fn parallel_batch_sampling_stays_uniform_over_tuples() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = topology::barabasi_albert(120, 2, &mut rng).unwrap();
    let db = skewed_db(&g);
    let total = db.total_tuples();
    let mut op = SamplingOperator::new(SamplingConfig {
        workers: 4,
        ..SamplingConfig::recommended(120)
    })
    .unwrap();
    let origin = g.nodes().next().unwrap();

    // Same draw budget and tolerance as the sequential uniformity test,
    // but routed through the parallel batch executor.
    let draws = 40 * total;
    let panel = 64;
    let mut counts = std::collections::HashMap::new();
    let mut drawn = 0;
    while drawn < draws {
        op.begin_occasion();
        let n = panel.min(draws - drawn);
        let batch = op.sample_tuples(&g, &db, origin, n, &mut rng).unwrap();
        drawn += batch.len();
        for (_, t, _) in batch {
            *counts.entry(t.value(0).unwrap() as u64).or_insert(0u64) += 1;
        }
    }
    assert_eq!(counts.len(), total, "every tuple reachable");

    let mut cs: Vec<u64> = counts.values().copied().collect();
    cs.sort_unstable();
    let emp = DiscreteDistribution::from_counts(&cs).unwrap();
    let uni = DiscreteDistribution::uniform(total).unwrap();
    let tvd = total_variation_distance(&emp, &uni).unwrap();
    assert!(tvd < 0.08, "parallel batch tuple sampling TVD {tvd}");
}
