//! Integration: the deterministic parallel walk executor.
//!
//! Two pins on the sampling operator's batch mode:
//!
//! 1. **Worker-count independence** — the sampled panel (handles, tuple
//!    values, per-sample costs, caller-RNG advance) is byte-identical at
//!    1, 2, 4, and 8 workers across a matrix of seeds and topologies.
//! 2. **Statistical correctness** — panels drawn through the parallel
//!    executor stay uniform over tuples (the §V guarantee), measured by
//!    total-variation distance exactly like the sequential suite.

use digest::db::{P2PDatabase, Schema, Tuple};
use digest::net::{topology, Graph};
use digest::sampling::{SamplingConfig, SamplingOperator};
use digest::stats::{total_variation_distance, DiscreteDistribution};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A database with skewed content sizes: node `i` holds `(i mod 7)² + 1`
/// tuples (same shape as the sequential correctness suite).
fn skewed_db(g: &Graph) -> P2PDatabase {
    let mut db = P2PDatabase::new(Schema::single("a"));
    for (i, v) in g.nodes().enumerate() {
        db.register_node(v);
        let m = (i % 7) * (i % 7) + 1;
        for j in 0..m {
            db.insert(v, Tuple::single((i * 1_000 + j) as f64)).unwrap();
        }
    }
    db
}

/// Draws `occasions` panels of `panel` tuples with the given worker
/// count and returns every observable byte: handles, value bits, costs,
/// pool evolution, and the caller RNG's post-run position.
fn panel_fingerprint(
    g: &Graph,
    db: &P2PDatabase,
    seed: u64,
    workers: usize,
    occasions: usize,
    panel: usize,
) -> Vec<u64> {
    let mut op = SamplingOperator::new(SamplingConfig {
        workers,
        ..SamplingConfig::recommended(g.node_count())
    })
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let origin = g.nodes().next().unwrap();
    let mut fp = Vec::new();
    for _ in 0..occasions {
        op.begin_occasion();
        let batch = op.sample_tuples(g, db, origin, panel, &mut rng).unwrap();
        assert_eq!(batch.len(), panel);
        for (handle, tuple, cost) in batch {
            fp.push(u64::from(handle.node.0));
            fp.push(u64::from(handle.slot));
            fp.push(u64::from(handle.generation));
            for v in tuple.values() {
                fp.push(v.to_bits());
            }
            fp.push(cost.walk_messages);
            fp.push(cost.report_messages);
        }
        fp.push(op.pool_size() as u64);
        fp.push(op.total_messages());
    }
    // The caller's RNG must land in the same state regardless of workers.
    fp.push(rng.next_u64());
    fp
}

#[test]
fn parallel_panels_are_byte_identical_across_seeds_and_worker_counts() {
    let mut topo_rng = ChaCha8Rng::seed_from_u64(99);
    let g = topology::barabasi_albert(150, 2, &mut topo_rng).unwrap();
    let db = skewed_db(&g);

    for seed in [1, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let reference = panel_fingerprint(&g, &db, seed, 1, 3, 24);
        for workers in [2, 4, 8] {
            let parallel = panel_fingerprint(&g, &db, seed, workers, 3, 24);
            assert_eq!(
                reference, parallel,
                "seed {seed}: panel at {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn parallel_panels_are_byte_identical_on_a_mesh_overlay() {
    // A second topology family so the pin is not BA-specific.
    let g = topology::mesh(8, 8, false).unwrap();
    let db = skewed_db(&g);
    for seed in [7, 11, 19, 23, 31, 43, 47, 61] {
        let reference = panel_fingerprint(&g, &db, seed, 1, 2, 16);
        for workers in [2, 4, 8] {
            let parallel = panel_fingerprint(&g, &db, seed, workers, 2, 16);
            assert_eq!(
                reference, parallel,
                "seed {seed}: mesh panel at {workers} workers diverged"
            );
        }
    }
}

#[test]
fn parallel_batch_sampling_stays_uniform_over_tuples() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = topology::barabasi_albert(120, 2, &mut rng).unwrap();
    let db = skewed_db(&g);
    let total = db.total_tuples();
    let mut op = SamplingOperator::new(SamplingConfig {
        workers: 4,
        ..SamplingConfig::recommended(120)
    })
    .unwrap();
    let origin = g.nodes().next().unwrap();

    // Same draw budget and tolerance as the sequential uniformity test,
    // but routed through the parallel batch executor.
    let draws = 40 * total;
    let panel = 64;
    let mut counts = std::collections::HashMap::new();
    let mut drawn = 0;
    while drawn < draws {
        op.begin_occasion();
        let n = panel.min(draws - drawn);
        let batch = op.sample_tuples(&g, &db, origin, n, &mut rng).unwrap();
        drawn += batch.len();
        for (_, t, _) in batch {
            *counts.entry(t.value(0).unwrap() as u64).or_insert(0u64) += 1;
        }
    }
    assert_eq!(counts.len(), total, "every tuple reachable");

    let mut cs: Vec<u64> = counts.values().copied().collect();
    cs.sort_unstable();
    let emp = DiscreteDistribution::from_counts(&cs).unwrap();
    let uni = DiscreteDistribution::uniform(total).unwrap();
    let tvd = total_variation_distance(&emp, &uni).unwrap();
    assert!(tvd < 0.08, "parallel batch tuple sampling TVD {tvd}");
}
