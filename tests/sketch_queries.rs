//! Integration: the sketch-backed aggregate family end to end —
//! `PERCENTILE`, `COUNT(DISTINCT …)`, and `TOPK` continuous queries
//! parsed from statements, served through the shared `QueryMux` node
//! sweep, and audited against exact oracles (DESIGN.md §17).

use digest::audit::MuxAudit;
use digest::core::{ContinuousQuery, MuxConfig, QueryMux, TickContext};
use digest::db::{P2PDatabase, Schema, Tuple};
use digest::net::{topology, Graph, NodeId};
use digest::sim::{run_mux, RunConfig};
use digest::workload::{TemperatureConfig, TemperatureWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A static world with a known value multiset: node `v` holds tuples
/// `v, v+1, v+2` over a complete 12-node overlay, so every oracle is a
/// closed-form function of the layout.
struct World {
    graph: Graph,
    db: P2PDatabase,
}

fn world() -> World {
    let graph = topology::complete(12).unwrap();
    let mut db = P2PDatabase::new(Schema::single("latency"));
    for v in graph.nodes() {
        db.register_node(v);
        for i in 0..3u32 {
            db.insert(v, Tuple::single(f64::from(v.0 + i))).unwrap();
        }
    }
    World { graph, db }
}

fn parse(w: &World, statement: &str) -> ContinuousQuery {
    ContinuousQuery::parse(statement, w.db.schema()).unwrap()
}

/// Statements for the three sketch kinds plus a panel-served AVG, all
/// in one shared mux — the serving mix the CLI's `--queries
/// p90+distinct+top4` grammar produces.
fn statements() -> [&'static str; 4] {
    [
        "SELECT PERCENTILE(latency, 0.9) FROM R WITH delta=1, epsilon=1, p=0.95",
        "SELECT COUNT(DISTINCT latency) FROM R WITH delta=8, epsilon=0.15, p=0.95",
        "SELECT TOPK(latency, 3) FROM R WITH delta=0.05, epsilon=0.1, p=0.95",
        "SELECT AVG(latency) FROM R WITH delta=2, epsilon=1, p=0.95",
    ]
}

#[test]
fn sketch_kinds_parse_register_and_track_oracles_through_shared_rounds() {
    let w = world();
    let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
    let mut ids = Vec::new();
    for statement in statements() {
        ids.push(mux.register(parse(&w, statement)).unwrap());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut latest = std::collections::BTreeMap::new();
    for tick in 0..8 {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        for o in mux.on_tick_mux(&ctx, &mut rng).unwrap() {
            latest.insert(o.query, o.outcome.estimate);
        }
    }
    // The three sketch members finalize over a sweep of every live
    // node, so each lands within its own ε of the exact oracle
    // (relative ε for COUNT DISTINCT, DESIGN.md §17).
    for &id in &ids[..3] {
        let q = mux.query(id).unwrap();
        let exact = q.oracle(&w.db).unwrap();
        let est = *latest.get(&id).expect("sketch member reported");
        let tol = if q.op.uses_relative_epsilon() {
            q.precision.epsilon * exact.abs().max(1.0)
        } else {
            q.precision.epsilon
        };
        assert!(
            (est - exact).abs() <= tol,
            "{q}: estimate {est} vs oracle {exact} (tol {tol})"
        );
    }
}

#[test]
fn median_registers_in_shared_mode_and_tracks_the_exact_median() {
    // Regression: shared-mode registration used to reject MEDIAN; it is
    // now served by the same deterministic sweep as the sketch kinds.
    let w = world();
    let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
    let median = mux
        .register(parse(
            &w,
            "SELECT MEDIAN(latency) FROM R WITH delta=1, epsilon=1, p=0.95",
        ))
        .unwrap();
    let avg = mux
        .register(parse(
            &w,
            "SELECT AVG(latency) FROM R WITH delta=2, epsilon=1, p=0.95",
        ))
        .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut median_estimate = f64::NAN;
    for tick in 0..6 {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        for o in mux.on_tick_mux(&ctx, &mut rng).unwrap() {
            if o.query == median {
                median_estimate = o.outcome.estimate;
            }
        }
    }
    let exact = mux.query(median).unwrap().oracle(&w.db).unwrap();
    assert!(
        (median_estimate - exact).abs() <= 1.0,
        "median estimate {median_estimate} vs oracle {exact}"
    );
    assert!(mux.query_totals(avg).unwrap().snapshots > 0);
}

#[test]
fn audited_sketch_mix_holds_contracts_over_a_live_run() {
    // Full-stack leg: the churning TEMPERATURE workload drives the
    // sketch mix through run_mux under a MuxAudit, and every member
    // must come out with enough occasions and zero ε-violations (the
    // same invariant `cargo xtask audit` gates on the CLI path).
    let mut workload = TemperatureWorkload::new(TemperatureConfig {
        seed: 3,
        ..TemperatureConfig::reduced(500, 6, 8, 60)
    });
    let schema = workload.db().schema().clone();
    let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
    let mut audit = MuxAudit::new();
    for statement in [
        "SELECT PERCENTILE(temperature, 0.9) FROM R WITH delta=4, epsilon=2, p=0.95",
        "SELECT COUNT(DISTINCT temperature) FROM R WITH delta=8, epsilon=0.15, p=0.95",
        "SELECT TOPK(temperature, 4) FROM R WITH delta=0.05, epsilon=0.1, p=0.95",
    ] {
        let query = ContinuousQuery::parse(statement, &schema).unwrap();
        let id = mux.register(query).unwrap();
        audit.register(id, mux.query(id).unwrap()).unwrap();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(20_080_402);
    run_mux(
        &mut workload,
        &mut mux,
        RunConfig::for_ticks(40),
        &mut rng,
        &mut audit,
    )
    .unwrap();
    for (id, report) in audit.reports() {
        assert!(
            report.occasions >= 10,
            "query {id}: only {} occasions",
            report.occasions
        );
        assert_eq!(
            report.violations, 0,
            "query {id}: {} ε-violations over {} occasions",
            report.violations, report.occasions
        );
        assert!(report.violation_rate <= report.violation_bound());
    }
}
