//! Integration: `WHERE`-predicated continuous queries end to end (the
//! paper's §VIII selection extension).

use digest::core::{
    AggregateOp, ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision,
    QuerySystem, SchedulerKind, TickContext,
};
use digest::db::{Expr, P2PDatabase, Predicate, Schema, Tuple, TupleHandle};
use digest::net::{topology, Graph, NodeId};
use digest::sampling::SamplingConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Two sub-populations on a "cpu, memory" schema: half the tuples are
/// servers (cpu = 8, memory ~ N(64, 4²)), half are laptops (cpu = 2,
/// memory ~ N(16, 2²)).
struct World {
    graph: Graph,
    db: P2PDatabase,
    handles: Vec<TupleHandle>,
}

fn world(seed: u64) -> World {
    let graph = topology::complete(20).unwrap();
    let mut db = P2PDatabase::new(Schema::new(["cpu", "memory"]));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut handles = Vec::new();
    for (i, v) in graph.nodes().enumerate() {
        db.register_node(v);
        for j in 0..20 {
            let server = (i + j) % 2 == 0;
            let (cpu, mem_mean, mem_sd) = if server {
                (8.0, 64.0, 4.0)
            } else {
                (2.0, 16.0, 2.0)
            };
            let memory = mem_mean + mem_sd * (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0));
            handles.push(db.insert(v, Tuple::new(vec![cpu, memory])).unwrap());
        }
    }
    World { graph, db, handles }
}

fn engine(w: &World, query: ContinuousQuery) -> DigestEngine {
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::All,
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::recommended(w.graph.node_count()),
            size_sample_target: 2_000,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn predicated_avg_estimates_the_sub_population() {
    let w = world(1);
    let schema = w.db.schema().clone();
    let expr = Expr::attr(&schema, "memory").unwrap();
    let pred = Predicate::parse("cpu >= 8", &schema).unwrap();
    let truth = w.db.exact_avg_where(&expr, &pred).unwrap();
    let overall = w.db.exact_avg(&expr).unwrap();
    assert!(
        (truth - 64.0).abs() < 2.0,
        "server memory mean sanity: {truth}"
    );
    assert!(
        (overall - truth).abs() > 15.0,
        "sub-population must differ from overall"
    );

    let query =
        ContinuousQuery::avg(expr, Precision::new(4.0, 2.0, 0.95).unwrap()).with_predicate(pred);
    let mut sys = engine(&w, query);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut hits = 0;
    let occasions = 10;
    for tick in 0..occasions {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = sys.on_tick(&ctx, &mut rng).unwrap();
        if (o.estimate - truth).abs() <= 2.0 {
            hits += 1;
        }
        // The estimate must track the *qualifying* mean, not the overall.
        assert!(
            (o.estimate - overall).abs() > 10.0,
            "estimate {} contaminated by non-qualifying tuples",
            o.estimate
        );
    }
    assert!(hits >= occasions - 2, "only {hits}/{occasions} within ±ε");
}

#[test]
fn predicated_count_scales_by_selectivity() {
    let w = world(3);
    let schema = w.db.schema().clone();
    let expr = Expr::attr(&schema, "memory").unwrap();
    let pred = Predicate::parse("cpu < 4", &schema).unwrap();
    let truth = w.db.exact_count_where(&pred).unwrap() as f64;
    assert!(
        (truth - 200.0).abs() < 1.0,
        "half the 400 tuples are laptops"
    );

    let query = ContinuousQuery::new(
        AggregateOp::Count,
        expr,
        Precision::new(60.0, 40.0, 0.9).unwrap(),
    )
    .with_predicate(pred);
    let mut sys = engine(&w, query);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let ctx = TickContext {
        tick: 0,
        graph: &w.graph,
        db: &w.db,
        origin: NodeId(0),
    };
    let o = sys.on_tick(&ctx, &mut rng).unwrap();
    assert!(
        (o.estimate - truth).abs() / truth < 0.4,
        "COUNT WHERE estimate {} vs truth {truth}",
        o.estimate
    );
}

#[test]
fn predicated_sum_matches_oracle_order_of_magnitude() {
    let w = world(5);
    let schema = w.db.schema().clone();
    let expr = Expr::attr(&schema, "memory").unwrap();
    let pred = Predicate::parse("cpu >= 8", &schema).unwrap();
    let truth = w.db.exact_sum_where(&expr, &pred).unwrap();

    let query = ContinuousQuery::new(
        AggregateOp::Sum,
        expr,
        Precision::new(4_000.0, 3_000.0, 0.9).unwrap(),
    )
    .with_predicate(pred);
    let mut sys = engine(&w, query);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let ctx = TickContext {
        tick: 0,
        graph: &w.graph,
        db: &w.db,
        origin: NodeId(0),
    };
    let o = sys.on_tick(&ctx, &mut rng).unwrap();
    assert!(
        (o.estimate - truth).abs() / truth < 0.4,
        "SUM WHERE estimate {} vs truth {truth}",
        o.estimate
    );
}

#[test]
fn panel_drops_tuples_that_leave_the_domain() {
    // Run two occasions; between them, flip some servers to laptops. The
    // RPT panel must drop them (domain exit) without error, and keep
    // estimating the qualifying mean.
    let mut w = world(7);
    let schema = w.db.schema().clone();
    let expr = Expr::attr(&schema, "memory").unwrap();
    let pred = Predicate::parse("cpu >= 8", &schema).unwrap();
    let query = ContinuousQuery::avg(expr.clone(), Precision::new(4.0, 2.5, 0.95).unwrap())
        .with_predicate(pred.clone());
    let mut sys = engine(&w, query);
    let mut rng = ChaCha8Rng::seed_from_u64(8);

    for tick in 0..2 {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        sys.on_tick(&ctx, &mut rng).unwrap();
    }
    // Demote a third of the servers.
    let mut demoted = 0;
    for &h in &w.handles {
        let t = w.db.read(h).unwrap();
        if t.value(0).unwrap() >= 8.0 && demoted < 60 {
            let mem = t.value(1).unwrap();
            w.db.update(h, &[2.0, mem]).unwrap();
            demoted += 1;
        }
    }
    let truth = w.db.exact_avg_where(&expr, &pred).unwrap();
    for tick in 2..6 {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = sys.on_tick(&ctx, &mut rng).unwrap();
        assert!(o.estimate.is_finite());
        if tick == 5 {
            assert!(
                (o.estimate - truth).abs() <= 3.0,
                "post-demotion estimate {} vs truth {truth}",
                o.estimate
            );
        }
    }
}

#[test]
fn impossible_predicate_holds_previous_avg() {
    let w = world(9);
    let schema = w.db.schema().clone();
    let expr = Expr::attr(&schema, "memory").unwrap();
    let query = ContinuousQuery::avg(expr, Precision::new(4.0, 2.0, 0.95).unwrap())
        .with_predicate(Predicate::parse("cpu > 1000", &schema).unwrap());
    let mut sys = engine(&w, query);
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let ctx = TickContext {
        tick: 0,
        graph: &w.graph,
        db: &w.db,
        origin: NodeId(0),
    };
    // First tick: nothing qualifies; the engine must not blow up.
    let o = sys.on_tick(&ctx, &mut rng).unwrap();
    assert!(o.estimate.is_finite());
    assert!(o.snapshot_executed);
}

#[test]
fn display_includes_where_clause() {
    let schema = Schema::new(["cpu", "memory"]);
    let q = ContinuousQuery::avg(
        Expr::attr(&schema, "memory").unwrap(),
        Precision::new(1.0, 1.0, 0.95).unwrap(),
    )
    .with_predicate(Predicate::parse("cpu >= 8", &schema).unwrap());
    let s = q.to_string();
    assert!(s.contains("WHERE"), "{s}");
    assert!(s.contains("cpu >= 8"), "{s}");
}
