//! End-to-end integration: the full Digest stack (overlay → database →
//! MCMC sampling → estimators → scheduler → engine) against the oracle.

use digest::core::{ContinuousQuery, DigestEngine, EngineConfig, Precision};
use digest::core::{EstimatorKind, QuerySystem, SchedulerKind};
use digest::db::Expr;
use digest::sampling::SamplingConfig;
use digest::sim::{run, RunConfig};
use digest::workload::{TemperatureConfig, TemperatureWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn workload(seed: u64) -> TemperatureWorkload {
    TemperatureWorkload::new(TemperatureConfig {
        seed,
        ..TemperatureConfig::reduced(1_000, 8, 10, 120)
    })
}

fn engine(
    w: &TemperatureWorkload,
    scheduler: SchedulerKind,
    estimator: EstimatorKind,
    delta: f64,
    epsilon: f64,
) -> DigestEngine {
    let query = ContinuousQuery::avg(
        Expr::first_attr(w.db().schema()),
        Precision::new(delta, epsilon, 0.95).unwrap(),
    );
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler,
            estimator,
            sampling: SamplingConfig::recommended(w.graph().node_count()),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn digest_meets_both_precision_requirements() {
    let mut w = workload(1);
    let (delta, epsilon) = (8.0, 2.0);
    let mut sys = engine(
        &w,
        SchedulerKind::Pred(3),
        EstimatorKind::Repeated,
        delta,
        epsilon,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let report = run(
        &mut w,
        &mut sys,
        RunConfig::default(),
        delta,
        epsilon,
        &mut rng,
    )
    .unwrap();

    assert_eq!(report.ticks(), 120);
    // Confidence: ≤ 5% nominal misses, allow finite-sample slack.
    assert!(
        report.confidence_violation_rate() <= 0.15,
        "ε-violation rate {}",
        report.confidence_violation_rate()
    );
    // Resolution: the held result never drifts uncaught for long.
    assert!(
        report.resolution_violation_rate() <= 0.10,
        "δ-violation rate {}",
        report.resolution_violation_rate()
    );
    // And it actually skipped work.
    assert!(report.total_snapshots() < 120);
}

#[test]
fn all_four_combos_track_the_truth() {
    for (scheduler, estimator) in [
        (SchedulerKind::All, EstimatorKind::Independent),
        (SchedulerKind::All, EstimatorKind::Repeated),
        (SchedulerKind::Pred(3), EstimatorKind::Independent),
        (SchedulerKind::Pred(3), EstimatorKind::Repeated),
    ] {
        let mut w = workload(3);
        let (delta, epsilon) = (8.0, 2.0);
        let mut sys = engine(&w, scheduler, estimator, delta, epsilon);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let report = run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(60),
            delta,
            epsilon,
            &mut rng,
        )
        .unwrap();
        let name = report.system.clone();
        assert!(
            report.max_snapshot_error() < delta + epsilon,
            "{name}: max snapshot error {}",
            report.max_snapshot_error()
        );
        assert!(report.total_snapshots() > 0, "{name}: never snapshotted");
    }
}

#[test]
fn scheduler_hierarchy_holds() {
    // Snapshot counts: ALL = every tick; PRED-k strictly fewer on the
    // smooth aggregate; and PRED with a looser δ skips even more.
    let count = |scheduler, delta: f64| {
        let mut w = workload(5);
        let mut sys = engine(&w, scheduler, EstimatorKind::Repeated, delta, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(100),
            delta,
            2.0,
            &mut rng,
        )
        .unwrap()
        .total_snapshots()
    };
    let all = count(SchedulerKind::All, 8.0);
    let pred_tight = count(SchedulerKind::Pred(3), 8.0);
    let pred_loose = count(SchedulerKind::Pred(3), 16.0);
    assert_eq!(all, 100);
    assert!(pred_tight < all, "PRED3 {pred_tight} !< ALL {all}");
    assert!(
        pred_loose <= pred_tight,
        "loose δ {pred_loose} !<= tight δ {pred_tight}"
    );
}

#[test]
fn estimator_hierarchy_holds() {
    // Total samples: RPT ≤ INDEP on the autocorrelated workload (allowing
    // a whisker of noise).
    let samples = |estimator| {
        let mut w = workload(7);
        let mut sys = engine(&w, SchedulerKind::All, estimator, 8.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(80),
            8.0,
            1.0,
            &mut rng,
        )
        .unwrap()
        .total_samples()
    };
    let indep = samples(EstimatorKind::Independent);
    let rpt = samples(EstimatorKind::Repeated);
    assert!(
        (rpt as f64) < indep as f64 * 0.95,
        "RPT {rpt} should undercut INDEP {indep}"
    );
}

#[test]
fn runs_are_deterministic_given_seeds() {
    let run_once = || {
        let mut w = workload(9);
        let mut sys = engine(
            &w,
            SchedulerKind::Pred(2),
            EstimatorKind::Repeated,
            8.0,
            2.0,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let r = run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(50),
            8.0,
            2.0,
            &mut rng,
        )
        .unwrap();
        (
            r.total_snapshots(),
            r.total_samples(),
            r.total_messages(),
            sys.total_messages(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn engine_totals_match_trace_totals() {
    let mut w = workload(11);
    let mut sys = engine(
        &w,
        SchedulerKind::Pred(3),
        EstimatorKind::Repeated,
        8.0,
        2.0,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let report = run(
        &mut w,
        &mut sys,
        RunConfig::for_ticks(60),
        8.0,
        2.0,
        &mut rng,
    )
    .unwrap();
    assert_eq!(report.total_messages(), sys.total_messages());
    assert_eq!(report.total_samples(), sys.total_samples());
    assert_eq!(report.total_snapshots(), sys.total_snapshots());
}
