//! Integration: statistical correctness of the distributed sampling
//! operator over real overlay topologies — the property everything above
//! it depends on.

use digest::db::{P2PDatabase, Schema, Tuple};
use digest::net::{topology, NodeId};
use digest::sampling::{mixing, uniform_weight, OracleSampler, SamplingConfig, SamplingOperator};
use digest::stats::{total_variation_distance, DiscreteDistribution};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A database with wildly skewed content sizes: node `i` holds
/// `(i mod 7)² + 1` tuples.
fn skewed_db(g: &digest::net::Graph) -> P2PDatabase {
    let mut db = P2PDatabase::new(Schema::single("a"));
    for (i, v) in g.nodes().enumerate() {
        db.register_node(v);
        let m = (i % 7) * (i % 7) + 1;
        for j in 0..m {
            db.insert(v, Tuple::single((i * 1_000 + j) as f64)).unwrap();
        }
    }
    db
}

#[test]
fn two_stage_sampling_is_uniform_over_tuples_on_power_law_overlay() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = topology::barabasi_albert(120, 2, &mut rng).unwrap();
    let db = skewed_db(&g);
    let total = db.total_tuples();
    let mut op = SamplingOperator::new(SamplingConfig::recommended(120)).unwrap();
    let origin = g.nodes().next().unwrap();

    // Draw many samples; each tuple should appear ≈ draws/total times.
    let draws = 40 * total;
    let mut counts = std::collections::HashMap::new();
    for _ in 0..draws {
        op.begin_occasion();
        let (_, t, _) = op.sample_tuple(&g, &db, origin, &mut rng).unwrap();
        *counts.entry(t.value(0).unwrap() as u64).or_insert(0u64) += 1;
    }
    assert_eq!(counts.len(), total, "every tuple reachable");

    // TVD between the empirical tuple distribution and uniform.
    let mut cs: Vec<u64> = counts.values().copied().collect();
    cs.sort_unstable();
    let emp = DiscreteDistribution::from_counts(&cs).unwrap();
    let uni = DiscreteDistribution::uniform(total).unwrap();
    let tvd = total_variation_distance(&emp, &uni).unwrap();
    assert!(tvd < 0.08, "two-stage tuple sampling TVD {tvd}");
}

#[test]
fn metropolis_matches_oracle_distribution_on_mesh() {
    let g = topology::mesh(6, 6, false).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let w = |v: NodeId| f64::from(v.0 % 4 + 1); // nonuniform target
    let mut op = SamplingOperator::new(SamplingConfig::recommended(36)).unwrap();
    let oracle = OracleSampler::new();
    let origin = g.nodes().next().unwrap();

    let draws = 30_000;
    let mut metro = vec![0u64; 36];
    let mut orac = vec![0u64; 36];
    for _ in 0..draws {
        op.begin_occasion();
        let (v, _) = op.sample_node(&g, &w, origin, &mut rng).unwrap();
        metro[v.0 as usize] += 1;
        let v = oracle.sample_node(&g, &w, &mut rng).unwrap();
        orac[v.0 as usize] += 1;
    }
    let dm = DiscreteDistribution::from_counts(&metro).unwrap();
    let do_ = DiscreteDistribution::from_counts(&orac).unwrap();
    let tvd = total_variation_distance(&dm, &do_).unwrap();
    assert!(tvd < 0.05, "Metropolis vs oracle TVD {tvd}");
}

#[test]
fn exact_mixing_time_is_within_theorem3_bound_on_all_topologies() {
    let w = uniform_weight();
    let gamma = 0.02;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graphs = vec![
        ("mesh", topology::mesh(5, 5, false).unwrap()),
        ("ring", topology::ring(24).unwrap()),
        ("star", topology::star(25).unwrap()),
        ("ba", topology::barabasi_albert(25, 2, &mut rng).unwrap()),
        (
            "ws",
            topology::watts_strogatz(24, 4, 0.2, &mut rng).unwrap(),
        ),
    ];
    for (name, g) in graphs {
        let (p, _, target) = mixing::transition_matrix(&g, &w).unwrap();
        let tau = mixing::mixing_time(&p, &target, gamma, 20_000)
            .unwrap()
            .unwrap_or_else(|| panic!("{name}: did not mix"));
        let diag = mixing::spectral_diagnostics(&p, &target, 400).unwrap();
        let bound = (1.0 / diag.eigengap) * ((1.0 / target.min_prob()).ln() + (1.0 / gamma).ln());
        assert!(
            (tau as f64) <= bound * 1.10,
            "{name}: τ({gamma}) = {tau} exceeds Theorem-3 bound {bound:.1}"
        );
    }
}

#[test]
fn estimator_built_on_sampler_is_unbiased() {
    // The ultimate consumer check: averaging sampled tuple values
    // converges to the true mean on a skewed database.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = topology::barabasi_albert(80, 2, &mut rng).unwrap();
    let db = skewed_db(&g);
    let expr = digest::db::Expr::first_attr(db.schema());
    let truth = db.exact_avg(&expr).unwrap();
    let sigma = {
        let mut m = digest::stats::RunningMoments::new();
        for (_, t) in db.iter() {
            m.push(t.value(0).unwrap());
        }
        m.population_std()
    };

    let mut op = SamplingOperator::new(SamplingConfig::recommended(80)).unwrap();
    let origin = g.nodes().next().unwrap();
    let n = 4_000u32;
    let mut sum = 0.0;
    for _ in 0..n {
        op.begin_occasion();
        let (_, t, _) = op.sample_tuple(&g, &db, origin, &mut rng).unwrap();
        sum += expr.eval(&t).unwrap();
    }
    let mean = sum / f64::from(n);
    // 4σ/√n tolerance.
    let tol = 4.0 * sigma / f64::from(n).sqrt();
    assert!(
        (mean - truth).abs() < tol,
        "mean {mean} vs truth {truth} (tol {tol})"
    );
}
