//! Integration: `MEDIAN` continuous queries end to end — the
//! distribution-free aggregate extension.

use digest::core::baselines::PushAllEngine;
use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, QuerySystem, SchedulerKind,
    TickContext,
};
use digest::db::{Expr, P2PDatabase, Schema, Tuple, TupleHandle};
use digest::net::{topology, Graph, NodeId};
use digest::sampling::SamplingConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A skewed world: most values small, a heavy right tail, so the median
/// and mean disagree strongly.
struct World {
    graph: Graph,
    db: P2PDatabase,
    handles: Vec<TupleHandle>,
}

fn world(seed: u64) -> World {
    let graph = topology::complete(15).unwrap();
    let mut db = P2PDatabase::new(Schema::single("latency"));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut handles = Vec::new();
    for v in graph.nodes() {
        db.register_node(v);
        for _ in 0..40 {
            // 90% fast responses near 10ms, 10% slow tail up to ~1000ms.
            let value = if rng.gen_bool(0.9) {
                rng.gen_range(8.0..12.0)
            } else {
                rng.gen_range(200.0..1000.0)
            };
            handles.push(db.insert(v, Tuple::single(value)).unwrap());
        }
    }
    World { graph, db, handles }
}

fn oracle_median(w: &World) -> f64 {
    let mut vals: Vec<f64> = w.db.iter().map(|(_, t)| t.value(0).unwrap()).collect();
    vals.sort_by(f64::total_cmp);
    digest::stats::sample_quantile(&vals, 0.5).unwrap()
}

fn median_engine(w: &World, delta: f64, epsilon: f64) -> DigestEngine {
    let query = ContinuousQuery::parse(
        &format!("SELECT MEDIAN(latency) FROM R WITH delta={delta}, epsilon={epsilon}, p=0.95"),
        w.db.schema(),
    )
    .unwrap();
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::All,
            estimator: EstimatorKind::Repeated, // overridden by MEDIAN
            sampling: SamplingConfig::recommended(w.graph.node_count()),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn median_engine_tracks_the_median_not_the_mean() {
    let w = world(1);
    let truth = oracle_median(&w);
    let mean = w.db.exact_avg(&Expr::first_attr(w.db.schema())).unwrap();
    assert!(
        mean > truth * 3.0,
        "heavy tail must pull the mean away: mean {mean}, median {truth}"
    );

    let mut sys = median_engine(&w, 2.0, 1.0);
    assert_eq!(sys.name(), "ALL+QUANTILE");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut hits = 0;
    for tick in 0..10 {
        let ctx = TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        };
        let o = sys.on_tick(&ctx, &mut rng).unwrap();
        if (o.estimate - truth).abs() <= 1.0 {
            hits += 1;
        }
        assert!((o.estimate - mean).abs() > 10.0, "estimate chased the mean");
    }
    assert!(hits >= 8, "median coverage {hits}/10");
}

#[test]
fn median_is_robust_to_tail_corruption() {
    // Blow up the tail values 10×: the mean moves wildly, the median
    // (and the engine's estimate) barely moves.
    let mut w = world(3);
    let truth_before = oracle_median(&w);
    let mut sys = median_engine(&w, 2.0, 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    fn ctx_tick(tick: u64, w: &World) -> TickContext<'_> {
        TickContext {
            tick,
            graph: &w.graph,
            db: &w.db,
            origin: NodeId(0),
        }
    }
    let before = sys.on_tick(&ctx_tick(0, &w), &mut rng).unwrap().estimate;

    let mean_before = w.db.exact_avg(&Expr::first_attr(w.db.schema())).unwrap();
    for &h in &w.handles {
        let v = w.db.read(h).unwrap().value(0).unwrap();
        if v > 100.0 {
            w.db.update(h, &[v * 10.0]).unwrap();
        }
    }
    let mean_after = w.db.exact_avg(&Expr::first_attr(w.db.schema())).unwrap();
    assert!(mean_after > 5.0 * mean_before, "mean must explode");

    let after = sys.on_tick(&ctx_tick(1, &w), &mut rng).unwrap().estimate;
    assert!(
        (after - before).abs() < 2.0,
        "median estimate moved {before} → {after} despite tail-only corruption"
    );
    assert!((after - truth_before).abs() < 2.0);
}

#[test]
fn push_all_computes_exact_median() {
    let w = world(5);
    let truth = oracle_median(&w);
    let query = ContinuousQuery::parse(
        "SELECT MEDIAN(latency) FROM R WITH delta=1, epsilon=1, p=0.95",
        w.db.schema(),
    )
    .unwrap();
    let mut sys = PushAllEngine::new(query);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let ctx = TickContext {
        tick: 0,
        graph: &w.graph,
        db: &w.db,
        origin: NodeId(0),
    };
    let o = sys.on_tick(&ctx, &mut rng).unwrap();
    assert!(
        (o.estimate - truth).abs() < 1e-9,
        "{} vs {truth}",
        o.estimate
    );
}
