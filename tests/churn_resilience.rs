//! Integration: the full stack under heavy churn (MEMORY-style worlds).

use digest::core::baselines::{FilterConfig, FilterEngine, PushAllEngine};
use digest::core::{
    ContinuousQuery, DigestEngine, EngineConfig, EstimatorKind, Precision, SchedulerKind,
};
use digest::db::Expr;
use digest::sampling::SamplingConfig;
use digest::sim::{run, RunConfig};
use digest::workload::{MemoryConfig, MemoryWorkload, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn stormy(seed: u64) -> MemoryWorkload {
    MemoryWorkload::new(MemoryConfig {
        leave_prob: 0.002, // ×40 s/tick → aggressive membership turnover
        join_rate: 0.8,
        seed,
        ..MemoryConfig::reduced(300, 120, 2_400)
    })
}

fn digest_engine(w: &MemoryWorkload, delta: f64, epsilon: f64) -> DigestEngine {
    let query = ContinuousQuery::avg(
        Expr::first_attr(w.db().schema()),
        Precision::new(delta, epsilon, 0.95).unwrap(),
    );
    DigestEngine::new(
        query,
        EngineConfig {
            scheduler: SchedulerKind::Pred(3),
            estimator: EstimatorKind::Repeated,
            sampling: SamplingConfig::recommended(w.graph().node_count()),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn digest_survives_heavy_churn_and_stays_accurate() {
    let mut w = stormy(1);
    let (delta, epsilon) = (10.0, 3.0);
    let mut sys = digest_engine(&w, delta, epsilon);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let report = run(
        &mut w,
        &mut sys,
        RunConfig::default(),
        delta,
        epsilon,
        &mut rng,
    )
    .expect("no engine error under churn");

    assert!(
        w.churn_events() > 100,
        "the storm actually happened: {}",
        w.churn_events()
    );
    assert!(
        report.confidence_violation_rate() <= 0.25,
        "ε-violations {} under churn",
        report.confidence_violation_rate()
    );
    // The network and database stayed consistent throughout.
    assert!(w.graph().is_connected());
    for (handle, _) in w.db().iter() {
        assert!(w.graph().contains(handle.node));
    }
}

#[test]
fn rpt_panel_never_dangles_under_churn() {
    // Alternate churn bursts with snapshots; the retained panel must
    // always resolve or be silently replaced — never panic, never err.
    let mut w = stormy(3);
    let mut sys = digest_engine(&w, 10.0, 4.0);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let report = run(
        &mut w,
        &mut sys,
        RunConfig::for_ticks(40),
        10.0,
        4.0,
        &mut rng,
    )
    .unwrap();
    assert!(report.total_snapshots() > 0);
    assert!(report.records.iter().all(|r| r.estimate.is_finite()));
}

#[test]
fn push_baselines_survive_churn_too() {
    let (delta, epsilon) = (10.0, 3.0);
    {
        let mut w = stormy(5);
        let query = ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(delta, epsilon, 0.95).unwrap(),
        );
        let mut sys = PushAllEngine::new(query);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let report = run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(30),
            delta,
            epsilon,
            &mut rng,
        )
        .unwrap();
        // Exact system: zero error at every tick.
        assert!(report.max_snapshot_error() < 1e-9);
    }
    {
        let mut w = stormy(7);
        let query = ContinuousQuery::avg(
            Expr::first_attr(w.db().schema()),
            Precision::new(delta, epsilon, 0.95).unwrap(),
        );
        let mut sys = FilterEngine::new(query, FilterConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let report = run(
            &mut w,
            &mut sys,
            RunConfig::for_ticks(30),
            delta,
            epsilon,
            &mut rng,
        )
        .unwrap();
        // Filters bound the error by ε as long as registrations keep up.
        assert!(
            report.max_snapshot_error() <= epsilon + 1e-9,
            "filter error {}",
            report.max_snapshot_error()
        );
    }
}

#[test]
fn sampling_cost_scales_with_churn_not_catastrophically() {
    // Heavier churn costs more (lost panel members ⇒ more fresh walks)
    // but must stay the same order of magnitude.
    let run_messages = |leave: f64, join: f64, seed: u64| {
        let mut w = MemoryWorkload::new(MemoryConfig {
            leave_prob: leave,
            join_rate: join,
            seed,
            ..MemoryConfig::reduced(300, 120, 1_600)
        });
        let mut sys = digest_engine(&w, 10.0, 3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        run(&mut w, &mut sys, RunConfig::default(), 10.0, 3.0, &mut rng)
            .unwrap()
            .total_messages()
    };
    let calm = run_messages(0.0, 0.0, 9);
    let stormy = run_messages(0.002, 0.8, 10);
    assert!(
        stormy < calm * 6,
        "churn cost blew up: {stormy} vs calm {calm}"
    );
}
