#!/bin/bash
# Regenerates every table and figure at the paper's Table II scale.
set -e
cd "$(dirname "$0")"
for exp in exp_table2 exp_fig1_trace exp_fig4a exp_fig4b exp_fig5a exp_fig5b exp_mixing exp_eq11_variance exp_ablations exp_tag exp_seeds exp_plots; do
    echo "=== $exp ==="
    cargo run --release -q -p digest-bench --bin "$exp" -- --scale "${1:-full}"
    echo
done
