//! Seeded topology generators.
//!
//! The paper's evaluation simulates the weather-forecast network with a
//! **mesh** topology and the SETI@home-like computing network with a
//! **power-law** topology ("considering power-law graph as a generic and
//! realistic model for the topology of peer-to-peer networks", §V-B). The
//! other generators serve tests, ablations, and the mixing-time sweeps.
//!
//! Every generator is deterministic given its RNG, returns a *connected*
//! graph, and documents how connectivity is ensured.

use crate::error::NetError;
use crate::graph::{Graph, NodeId};
use crate::store::NodeStore;
use crate::Result;
use rand::Rng;

/// A 2-D mesh (grid) of `rows × cols` nodes, 4-neighbor connectivity,
/// optionally wrapped into a torus.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if either dimension is zero.
pub fn mesh(rows: usize, cols: usize, wrap: bool) -> Result<Graph> {
    if rows == 0 || cols == 0 {
        return Err(NetError::InvalidTopology {
            reason: "mesh dimensions must be positive",
        });
    }
    let mut g = Graph::with_capacity(rows * cols);
    let ids: Vec<NodeId> = (0..rows * cols).map(|_| g.add_node()).collect();
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1))?;
            } else if wrap && cols > 2 {
                g.add_edge(at(r, c), at(r, 0))?;
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c))?;
            } else if wrap && rows > 2 {
                g.add_edge(at(r, c), at(0, c))?;
            }
        }
    }
    Ok(g)
}

/// A ring of `n` nodes.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(NetError::InvalidTopology {
            reason: "ring requires at least 3 nodes",
        });
    }
    let mut g = Graph::with_capacity(n);
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for i in 0..n {
        g.add_edge(ids[i], ids[(i + 1) % n])?;
    }
    Ok(g)
}

/// The complete graph on `n` nodes.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(NetError::InvalidTopology {
            reason: "complete graph requires n >= 1",
        });
    }
    let mut g = Graph::with_capacity(n);
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(ids[i], ids[j])?;
        }
    }
    Ok(g)
}

/// A star: node 0 at the hub, `n − 1` leaves.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(NetError::InvalidTopology {
            reason: "star requires at least 2 nodes",
        });
    }
    let mut g = Graph::with_capacity(n);
    let hub = g.add_node();
    for _ in 1..n {
        let leaf = g.add_node();
        g.add_edge(hub, leaf)?;
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: each of the `n − m0` arriving
/// nodes attaches `m` edges to existing nodes with probability
/// proportional to degree, yielding a power-law degree distribution with
/// exponent `α ≈ 3` — the paper's generic P2P topology model.
///
/// Starts from a clique of `m0 = m + 1` seed nodes, so the result is
/// always connected.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `m == 0` or `n ≤ m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if m == 0 {
        return Err(NetError::InvalidTopology {
            reason: "BA attachment count m must be positive",
        });
    }
    let m0 = m + 1;
    if n < m0 {
        return Err(NetError::InvalidTopology {
            reason: "BA requires n > m",
        });
    }

    let mut g = Graph::with_capacity(n);
    let mut ids: Vec<NodeId> = (0..m0).map(|_| g.add_node()).collect();
    for i in 0..m0 {
        for j in i + 1..m0 {
            g.add_edge(ids[i], ids[j])?;
        }
    }

    // `targets` holds one entry per edge endpoint: sampling it uniformly
    // is sampling nodes proportional to degree.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for &id in &ids {
        for _ in 0..g.degree(id) {
            targets.push(id);
        }
    }

    while ids.len() < n {
        let new = g.add_node();
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let candidate = targets[rng.gen_range(0..targets.len())];
            if candidate != new && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &c in &chosen {
            g.add_edge(new, c)?;
            targets.push(new);
            targets.push(c);
        }
        ids.push(new);
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment straight into a flat
/// [`NodeStore`] — the million-node path. Attachment logic matches
/// [`barabasi_albert`] (seed clique of `m0 = m + 1`, degree-proportional
/// `targets` sampling), but edges are accumulated into one edge list and
/// bulk-loaded as an exact CSR: O(V + E) with zero arena slack, instead
/// of 10⁶ incremental row relocations. Node values/weights start at
/// `0.0`/`1.0`; callers initialise the value column afterwards.
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `m == 0` or `n ≤ m`;
/// [`NetError::CapacityExceeded`] if `n` outgrows u32 ids.
pub fn barabasi_albert_store<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<NodeStore> {
    if m == 0 {
        return Err(NetError::InvalidTopology {
            reason: "BA attachment count m must be positive",
        });
    }
    let m0 = m + 1;
    if n < m0 {
        return Err(NetError::InvalidTopology {
            reason: "BA requires n > m",
        });
    }
    let edge_total = m0 * (m0 - 1) / 2 + (n - m0) * m;
    let mut store = NodeStore::with_capacity(n, edge_total);
    let mut refs = Vec::with_capacity(n);
    for _ in 0..n {
        refs.push(store.add_node(0.0, 1.0)?);
    }

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(edge_total);
    // Seed clique over the first m0 ids.
    for i in 0..m0 {
        for j in i + 1..m0 {
            edges.push((refs[i].id(), refs[j].id()));
        }
    }
    // `targets` holds one entry per edge endpoint: sampling it uniformly
    // is sampling nodes proportional to degree. The clique block is laid
    // out id-major — the same order the Graph generator produces — so
    // both generators consume the RNG stream identically and one seed
    // yields one topology regardless of representation.
    let mut targets: Vec<u32> = Vec::with_capacity(2 * edge_total);
    for r in refs.iter().take(m0) {
        for _ in 0..(m0 - 1) {
            targets.push(r.id());
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(m);
    for arrival in refs.iter().skip(m0) {
        let new_id = arrival.id();
        chosen.clear();
        while chosen.len() < m {
            let candidate = targets[rng.gen_range(0..targets.len())];
            if candidate != new_id && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &c in &chosen {
            edges.push((new_id, c));
            targets.push(new_id);
            targets.push(c);
        }
    }
    store.bulk_load_edges(&edges)?;
    Ok(store)
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: edges are sampled
/// independently with probability `p`, then any disconnected component is
/// stitched to the giant component with one random edge (the standard
/// simulation practice for overlay experiments — an unstructured P2P
/// overlay repairs partitions through its bootstrap service).
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `n == 0` or `p ∉ [0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if n == 0 {
        return Err(NetError::InvalidTopology {
            reason: "ER requires n >= 1",
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(NetError::InvalidTopology {
            reason: "ER probability must be in [0, 1]",
        });
    }
    let mut g = Graph::with_capacity(n);
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(ids[i], ids[j])?;
            }
        }
    }
    stitch_connected(&mut g, rng)?;
    Ok(g)
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k` nearest neighbors (k even), with each edge rewired with
/// probability `beta`. Connectivity is repaired by stitching as in
/// [`erdos_renyi`].
///
/// # Errors
///
/// [`NetError::InvalidTopology`] if `k` is odd, zero, or ≥ `n`, or `beta`
/// is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph> {
    if k == 0 || !k.is_multiple_of(2) || k >= n {
        return Err(NetError::InvalidTopology {
            reason: "WS requires even 0 < k < n",
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(NetError::InvalidTopology {
            reason: "WS beta must be in [0, 1]",
        });
    }
    let mut g = Graph::with_capacity(n);
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node()).collect();
    for i in 0..n {
        for d in 1..=k / 2 {
            let j = (i + d) % n;
            if rng.gen_bool(beta) {
                // Rewire: connect i to a random non-neighbor instead.
                let mut tries = 0;
                loop {
                    let t = ids[rng.gen_range(0..n)];
                    if t != ids[i] && !g.has_edge(ids[i], t) {
                        g.add_edge(ids[i], t)?;
                        break;
                    }
                    tries += 1;
                    if tries > 50 {
                        // Dense corner: keep the lattice edge.
                        g.add_edge(ids[i], ids[j])?;
                        break;
                    }
                }
            } else {
                g.add_edge(ids[i], ids[j])?;
            }
        }
    }
    stitch_connected(&mut g, rng)?;
    Ok(g)
}

/// Connects every stray component to the largest one with a single random
/// edge.
fn stitch_connected<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) -> Result<()> {
    loop {
        let giant = g.largest_component();
        if giant.len() == g.node_count() {
            return Ok(());
        }
        let in_giant: std::collections::BTreeSet<NodeId> = giant.iter().copied().collect();
        let Some(stray) = g.nodes().find(|id| !in_giant.contains(id)) else {
            // Giant smaller than node count implies a stray exists; if the
            // scan still finds none, there is nothing left to stitch.
            return Ok(());
        };
        let anchor = giant[rng.gen_range(0..giant.len())];
        g.add_edge(stray, anchor)?;
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::metrics::{degree_distribution, estimate_power_law_alpha};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn mesh_counts() {
        let g = mesh(4, 5, false).unwrap();
        assert_eq!(g.node_count(), 20);
        // Edges: horizontal 4·4 + vertical 3·5 = 31.
        assert_eq!(g.edge_count(), 31);
        assert!(g.is_connected());
        // Interior nodes have degree 4, corners 2.
        let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        assert_eq!(degrees.iter().copied().min().unwrap(), 2);
        assert_eq!(degrees.iter().copied().max().unwrap(), 4);
    }

    #[test]
    fn torus_is_regular() {
        let g = mesh(4, 4, true).unwrap();
        assert!(g.is_connected());
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn mesh_rejects_zero() {
        assert!(mesh(0, 5, false).is_err());
        assert!(mesh(5, 0, false).is_err());
    }

    #[test]
    fn ring_and_complete_and_star() {
        let r = ring(10).unwrap();
        assert_eq!(r.edge_count(), 10);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
        assert!(ring(2).is_err());

        let k = complete(6).unwrap();
        assert_eq!(k.edge_count(), 15);
        assert!(k.nodes().all(|v| k.degree(v) == 5));

        let s = star(5).unwrap();
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId(0)), 4);
        assert!(star(1).is_err());
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(500, 3, &mut rng(1)).unwrap();
        assert_eq!(g.node_count(), 500);
        assert!(g.is_connected());
        // Each arriving node adds m edges; seed clique has m(m+1)/2.
        let expected = 6 + (500 - 4) * 3;
        assert_eq!(g.edge_count(), expected);
        // Minimum degree is m.
        assert!(g.nodes().all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let g = barabasi_albert(2000, 2, &mut rng(2)).unwrap();
        let stats = degree_distribution(&g);
        // A hub far above the mean is the signature of preferential
        // attachment.
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
        let alpha = estimate_power_law_alpha(&g, 2).unwrap();
        assert!(alpha > 1.8 && alpha < 3.8, "alpha = {alpha}");
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        assert!(barabasi_albert(10, 0, &mut rng(3)).is_err());
        assert!(barabasi_albert(3, 3, &mut rng(3)).is_err());
    }

    #[test]
    fn barabasi_albert_store_matches_edge_budget() {
        let s = barabasi_albert_store(500, 3, &mut rng(1)).unwrap();
        assert_eq!(s.live_count(), 500);
        let expected = 6 + (500 - 4) * 3;
        assert_eq!(s.edge_count(), expected);
        // Minimum degree is m; bulk CSR is exact (no slack).
        assert!(s.live_ids().all(|v| s.degree(v) >= 3));
        // Same attachment process ⇒ same degree sequence as the Graph
        // generator under the same seed.
        let g = barabasi_albert(500, 3, &mut rng(1)).unwrap();
        let mut dg: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let mut ds: Vec<usize> = s.live_ids().map(|v| s.degree(v)).collect();
        dg.sort_unstable();
        ds.sort_unstable();
        assert_eq!(dg, ds);
    }

    #[test]
    fn barabasi_albert_store_rejects_bad_params() {
        assert!(barabasi_albert_store(10, 0, &mut rng(3)).is_err());
        assert!(barabasi_albert_store(3, 3, &mut rng(3)).is_err());
    }

    #[test]
    fn erdos_renyi_connected_and_sized() {
        let g = erdos_renyi(200, 0.02, &mut rng(4)).unwrap();
        assert_eq!(g.node_count(), 200);
        assert!(g.is_connected());
        // Expected edges ≈ C(200,2)·0.02 = 398; stitching adds a few.
        assert!(
            g.edge_count() > 250 && g.edge_count() < 600,
            "edges = {}",
            g.edge_count()
        );
    }

    #[test]
    fn erdos_renyi_zero_p_becomes_tree_like() {
        // p = 0 leaves n isolated nodes; stitching must connect them all.
        let g = erdos_renyi(50, 0.0, &mut rng(5)).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 49);
    }

    #[test]
    fn erdos_renyi_validates() {
        assert!(erdos_renyi(0, 0.5, &mut rng(6)).is_err());
        assert!(erdos_renyi(10, 1.5, &mut rng(6)).is_err());
        assert!(erdos_renyi(10, -0.1, &mut rng(6)).is_err());
    }

    #[test]
    fn watts_strogatz_structure() {
        let g = watts_strogatz(100, 4, 0.1, &mut rng(7)).unwrap();
        assert_eq!(g.node_count(), 100);
        assert!(g.is_connected());
        // Edge count stays ~ nk/2 (rewiring preserves it, stitching may add).
        assert!(
            g.edge_count() >= 195 && g.edge_count() <= 215,
            "edges = {}",
            g.edge_count()
        );
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, &mut rng(8)).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn watts_strogatz_validates() {
        assert!(watts_strogatz(10, 3, 0.1, &mut rng(9)).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, &mut rng(9)).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut rng(9)).is_err()); // k >= n
        assert!(watts_strogatz(10, 2, 1.5, &mut rng(9)).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = barabasi_albert(100, 2, &mut rng(42)).unwrap();
        let b = barabasi_albert(100, 2, &mut rng(42)).unwrap();
        let ea: Vec<_> = a.nodes().map(|v| a.neighbors(v).to_vec()).collect();
        let eb: Vec<_> = b.nodes().map(|v| b.neighbors(v).to_vec()).collect();
        assert_eq!(ea, eb);
    }
}
