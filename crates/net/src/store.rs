//! Flat structure-of-arrays node store for million-node overlays.
//!
//! [`Graph`](crate::Graph) keeps the paper's "ids are never reused"
//! contract so engine-held tuple handles can detect departures (§IV-B2a)
//! — the right trade at 10³–10⁴ nodes, but at 10⁶ nodes under sustained
//! churn the ever-growing id space and per-node heap allocations dominate
//! memory. [`NodeStore`] is the scale-path alternative:
//!
//! * **u32 ids with free-list recycling** — a departed id returns to a
//!   free list and is handed out again, so the row tables stay dense
//!   under unbounded churn. Safety against aliasing comes from a
//!   per-row **generation counter**: a [`NodeRef`] captures `(id, gen)`
//!   at creation, and resolving a ref whose generation no longer matches
//!   yields "departed" — a recycled id can never impersonate the node a
//!   stale handle pointed at (the property the proptests pin).
//! * **SoA columns** — `value`, `weight`, and generation/liveness are
//!   parallel flat arrays indexed by id: one cache line pulls eight
//!   neighbors' values, and the whole store is a handful of allocations
//!   regardless of N.
//! * **CSR adjacency arena** — one shared neighbor pool plus per-row
//!   `(offset, len, cap)`, exactly the layout the sampling operator's
//!   per-occasion snapshots use. Bulk loads lay rows out back-to-back
//!   with `cap == len` (a textbook CSR); incremental edge-adds relocate
//!   a full row to the arena tail with doubled capacity, and compaction
//!   reclaims garbage spans once they dominate — bounding the arena at
//!   ≤ 2× the live edge entries.
//! * **Dirty-row change journal** — structural changes bump an epoch and
//!   record the touched row ids in a bounded journal with the same
//!   contract as [`Graph::changes_since`](crate::Graph::changes_since):
//!   marks the journal cannot cover (too old, or from a different
//!   store) answer `None` and force consumers to rebuild.
//!
//! The accounting methods ([`NodeStore::bytes`],
//! [`NodeStore::bytes_per_node`]) measure actual heap footprint so the
//! `bench_sim` regression gate can assert ≤ 64 resident bytes/node for
//! store + adjacency at 10⁶ nodes.

use crate::error::NetError;
use crate::graph::NodeId;
use crate::Result;
use rand::Rng;

/// Dirty-row journal bound; marks older than the floor established by an
/// overflow answer `None` from [`NodeStore::dirty_rows_since`].
const JOURNAL_CAP: usize = 4096;

/// Pool size below which compaction is never attempted.
const COMPACT_MIN_POOL: usize = 1024;

/// Rejection-sampling attempts before [`NodeStore::random_live`] falls
/// back to a deterministic wrap-around scan.
const RANDOM_LIVE_ATTEMPTS: usize = 64;

/// Generation-tagged handle to a store row.
///
/// The id names a row; the generation names one *incarnation* of that
/// row. Row generations start at 1 (live), increment to even on
/// departure, and increment to odd again when the free list recycles the
/// id — so a `NodeRef` resolves only while its exact incarnation is
/// live, and a recycled id never aliases a stale handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeRef {
    id: u32,
    gen: u32,
}

impl NodeRef {
    /// The raw row id (only meaningful while the ref still resolves).
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }

    /// The incarnation tag captured at creation.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

/// Flat structure-of-arrays node store with CSR adjacency.
///
/// See the [module docs](self) for the design; see
/// [`Graph`](crate::Graph) for the pointer-stable small-scale sibling.
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    /// Per-row aggregate value column.
    value: Vec<f64>,
    /// Per-row sampling weight column.
    weight: Vec<f64>,
    /// Per-row generation: odd = live, even = departed.
    gen: Vec<u32>,
    /// Start of each row's neighbor span inside `pool`.
    adj_off: Vec<u32>,
    /// Live neighbor count of each row.
    adj_len: Vec<u32>,
    /// Allocated span of each row (`len ≤ cap`).
    adj_cap: Vec<u32>,
    /// Shared neighbor arena; live rows occupy disjoint spans.
    pool: Vec<u32>,
    /// Arena slots unreachable from any live row.
    pool_garbage: usize,
    /// Departed ids available for recycling (LIFO).
    free: Vec<u32>,
    /// Number of live rows.
    live_count: usize,
    /// Number of undirected edges.
    edge_count: usize,
    /// Monotonic mutation counter; bumped by every structural change.
    epoch: u64,
    /// `(epoch, row)` entries for rows whose adjacency/liveness changed.
    journal: Vec<(u64, u32)>,
    /// Earliest epoch from which `journal` is complete.
    journal_floor: u64,
}

impl NodeStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with exact row capacity for `n` nodes and
    /// arena capacity for `edge_hint` undirected edges (2 entries each).
    /// Capacities are reserved exactly so the bytes/node accounting is
    /// not inflated by growth doubling.
    #[must_use]
    pub fn with_capacity(n: usize, edge_hint: usize) -> Self {
        let mut s = Self::default();
        s.value.reserve_exact(n);
        s.weight.reserve_exact(n);
        s.gen.reserve_exact(n);
        s.adj_off.reserve_exact(n);
        s.adj_len.reserve_exact(n);
        s.adj_cap.reserve_exact(n);
        s.pool.reserve_exact(edge_hint.saturating_mul(2));
        s
    }

    /// Number of live rows.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the store holds no live rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// One past the largest row id ever allocated (dense table bound).
    #[must_use]
    pub fn id_upper_bound(&self) -> usize {
        self.gen.len()
    }

    /// Whether `id` names a currently live row.
    #[must_use]
    pub fn is_live(&self, id: u32) -> bool {
        self.gen.get(id as usize).is_some_and(|g| g % 2 == 1)
    }

    /// Resolves a handle to its row id, or `None` if that incarnation
    /// has departed (even if the id has since been recycled).
    #[must_use]
    pub fn resolve(&self, r: NodeRef) -> Option<u32> {
        (self.gen.get(r.id as usize) == Some(&r.gen)).then_some(r.id)
    }

    /// The current handle for a live row id.
    #[must_use]
    pub fn node_ref(&self, id: u32) -> Option<NodeRef> {
        self.is_live(id).then(|| NodeRef {
            id,
            gen: self.gen[id as usize],
        })
    }

    /// The current mutation epoch (see [`Graph::epoch`](crate::Graph::epoch)).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The row ids whose adjacency or liveness changed since `since`,
    /// sorted and deduplicated — or `None` when the bounded journal
    /// cannot cover the gap (overflow, or a mark from beyond this
    /// store's epoch) and the consumer must rebuild.
    #[must_use]
    pub fn dirty_rows_since(&self, since: u64) -> Option<Vec<u32>> {
        if since == self.epoch {
            return Some(Vec::new());
        }
        if since > self.epoch || since < self.journal_floor {
            return None;
        }
        let mut out: Vec<u32> = self
            .journal
            .iter()
            .filter(|&&(epoch, _)| epoch > since)
            .map(|&(_, id)| id)
            .collect();
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn record_change(&mut self, id: u32) {
        if self.journal.len() >= JOURNAL_CAP {
            self.journal.clear();
            self.journal_floor = self.epoch;
        }
        self.journal.push((self.epoch, id));
    }

    /// Adds a node (recycling a departed id when one is free) and
    /// returns its generation-tagged handle.
    ///
    /// # Errors
    ///
    /// [`NetError::CapacityExceeded`] if the u32 id space is exhausted.
    pub fn add_node(&mut self, value: f64, weight: f64) -> Result<NodeRef> {
        let id = match self.free.pop() {
            Some(id) => {
                let i = id as usize;
                // even (departed) → odd (live), new incarnation. Wrapping
                // preserves parity; a handle 2³² incarnations stale is the
                // only aliasing window and is unreachable in practice.
                self.gen[i] = self.gen[i].wrapping_add(1);
                self.value[i] = value;
                self.weight[i] = weight;
                self.adj_off[i] = 0;
                self.adj_len[i] = 0;
                self.adj_cap[i] = 0;
                id
            }
            None => {
                let id = u32::try_from(self.gen.len()).map_err(|_| NetError::CapacityExceeded)?;
                if id == u32::MAX {
                    return Err(NetError::CapacityExceeded);
                }
                self.value.push(value);
                self.weight.push(weight);
                self.gen.push(1);
                self.adj_off.push(0);
                self.adj_len.push(0);
                self.adj_cap.push(0);
                id
            }
        };
        self.live_count += 1;
        self.bump_epoch();
        self.record_change(id);
        Ok(NodeRef {
            id,
            gen: self.gen[id as usize],
        })
    }

    /// Removes the row a handle points at, detaching every incident
    /// edge, and recycles its id via the free list. Returns `false`
    /// (without error) when the handle no longer resolves — the "node
    /// already left" case callers race against under churn.
    pub fn remove(&mut self, r: NodeRef) -> bool {
        let Some(id) = self.resolve(r) else {
            return false;
        };
        let i = id as usize;
        let off = self.adj_off[i] as usize;
        let len = self.adj_len[i] as usize;
        let neighbors: Vec<u32> = self.pool[off..off + len].to_vec();
        self.gen[i] = self.gen[i].wrapping_add(1); // odd → even: departed
        self.pool_garbage += self.adj_cap[i] as usize;
        self.adj_off[i] = 0;
        self.adj_len[i] = 0;
        self.adj_cap[i] = 0;
        self.edge_count -= len;
        self.live_count -= 1;
        self.bump_epoch();
        self.record_change(id);
        for nb in neighbors {
            if self.is_live(nb) && self.remove_neighbor_entry(nb, id) {
                self.record_change(nb);
            }
        }
        self.free.push(id);
        self.maybe_compact();
        true
    }

    /// The neighbor row of a live id (empty for departed/unknown ids).
    #[must_use]
    pub fn neighbors(&self, id: u32) -> &[u32] {
        if self.is_live(id) {
            let i = id as usize;
            let off = self.adj_off[i] as usize;
            &self.pool[off..off + self.adj_len[i] as usize]
        } else {
            &[]
        }
    }

    /// Degree of a live id (0 for departed/unknown ids).
    #[must_use]
    pub fn degree(&self, id: u32) -> usize {
        if self.is_live(id) {
            self.adj_len[id as usize] as usize
        } else {
            0
        }
    }

    /// The value column entry of a live id (`None` otherwise).
    #[must_use]
    pub fn value(&self, id: u32) -> Option<f64> {
        self.is_live(id).then(|| self.value[id as usize])
    }

    /// Overwrites the value column entry of a live id. Value updates are
    /// not structural: no epoch bump, no journal entry.
    pub fn set_value(&mut self, id: u32, value: f64) -> bool {
        if self.is_live(id) {
            self.value[id as usize] = value;
            true
        } else {
            false
        }
    }

    /// The weight column entry of a live id (`None` otherwise).
    #[must_use]
    pub fn weight(&self, id: u32) -> Option<f64> {
        self.is_live(id).then(|| self.weight[id as usize])
    }

    /// Sum of the value column over live rows (the exact aggregate an
    /// oracle computes; O(rows)).
    #[must_use]
    pub fn value_sum(&self) -> f64 {
        self.gen
            .iter()
            .zip(&self.value)
            .filter(|(g, _)| **g % 2 == 1)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Adds the undirected edge `{a, b}`; `Ok(false)` if already present.
    ///
    /// # Errors
    ///
    /// * [`NetError::SelfLoop`] if `a == b`.
    /// * [`NetError::UnknownNode`] if either id is not live.
    /// * [`NetError::CapacityExceeded`] if the arena outgrows u32 offsets.
    pub fn add_edge(&mut self, a: u32, b: u32) -> Result<bool> {
        if a == b {
            return Err(NetError::SelfLoop(NodeId(a)));
        }
        if !self.is_live(a) {
            return Err(NetError::UnknownNode(NodeId(a)));
        }
        if !self.is_live(b) {
            return Err(NetError::UnknownNode(NodeId(b)));
        }
        if self.neighbors(a).contains(&b) {
            return Ok(false);
        }
        self.push_neighbor(a, b)?;
        self.push_neighbor(b, a)?;
        self.edge_count += 1;
        self.bump_epoch();
        self.record_change(a);
        self.record_change(b);
        Ok(true)
    }

    /// Removes the undirected edge `{a, b}` if present.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if either id is not live.
    pub fn remove_edge(&mut self, a: u32, b: u32) -> Result<bool> {
        if !self.is_live(a) {
            return Err(NetError::UnknownNode(NodeId(a)));
        }
        if !self.is_live(b) {
            return Err(NetError::UnknownNode(NodeId(b)));
        }
        if !self.remove_neighbor_entry(a, b) {
            return Ok(false);
        }
        self.remove_neighbor_entry(b, a);
        self.edge_count -= 1;
        self.bump_epoch();
        self.record_change(a);
        self.record_change(b);
        Ok(true)
    }

    /// Whether the edge `{a, b}` exists.
    #[must_use]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Lays out an exact CSR (`cap == len`, rows back-to-back in id
    /// order) from an edge list over the currently live rows. This is
    /// the bulk-build fast path for topology generators: O(V + E), zero
    /// arena slack, one allocation.
    ///
    /// # Errors
    ///
    /// * [`NetError::NotEmpty`] if the store already holds edges.
    /// * [`NetError::UnknownNode`] / [`NetError::SelfLoop`] on a bad edge.
    /// * [`NetError::CapacityExceeded`] if offsets outgrow u32.
    ///
    /// The caller must supply a *simple* edge list (no duplicates) —
    /// the generators' contract; duplicates are not re-checked here to
    /// keep the load O(V + E).
    pub fn bulk_load_edges(&mut self, edges: &[(u32, u32)]) -> Result<()> {
        if self.edge_count != 0 {
            return Err(NetError::NotEmpty);
        }
        for &(a, b) in edges {
            if a == b {
                return Err(NetError::SelfLoop(NodeId(a)));
            }
            if !self.is_live(a) {
                return Err(NetError::UnknownNode(NodeId(a)));
            }
            if !self.is_live(b) {
                return Err(NetError::UnknownNode(NodeId(b)));
            }
        }
        let entries = edges.len().saturating_mul(2);
        u32::try_from(entries).map_err(|_| NetError::CapacityExceeded)?;
        // Pass 1: degrees.
        let rows = self.gen.len();
        let mut deg = vec![0u32; rows];
        for &(a, b) in edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        // Pass 2: prefix-sum offsets, cap == len.
        let mut off = 0u32;
        for (i, &d) in deg.iter().enumerate() {
            self.adj_off[i] = off;
            self.adj_len[i] = 0;
            self.adj_cap[i] = d;
            off += d;
        }
        // Pass 3: fill (edge order preserved per row, matching the
        // append order an incremental build would produce).
        let mut pool = vec![0u32; entries];
        for &(a, b) in edges {
            let ia = a as usize;
            pool[(self.adj_off[ia] + self.adj_len[ia]) as usize] = b;
            self.adj_len[ia] += 1;
            let ib = b as usize;
            pool[(self.adj_off[ib] + self.adj_len[ib]) as usize] = a;
            self.adj_len[ib] += 1;
        }
        self.pool = pool;
        self.pool_garbage = 0;
        self.edge_count = edges.len();
        self.bump_epoch();
        // A bulk load touches everything: restart the journal so stale
        // marks rebuild rather than chase a journal that skipped it.
        self.journal.clear();
        self.journal_floor = self.epoch;
        Ok(())
    }

    /// Uniformly random live row id, or `None` on an empty store.
    /// Rejection-samples the id space (live rows stay dense thanks to
    /// recycling, so a handful of draws suffice) and falls back to a
    /// deterministic wrap-around scan if unlucky — always terminating,
    /// always a function of the RNG stream alone.
    pub fn random_live<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.live_count == 0 {
            return None;
        }
        let rows = self.gen.len();
        for _ in 0..RANDOM_LIVE_ATTEMPTS {
            let id = u32::try_from(rng.gen_range(0..rows)).ok()?;
            if self.is_live(id) {
                return Some(id);
            }
        }
        // Fallback: scan forward (wrapping) from one more uniform draw.
        let start = rng.gen_range(0..rows);
        for k in 0..rows {
            let id = u32::try_from((start + k) % rows).ok()?;
            if self.is_live(id) {
                return Some(id);
            }
        }
        None
    }

    /// Iterator over live row ids in ascending order (O(rows) scan; for
    /// setup and verification, not per-event hot paths).
    pub fn live_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.gen
            .iter()
            .enumerate()
            .filter(|(_, g)| *g % 2 == 1)
            .filter_map(|(i, _)| u32::try_from(i).ok())
    }

    /// Appends `nb` to `id`'s row, relocating to the arena tail with
    /// doubled capacity when full.
    fn push_neighbor(&mut self, id: u32, nb: u32) -> Result<()> {
        let i = id as usize;
        let len = self.adj_len[i] as usize;
        let cap = self.adj_cap[i] as usize;
        if len == cap {
            let new_cap = (cap * 2).max(4);
            let old_off = self.adj_off[i] as usize;
            let new_off = self.pool.len();
            u32::try_from(new_off + new_cap).map_err(|_| NetError::CapacityExceeded)?;
            self.pool.resize(new_off + new_cap, u32::MAX);
            self.pool.copy_within(old_off..old_off + len, new_off);
            self.pool_garbage += cap;
            self.adj_off[i] = u32::try_from(new_off).map_err(|_| NetError::CapacityExceeded)?;
            self.adj_cap[i] = u32::try_from(new_cap).map_err(|_| NetError::CapacityExceeded)?;
        }
        let off = self.adj_off[i] as usize;
        let len = self.adj_len[i] as usize;
        self.pool[off + len] = nb;
        self.adj_len[i] += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Swap-removes `nb` from `id`'s row; returns whether it was present.
    fn remove_neighbor_entry(&mut self, id: u32, nb: u32) -> bool {
        let i = id as usize;
        let off = self.adj_off[i] as usize;
        let len = self.adj_len[i] as usize;
        let row = &mut self.pool[off..off + len];
        match row.iter().position(|&x| x == nb) {
            Some(pos) => {
                row.swap(pos, len - 1);
                self.adj_len[i] -= 1;
                true
            }
            None => false,
        }
    }

    fn maybe_compact(&mut self) {
        if self.pool.len() > COMPACT_MIN_POOL && self.pool_garbage > self.pool.len() / 2 {
            self.compact();
        }
    }

    /// Rewrites the arena with live rows only (id order, `cap == len`),
    /// reclaiming all garbage and releasing slack capacity. Also the
    /// hook benches call once after construction so the bytes/node gate
    /// measures the steady-state layout, not build-time churn.
    pub fn compact(&mut self) {
        let live_entries = self.pool.len() - self.pool_garbage.min(self.pool.len());
        let mut new_pool = Vec::with_capacity(live_entries);
        for i in 0..self.gen.len() {
            if self.gen[i].is_multiple_of(2) {
                self.adj_off[i] = 0;
                self.adj_len[i] = 0;
                self.adj_cap[i] = 0;
                continue;
            }
            let off = self.adj_off[i] as usize;
            let len = self.adj_len[i] as usize;
            // Offsets stay < current pool length, which already fit u32.
            self.adj_off[i] = u32::try_from(new_pool.len()).unwrap_or(u32::MAX);
            self.adj_cap[i] = self.adj_len[i];
            new_pool.extend_from_slice(&self.pool[off..off + len]);
        }
        self.pool = new_pool;
        self.pool_garbage = 0;
    }

    /// Total heap bytes held by the store: SoA columns, adjacency arena
    /// (including slack capacity — this is *resident* accounting), free
    /// list, and journal.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.value.capacity() * std::mem::size_of::<f64>()
            + self.weight.capacity() * std::mem::size_of::<f64>()
            + self.gen.capacity() * std::mem::size_of::<u32>()
            + self.adj_off.capacity() * std::mem::size_of::<u32>()
            + self.adj_len.capacity() * std::mem::size_of::<u32>()
            + self.adj_cap.capacity() * std::mem::size_of::<u32>()
            + self.pool.capacity() * std::mem::size_of::<u32>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.journal.capacity() * std::mem::size_of::<(u64, u32)>()
    }

    /// Resident bytes per live node (the `bench_sim` gate metric).
    #[must_use]
    pub fn bytes_per_node(&self) -> f64 {
        if self.live_count == 0 {
            return 0.0;
        }
        // Precision loss above 2^52 bytes is irrelevant for a ratio.
        #[allow(clippy::cast_precision_loss)]
        {
            self.bytes() as f64 / self.live_count as f64
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn store_with(n: usize) -> (NodeStore, Vec<NodeRef>) {
        let mut s = NodeStore::new();
        let refs: Vec<NodeRef> = (0..n).map(|i| s.add_node(i as f64, 1.0).unwrap()).collect();
        (s, refs)
    }

    #[test]
    fn add_resolve_remove_roundtrip() {
        let (mut s, refs) = store_with(3);
        assert_eq!(s.live_count(), 3);
        assert_eq!(s.resolve(refs[1]), Some(refs[1].id()));
        assert_eq!(s.value(refs[1].id()), Some(1.0));
        assert!(s.remove(refs[1]));
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.resolve(refs[1]), None);
        assert!(!s.remove(refs[1]), "double-remove is a detected no-op");
    }

    #[test]
    fn recycled_id_never_aliases_stale_ref() {
        let (mut s, refs) = store_with(2);
        let departed = refs[0];
        assert!(s.remove(departed));
        // The id is recycled…
        let fresh = s.add_node(42.0, 1.0).unwrap();
        assert_eq!(fresh.id(), departed.id());
        // …but the stale handle still reads as departed.
        assert_eq!(s.resolve(departed), None);
        assert_eq!(s.resolve(fresh), Some(fresh.id()));
        assert_ne!(fresh.generation(), departed.generation());
        assert_eq!(s.value(fresh.id()), Some(42.0));
    }

    #[test]
    fn id_space_stays_dense_under_churn() {
        let (mut s, mut refs) = store_with(8);
        for round in 0..100 {
            let r = refs.remove(round % refs.len());
            s.remove(r);
            refs.push(s.add_node(0.0, 1.0).unwrap());
        }
        assert_eq!(s.live_count(), 8);
        assert!(
            s.id_upper_bound() <= 9,
            "free-list recycling must keep rows dense, got {}",
            s.id_upper_bound()
        );
    }

    #[test]
    fn edges_and_degrees() {
        let (mut s, refs) = store_with(3);
        let (a, b, c) = (refs[0].id(), refs[1].id(), refs[2].id());
        assert!(s.add_edge(a, b).unwrap());
        assert!(!s.add_edge(b, a).unwrap(), "duplicate edge is a no-op");
        assert!(s.add_edge(b, c).unwrap());
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.degree(b), 2);
        assert_eq!(s.neighbors(b), &[a, c]);
        assert!(s.has_edge(c, b));
        assert!(s.remove_edge(a, b).unwrap());
        assert!(!s.remove_edge(a, b).unwrap());
        assert_eq!(s.degree(b), 1);
        assert!(matches!(
            s.add_edge(a, a).unwrap_err(),
            NetError::SelfLoop(_)
        ));
    }

    #[test]
    fn remove_detaches_both_sides() {
        let (mut s, refs) = store_with(3);
        let (a, b, c) = (refs[0].id(), refs[1].id(), refs[2].id());
        s.add_edge(a, b).unwrap();
        s.add_edge(b, c).unwrap();
        assert!(s.remove(refs[1]));
        assert_eq!(s.edge_count(), 0);
        assert_eq!(s.degree(a), 0);
        assert_eq!(s.degree(c), 0);
        assert_eq!(s.neighbors(a), &[] as &[u32]);
    }

    #[test]
    fn bulk_load_matches_incremental_build() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (0, 3)];
        let (mut bulk, _) = store_with(4);
        bulk.bulk_load_edges(&edges).unwrap();
        let (mut inc, _) = store_with(4);
        for &(a, b) in &edges {
            inc.add_edge(a, b).unwrap();
        }
        for id in 0..4u32 {
            assert_eq!(bulk.neighbors(id), inc.neighbors(id), "row {id}");
        }
        assert_eq!(bulk.edge_count(), inc.edge_count());
        // Bulk load is exact CSR: zero slack.
        assert_eq!(bulk.pool.len(), 2 * edges.len());
        assert!(bulk.bulk_load_edges(&edges).is_err(), "store not empty");
    }

    #[test]
    fn dirty_rows_contract() {
        let (mut s, refs) = store_with(3);
        let mark = s.epoch();
        assert_eq!(s.dirty_rows_since(mark).unwrap(), Vec::<u32>::new());
        s.add_edge(refs[0].id(), refs[1].id()).unwrap();
        assert_eq!(
            s.dirty_rows_since(mark).unwrap(),
            vec![refs[0].id(), refs[1].id()]
        );
        // Future marks and pre-floor marks demand rebuilds.
        assert!(s.dirty_rows_since(s.epoch() + 1).is_none());
        for _ in 0..(JOURNAL_CAP as u32 + 10) {
            s.add_edge(refs[1].id(), refs[2].id()).unwrap();
            s.remove_edge(refs[1].id(), refs[2].id()).unwrap();
        }
        assert!(s.dirty_rows_since(mark).is_none(), "overflowed journal");
    }

    #[test]
    fn compaction_bounds_arena_and_preserves_rows() {
        let (mut s, refs) = store_with(64);
        // Dense-ish edges to blow past COMPACT_MIN_POOL.
        for i in 0..64u32 {
            for j in (i + 1)..64u32 {
                if (i + j) % 3 == 0 {
                    s.add_edge(refs[i as usize].id(), refs[j as usize].id())
                        .unwrap();
                }
            }
        }
        let before: Vec<Vec<u32>> = (0..64u32).map(|i| s.neighbors(i).to_vec()).collect();
        s.compact();
        for (i, row) in before.iter().enumerate() {
            assert_eq!(s.neighbors(i as u32), &row[..], "row {i} after compact");
        }
        assert_eq!(s.pool.len(), 2 * s.edge_count());
        assert_eq!(s.pool_garbage, 0);
    }

    #[test]
    fn random_live_is_uniform_over_live_rows() {
        let (mut s, refs) = store_with(10);
        for r in refs.iter().take(5) {
            s.remove(*r);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let id = s.random_live(&mut rng).unwrap();
            assert!(s.is_live(id));
            seen.insert(id);
        }
        assert_eq!(seen.len(), 5, "all live rows drawn");
        let empty = NodeStore::new();
        assert_eq!(empty.random_live(&mut rng), None);
    }

    #[test]
    fn value_sum_tracks_live_rows_only() {
        let (mut s, refs) = store_with(4);
        assert_eq!(s.value_sum(), 0.0 + 1.0 + 2.0 + 3.0);
        s.remove(refs[2]);
        assert_eq!(s.value_sum(), 0.0 + 1.0 + 3.0);
        s.set_value(refs[0].id(), 10.0);
        assert_eq!(s.value_sum(), 10.0 + 1.0 + 3.0);
    }

    #[test]
    fn bytes_accounting_is_positive_and_bounded() {
        // Pre-sized like bench_sim sizes its overlay: exact column
        // reservations, compacted arena. The fixed ~128 KB journal
        // amortizes away at scale, so measure at a scale-ish n.
        let n = 20_000usize;
        let mut s = NodeStore::with_capacity(n, n);
        let refs: Vec<NodeRef> = (0..n).map(|i| s.add_node(i as f64, 1.0).unwrap()).collect();
        for w in refs.windows(2) {
            s.add_edge(w[0].id(), w[1].id()).unwrap();
        }
        s.compact();
        let per_node = s.bytes_per_node();
        assert!(per_node > 0.0);
        // Path graph: 2 entries/node ≈ 8 B adjacency + 32 B columns.
        assert!(per_node <= 64.0, "path graph must fit the gate: {per_node}");
    }
}
