//! The unstructured overlay graph `G(V, E)`.
//!
//! Node identities are stable `u32` handles that survive unrelated
//! joins/leaves — a departed node's id is never reused, so tuple handles
//! held by the query engine's sample panel can detect departures reliably
//! (a dangling handle means "node left → replace the sample", exactly the
//! rule of paper §IV-B2a).
//!
//! The adjacency representation is a flat structure-of-arrays arena: one
//! shared neighbor pool plus per-node `(offset, len, cap)` rows — the
//! same CSR-style layout the sampling operator's `SnapshotCache` builds
//! per occasion, now native to the graph itself. Compared with the old
//! slot-vector-of-`Vec` layout this removes one heap allocation and one
//! pointer indirection per node, which is what lets 10⁶-node overlays
//! fit in cache-friendly memory. Rows grow by relocation to the arena
//! tail with doubled capacity (amortized O(1) push); departed and
//! relocated spans become garbage that a periodic compaction pass
//! reclaims once it dominates the pool. Neighbor order is exactly the
//! order the old representation produced (append on edge-add,
//! swap-remove on edge-delete), so random-walk trajectories — and hence
//! the deterministic replay gate — are unchanged by the refactor.
//!
//! The graph is simple (no self-loops, no parallel edges) and
//! undirected: O(1) id lookup, O(deg) neighbor iteration, O(deg) edge
//! removal.

use crate::error::NetError;
use crate::Result;
use rand::Rng;
use std::fmt;

/// Stable identifier of an overlay node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Capacity of the structural-change journal. Past this many entries
/// between two snapshot captures the journal overflows and consumers
/// fall back to a full rebuild — the cap bounds Graph memory while
/// keeping every realistic per-tick churn delta patchable.
const JOURNAL_CAP: usize = 1024;

/// Pool size below which compaction is never attempted (compacting tiny
/// pools churns allocations for no measurable win).
const COMPACT_MIN_POOL: usize = 1024;

/// An undirected simple graph over [`NodeId`]s.
///
/// Every structural mutation (node join/leave, edge add/remove) bumps a
/// monotonically increasing **mutation epoch** and records the touched
/// node ids in a bounded journal, so consumers that cache derived views
/// of the topology (e.g. the sampling operator's per-occasion CSR
/// snapshot) can detect staleness in O(1) via [`Graph::epoch`] and
/// patch incrementally via [`Graph::changes_since`].
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Start of each ever-allocated id's neighbor row inside `pool`.
    row_off: Vec<usize>,
    /// Live neighbor count of each row.
    row_len: Vec<usize>,
    /// Allocated span of each row (`len ≤ cap`); slots past `len` are
    /// headroom left by swap-removals or doubling growth.
    row_cap: Vec<usize>,
    /// Liveness flag per ever-allocated id (`false` = departed).
    alive: Vec<bool>,
    /// Shared neighbor arena; live rows occupy disjoint spans.
    pool: Vec<NodeId>,
    /// Arena slots unreachable from any live row (relocated or departed
    /// spans); compaction reclaims them once they dominate the pool.
    pool_garbage: usize,
    /// Ids of live nodes, kept dense for O(1) uniform choice.
    live: Vec<NodeId>,
    /// Position of each live id inside `live` (usize::MAX = not live).
    live_pos: Vec<usize>,
    edge_count: usize,
    /// Monotonic mutation counter; bumped by every structural change.
    epoch: u64,
    /// `(epoch, node)` entries for nodes whose adjacency/liveness changed.
    journal: Vec<(u64, NodeId)>,
    /// Earliest epoch from which `journal` is complete; requests for
    /// changes since an older epoch must fall back to a full rebuild.
    journal_floor: u64,
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` nodes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            row_off: Vec::with_capacity(n),
            row_len: Vec::with_capacity(n),
            row_cap: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            pool: Vec::with_capacity(n.saturating_mul(4)),
            pool_garbage: 0,
            live: Vec::with_capacity(n),
            live_pos: Vec::with_capacity(n),
            edge_count: 0,
            epoch: 0,
            journal: Vec::new(),
            journal_floor: 0,
        }
    }

    /// The current mutation epoch: 0 for a fresh graph, bumped by every
    /// structural change (node add/remove, edge add/remove). Two reads
    /// returning the same epoch guarantee the topology did not change in
    /// between, so derived views captured at one epoch stay valid while
    /// the epoch holds.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The node ids whose adjacency or liveness changed since `since`
    /// (an epoch previously read from [`Graph::epoch`]), sorted and
    /// deduplicated — or `None` if the delta cannot be produced and the
    /// caller must rebuild its view from scratch. That happens when
    ///
    /// * the bounded journal overflowed and no longer reaches back to
    ///   `since`, or
    /// * `since` lies **beyond** the current epoch — a mark taken from a
    ///   different (or since-replaced) graph. Only `since == epoch`
    ///   means "no change"; a future mark can never certify anything
    ///   about *this* topology, so it demands a rebuild rather than
    ///   silently reporting an empty delta.
    #[must_use]
    pub fn changes_since(&self, since: u64) -> Option<Vec<NodeId>> {
        if since == self.epoch {
            return Some(Vec::new());
        }
        if since > self.epoch || since < self.journal_floor {
            return None;
        }
        let mut out: Vec<NodeId> = self
            .journal
            .iter()
            .filter(|&&(epoch, _)| epoch > since)
            .map(|&(_, id)| id)
            .collect();
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Bumps the mutation epoch (one structural change is being applied).
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Records `id` as touched by the current epoch's change. On
    /// overflow the journal restarts from the current epoch: dropped
    /// entries all carry epochs ≤ the new floor, so completeness for
    /// `since ≥ floor` is preserved and [`Graph::changes_since`] answers
    /// `None` (forcing a rebuild) for every mark older than the floor.
    fn record_change(&mut self, id: NodeId) {
        if self.journal.len() >= JOURNAL_CAP {
            self.journal.clear();
            self.journal_floor = self.epoch;
        }
        self.journal.push((self.epoch, id));
    }

    /// The neighbor row of `i` as an arena span (valid for live rows).
    #[inline]
    fn row(&self, i: usize) -> &[NodeId] {
        &self.pool[self.row_off[i]..self.row_off[i] + self.row_len[i]]
    }

    /// Appends `nb` to `id`'s row, relocating the row to the arena tail
    /// with doubled capacity when full. Amortized O(1).
    fn push_neighbor(&mut self, id: NodeId, nb: NodeId) {
        let i = id.0 as usize;
        let len = self.row_len[i];
        if len == self.row_cap[i] {
            let new_cap = (self.row_cap[i] * 2).max(4);
            let old_off = self.row_off[i];
            let new_off = self.pool.len();
            self.pool.resize(new_off + new_cap, NodeId(u32::MAX));
            self.pool.copy_within(old_off..old_off + len, new_off);
            self.pool_garbage += self.row_cap[i];
            self.row_off[i] = new_off;
            self.row_cap[i] = new_cap;
        }
        let off = self.row_off[i];
        self.pool[off + len] = nb;
        self.row_len[i] = len + 1;
        self.maybe_compact();
    }

    /// Swap-removes `nb` from `id`'s row; returns whether it was present.
    fn remove_neighbor(&mut self, id: NodeId, nb: NodeId) -> bool {
        let i = id.0 as usize;
        let off = self.row_off[i];
        let len = self.row_len[i];
        let row = &mut self.pool[off..off + len];
        match row.iter().position(|&x| x == nb) {
            Some(pos) => {
                row.swap(pos, len - 1);
                self.row_len[i] = len - 1;
                true
            }
            None => false,
        }
    }

    /// Compacts the arena when garbage spans dominate it.
    fn maybe_compact(&mut self) {
        if self.pool.len() > COMPACT_MIN_POOL && self.pool_garbage > self.pool.len() / 2 {
            self.compact_pool();
        }
    }

    /// Rewrites the arena with live rows only (in id order, `cap = len`),
    /// reclaiming every garbage span. O(pool). Neighbor order within
    /// each row is preserved, so derived views and walks are unaffected.
    fn compact_pool(&mut self) {
        let mut new_pool = Vec::with_capacity(self.pool.len() - self.pool_garbage);
        for i in 0..self.row_off.len() {
            if !self.alive[i] {
                self.row_off[i] = 0;
                self.row_len[i] = 0;
                self.row_cap[i] = 0;
                continue;
            }
            let off = self.row_off[i];
            let len = self.row_len[i];
            self.row_off[i] = new_pool.len();
            self.row_cap[i] = len;
            new_pool.extend_from_slice(&self.pool[off..off + len]);
        }
        self.pool = new_pool;
        self.pool_garbage = 0;
    }

    /// Adds a new node and returns its id. Ids are never reused.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.row_off.len()).unwrap_or(u32::MAX));
        self.row_off.push(0);
        self.row_len.push(0);
        self.row_cap.push(0);
        self.alive.push(true);
        self.live_pos.push(self.live.len());
        self.live.push(id);
        self.bump_epoch();
        self.record_change(id);
        id
    }

    /// Removes a node and all its incident edges.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if the node does not exist or already left.
    pub fn remove_node(&mut self, id: NodeId) -> Result<()> {
        if !self.contains(id) {
            return Err(NetError::UnknownNode(id));
        }
        let i = id.0 as usize;
        let neighbors: Vec<NodeId> = self.row(i).to_vec();
        self.alive[i] = false;
        self.pool_garbage += self.row_cap[i];
        self.row_off[i] = 0;
        self.row_len[i] = 0;
        self.row_cap[i] = 0;
        self.edge_count -= neighbors.len();
        self.bump_epoch();
        self.record_change(id);
        for nb in neighbors {
            if self.contains(nb) && self.remove_neighbor(nb, id) {
                self.record_change(nb);
            }
        }
        // Remove from the dense live list by swap-remove. The list is
        // non-empty here (the node we just marked dead was in it).
        let pos = self.live_pos[i];
        self.live_pos[i] = usize::MAX;
        if let Some(last) = self.live.pop() {
            if last != id {
                self.live[pos] = last;
                self.live_pos[last.0 as usize] = pos;
            }
        }
        self.maybe_compact();
        Ok(())
    }

    /// Whether `id` refers to a live node.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.alive.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Adds the undirected edge `{a, b}`. Adding an existing edge is a
    /// no-op returning `Ok(false)`; a new edge returns `Ok(true)`.
    ///
    /// # Errors
    ///
    /// * [`NetError::SelfLoop`] if `a == b`.
    /// * [`NetError::UnknownNode`] if either endpoint is not live.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool> {
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        if !self.contains(a) {
            return Err(NetError::UnknownNode(a));
        }
        if !self.contains(b) {
            return Err(NetError::UnknownNode(b));
        }
        if self.neighbors(a).contains(&b) {
            return Ok(false);
        }
        self.push_neighbor(a, b);
        self.push_neighbor(b, a);
        self.edge_count += 1;
        self.bump_epoch();
        self.record_change(a);
        self.record_change(b);
        Ok(true)
    }

    /// Removes the undirected edge `{a, b}` if present; returns whether an
    /// edge was removed.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if either endpoint is not live.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool> {
        if !self.contains(a) {
            return Err(NetError::UnknownNode(a));
        }
        if !self.contains(b) {
            return Err(NetError::UnknownNode(b));
        }
        if !self.remove_neighbor(a, b) {
            return Ok(false);
        }
        self.remove_neighbor(b, a);
        self.edge_count -= 1;
        self.bump_epoch();
        self.record_change(a);
        self.record_change(b);
        Ok(true)
    }

    /// Whether the edge `{a, b}` exists.
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.contains(a) && self.neighbors(a).contains(&b)
    }

    /// The neighbor list of `id` (empty slice for unknown nodes).
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        if self.contains(id) {
            self.row(id.0 as usize)
        } else {
            &[]
        }
    }

    /// Degree of `id` (0 for unknown nodes).
    #[must_use]
    pub fn degree(&self, id: NodeId) -> usize {
        if self.contains(id) {
            self.row_len[id.0 as usize]
        } else {
            0
        }
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no live nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Iterator over live node ids (arbitrary but deterministic order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.live.iter().copied()
    }

    /// Uniformly random live node.
    ///
    /// # Errors
    ///
    /// [`NetError::EmptyGraph`] if there are no live nodes.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<NodeId> {
        if self.live.is_empty() {
            return Err(NetError::EmptyGraph);
        }
        Ok(self.live[rng.gen_range(0..self.live.len())])
    }

    /// BFS hop distances from `source` to every reachable node, as
    /// `(node, distance)` pairs (including `(source, 0)`).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownNode`] if `source` is not live.
    pub fn bfs_distances(&self, source: NodeId) -> Result<Vec<(NodeId, u32)>> {
        if !self.contains(source) {
            return Err(NetError::UnknownNode(source));
        }
        let mut dist: Vec<Option<u32>> = vec![None; self.row_off.len()];
        dist[source.0 as usize] = Some(0);
        let mut queue = std::collections::VecDeque::from([source]);
        let mut out = Vec::with_capacity(self.live.len());
        while let Some(v) = queue.pop_front() {
            // Enqueued nodes always carry a distance; skip defensively.
            let Some(d) = dist[v.0 as usize] else {
                continue;
            };
            out.push((v, d));
            for &nb in self.neighbors(v) {
                let slot = &mut dist[nb.0 as usize];
                if slot.is_none() {
                    *slot = Some(d + 1);
                    queue.push_back(nb);
                }
            }
        }
        Ok(out)
    }

    /// Whether every live node is reachable from every other (a connected
    /// graph; the empty graph counts as connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        match self.live.first() {
            None => true,
            Some(&start) => {
                let reached = self.bfs_distances(start).map(|d| d.len()).unwrap_or(0);
                reached == self.live.len()
            }
        }
    }

    /// The node set of the largest connected component.
    #[must_use]
    pub fn largest_component(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.row_off.len()];
        let mut best: Vec<NodeId> = Vec::new();
        for &start in &self.live {
            if seen[start.0 as usize] {
                continue;
            }
            let mut component = Vec::new();
            let mut queue = std::collections::VecDeque::from([start]);
            seen[start.0 as usize] = true;
            while let Some(v) = queue.pop_front() {
                component.push(v);
                for &nb in self.neighbors(v) {
                    if !seen[nb.0 as usize] {
                        seen[nb.0 as usize] = true;
                        queue.push_back(nb);
                    }
                }
            }
            if component.len() > best.len() {
                best = component;
            }
        }
        best
    }

    /// True if the graph is bipartite (2-colourable). A bipartite overlay
    /// would make the plain random walk periodic — the reason the
    /// Metropolis walk carries the laziness factor ½ (paper Theorem 2).
    #[must_use]
    pub fn is_bipartite(&self) -> bool {
        let mut color: Vec<Option<bool>> = vec![None; self.row_off.len()];
        for &start in &self.live {
            if color[start.0 as usize].is_some() {
                continue;
            }
            color[start.0 as usize] = Some(false);
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                // Enqueued nodes are always coloured; skip defensively.
                let Some(c) = color[v.0 as usize] else {
                    continue;
                };
                for &nb in self.neighbors(v) {
                    match color[nb.0 as usize] {
                        None => {
                            color[nb.0 as usize] = Some(!c);
                            queue.push_back(nb);
                        }
                        Some(nc) if nc == c => return false,
                        Some(_) => {}
                    }
                }
            }
        }
        true
    }

    /// Upper bound on node ids ever allocated (for building dense
    /// id-indexed side tables).
    #[must_use]
    pub fn id_upper_bound(&self) -> usize {
        self.row_off.len()
    }

    /// Heap bytes held by the adjacency arena and its per-row tables
    /// (excluding the journal and live-list bookkeeping). Exposed so
    /// benchmarks can track resident bytes/node across representations.
    #[must_use]
    pub fn adjacency_bytes(&self) -> usize {
        self.pool.capacity() * std::mem::size_of::<NodeId>()
            + self.row_off.capacity() * std::mem::size_of::<usize>()
            + self.row_len.capacity() * std::mem::size_of::<usize>()
            + self.row_cap.capacity() * std::mem::size_of::<usize>()
            + self.alive.capacity() * std::mem::size_of::<bool>()
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert!(g.is_bipartite());
        assert!(g.largest_component().is_empty());
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 2);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(!g.is_bipartite());
        assert!(g.is_connected());
        let _ = c;
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(g.add_edge(a, b).unwrap());
        assert!(!g.add_edge(a, b).unwrap());
        assert!(!g.add_edge(b, a).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        assert_eq!(g.add_edge(a, a).unwrap_err(), NetError::SelfLoop(a));
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let ghost = NodeId(99);
        assert_eq!(
            g.add_edge(a, ghost).unwrap_err(),
            NetError::UnknownNode(ghost)
        );
        assert_eq!(
            g.add_edge(ghost, a).unwrap_err(),
            NetError::UnknownNode(ghost)
        );
    }

    #[test]
    fn remove_edge() {
        let (mut g, a, b, _) = triangle();
        assert!(g.remove_edge(a, b).unwrap());
        assert!(!g.remove_edge(a, b).unwrap());
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(a, b));
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn remove_node_cleans_incident_edges() {
        let (mut g, a, b, c) = triangle();
        g.remove_node(a).unwrap();
        assert!(!g.contains(a));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(b), 1);
        assert_eq!(g.degree(c), 1);
        assert!(g.has_edge(b, c));
        // Removing again fails.
        assert_eq!(g.remove_node(a).unwrap_err(), NetError::UnknownNode(a));
    }

    #[test]
    fn node_ids_are_not_reused() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.remove_node(a).unwrap();
        let b = g.add_node();
        assert_ne!(a, b);
        assert!(!g.contains(a));
        assert!(g.contains(b));
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let mut d = g.bfs_distances(ids[0]).unwrap();
        d.sort_by_key(|&(id, _)| id);
        for (i, &(id, dist)) in d.iter().enumerate() {
            assert_eq!(id, ids[i]);
            assert_eq!(dist, i as u32);
        }
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(c, d).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.largest_component().len(), 2);
        g.add_edge(b, c).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.largest_component().len(), 4);
    }

    #[test]
    fn bipartite_detection() {
        // Path graphs are bipartite, odd cycles are not.
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        assert!(g.is_bipartite());
        // Close into an even cycle: still bipartite.
        g.add_edge(ids[3], ids[0]).unwrap();
        assert!(g.is_bipartite());
        // Add a chord making an odd cycle.
        g.add_edge(ids[0], ids[2]).unwrap();
        assert!(!g.is_bipartite());
    }

    #[test]
    fn random_node_is_live_and_covers_all() {
        let (mut g, a, _, _) = triangle();
        g.remove_node(a).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let v = g.random_node(&mut rng).unwrap();
            assert!(g.contains(v));
            assert_ne!(v, a);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 2, "both live nodes should be drawn");
    }

    #[test]
    fn random_node_on_empty_graph_errors() {
        let g = Graph::new();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        assert_eq!(g.random_node(&mut rng).unwrap_err(), NetError::EmptyGraph);
    }

    #[test]
    fn epoch_advances_only_on_structural_change() {
        let mut g = Graph::new();
        assert_eq!(g.epoch(), 0);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.epoch();
        assert_eq!(e, 2);
        g.add_edge(a, b).unwrap();
        assert_eq!(g.epoch(), e + 1);
        // Duplicate edge is a no-op: no bump.
        g.add_edge(a, b).unwrap();
        assert_eq!(g.epoch(), e + 1);
        // Removing an absent edge is a no-op: no bump.
        let c = g.add_node();
        let after_c = g.epoch();
        g.remove_edge(a, c).unwrap();
        assert_eq!(g.epoch(), after_c);
        g.remove_edge(a, b).unwrap();
        assert_eq!(g.epoch(), after_c + 1);
        g.remove_node(a).unwrap();
        assert_eq!(g.epoch(), after_c + 2);
        // Read-only queries never bump.
        let _ = g.degree(b);
        let _ = g.is_connected();
        assert_eq!(g.epoch(), after_c + 2);
    }

    #[test]
    fn changes_since_reports_touched_nodes() {
        let (mut g, a, b, c) = triangle();
        let mark = g.epoch();
        assert_eq!(g.changes_since(mark).unwrap(), Vec::<NodeId>::new());

        g.remove_edge(a, b).unwrap();
        assert_eq!(g.changes_since(mark).unwrap(), vec![a, b]);

        // Removing a node dirties it and all its (remaining) neighbors.
        g.remove_node(c).unwrap();
        assert_eq!(g.changes_since(mark).unwrap(), vec![a, b, c]);

        // A fresh mark sees only later changes.
        let mark2 = g.epoch();
        let d = g.add_node();
        g.add_edge(a, d).unwrap();
        assert_eq!(g.changes_since(mark2).unwrap(), vec![a, d]);
    }

    #[test]
    fn journal_overflow_forces_full_rebuild_only_for_old_marks() {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
        let old_mark = g.epoch();
        // Far more than JOURNAL_CAP changes: toggle one edge repeatedly.
        for _ in 0..2000 {
            g.add_edge(ids[0], ids[1]).unwrap();
            g.remove_edge(ids[0], ids[1]).unwrap();
        }
        assert!(
            g.changes_since(old_mark).is_none(),
            "overflowed journal must demand a full rebuild"
        );
        // A mark taken now is trackable again.
        let new_mark = g.epoch();
        g.add_edge(ids[2], ids[3]).unwrap();
        assert_eq!(g.changes_since(new_mark).unwrap(), vec![ids[2], ids[3]]);
    }

    #[test]
    fn changes_since_future_mark_demands_rebuild() {
        // A mark beyond the current epoch (taken from a different graph,
        // or from one that has since been swapped out underneath the
        // cache) must force a rebuild, never report "no changes".
        let (mut g, a, b, _) = triangle();
        assert!(g.changes_since(g.epoch() + 1).is_none());
        assert!(g.changes_since(u64::MAX).is_none());
        // Equality still means "unchanged"…
        assert_eq!(g.changes_since(g.epoch()).unwrap(), Vec::<NodeId>::new());
        // …and ordinary past marks still patch.
        let mark = g.epoch();
        g.remove_edge(a, b).unwrap();
        assert_eq!(g.changes_since(mark).unwrap(), vec![a, b]);
    }

    #[test]
    fn arena_relocation_and_compaction_preserve_adjacency() {
        // Grow a hub far past the initial row capacity (forcing repeated
        // relocations), delete enough rows to trigger compaction, and
        // check the surviving adjacency is exactly right throughout.
        let mut g = Graph::new();
        let hub = g.add_node();
        let mut spokes = Vec::new();
        for _ in 0..600 {
            let s = g.add_node();
            g.add_edge(hub, s).unwrap();
            spokes.push(s);
        }
        assert_eq!(g.degree(hub), 600);
        // Appends preserve insertion order.
        assert_eq!(g.neighbors(hub).to_vec(), spokes);
        // Remove most spokes: garbage accumulates, compaction fires.
        for s in spokes.iter().skip(100) {
            g.remove_node(*s).unwrap();
        }
        assert_eq!(g.degree(hub), 100);
        for s in &spokes[..100] {
            assert!(g.has_edge(hub, *s));
            assert_eq!(g.neighbors(*s), &[hub]);
        }
        // Handshake lemma still holds.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn stress_add_remove_keeps_invariants() {
        let mut g = Graph::new();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let mut ids = Vec::new();
        for _ in 0..200 {
            ids.push(g.add_node());
        }
        use rand::Rng;
        for _ in 0..2000 {
            let a = ids[rng.gen_range(0..ids.len())];
            let b = ids[rng.gen_range(0..ids.len())];
            if a != b && g.contains(a) && g.contains(b) {
                let _ = g.add_edge(a, b);
            }
        }
        // Remove half the nodes.
        for id in ids.iter().step_by(2) {
            if g.contains(*id) {
                g.remove_node(*id).unwrap();
            }
        }
        // Invariant: handshake lemma.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
        // Invariant: all neighbor references live and symmetric.
        for v in g.nodes() {
            for &nb in g.neighbors(v) {
                assert!(g.contains(nb));
                assert!(g.neighbors(nb).contains(&v));
            }
        }
    }
}
