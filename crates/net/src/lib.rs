//! # digest-net
//!
//! The unstructured peer-to-peer overlay substrate of Digest.
//!
//! The paper models the network as an undirected graph `G(V, E)` with
//! arbitrary, dynamically changing topology (§II). This crate provides:
//!
//! * [`graph`] — the overlay graph itself: stable node identities across
//!   joins/leaves, adjacency queries, connectivity analysis.
//! * [`topology`] — seeded generators for the topologies the paper's
//!   evaluation uses (mesh for the weather-station network, power-law /
//!   Barabási–Albert for the SETI@home-like computing network) plus
//!   Erdős–Rényi, ring, Watts–Strogatz, complete, and star graphs for
//!   tests and ablations.
//! * [`store`] — the flat structure-of-arrays node store for
//!   million-node overlays: u32 ids with free-list recycling behind
//!   generation-tagged handles, CSR adjacency in one shared arena, SoA
//!   value/weight/liveness columns, and a dirty-row change journal.
//! * [`churn`] — the node join/leave process that drives the dynamic
//!   membership of `V` (and hence of the stored relation).
//! * [`metrics`] — degree distributions, power-law exponent estimation,
//!   clustering, and diameter estimates used to validate generated
//!   topologies against the paper's assumptions (`p_k ∝ k^−α`, 2 < α < 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod churn;
pub mod error;
pub mod graph;
pub mod metrics;
pub mod store;
pub mod topology;

pub use churn::{ChurnConfig, ChurnEvent, ChurnProcess};
pub use error::NetError;
pub use graph::{Graph, NodeId};
pub use metrics::{degree_distribution, estimate_power_law_alpha, DegreeStats};
pub use store::{NodeRef, NodeStore};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
