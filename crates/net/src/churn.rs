//! Node churn: the dynamic membership of `V`.
//!
//! Paper §II: "As nodes autonomously join and leave the network, the
//! member-set of `V`, and accordingly, that of `E` vary in time." The
//! evaluation contrasts a near-static network (weather stations) with a
//! churn-heavy one (SETI@home). This module provides a per-tick churn
//! process: every live node leaves with a configured probability, and a
//! configured expected number of new nodes join, attaching either
//! uniformly or preferentially (the latter preserves the power-law shape
//! under sustained churn).
//!
//! After processing leaves, the process optionally repairs partitions by
//! stitching stray components back to the giant component — modelling the
//! overlay's bootstrap/rejoin machinery, and preserving the paper's
//! standing assumption that the graph sampled by a walk is connected.

use crate::error::NetError;
use crate::graph::{Graph, NodeId};
use crate::store::NodeStore;
use crate::Result;
use digest_telemetry::{registry as telemetry, Field};
use rand::Rng;

/// Configuration of the churn process.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Per-node, per-tick probability of leaving the network.
    pub leave_prob: f64,
    /// Expected number of joins per tick (fractional rates are realised
    /// by Bernoulli rounding).
    pub join_rate: f64,
    /// Number of links a joining node establishes (capped by the current
    /// network size).
    pub attach_links: usize,
    /// Attach preferentially by degree (true) or uniformly (false).
    pub preferential: bool,
    /// Never let leaves shrink the network below this size.
    pub min_nodes: usize,
    /// Re-connect stray components after leaves.
    pub repair_partitions: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            leave_prob: 0.0,
            join_rate: 0.0,
            attach_links: 2,
            preferential: true,
            min_nodes: 3,
            repair_partitions: true,
        }
    }
}

/// One membership change produced by a churn step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A new node joined the overlay.
    Joined(NodeId),
    /// An existing node left (its tuples are gone with it).
    Left(NodeId),
}

/// The churn process. Stateless apart from its configuration; determinism
/// comes from the caller's RNG.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    config: ChurnConfig,
}

impl ChurnProcess {
    /// Creates a churn process.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidTopology`] if `leave_prob ∉ [0, 1]`,
    /// `join_rate < 0`, or `attach_links == 0`.
    pub fn new(config: ChurnConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.leave_prob) {
            return Err(NetError::InvalidTopology {
                reason: "leave_prob must be in [0, 1]",
            });
        }
        if config.join_rate.is_nan() || config.join_rate < 0.0 || !config.join_rate.is_finite() {
            return Err(NetError::InvalidTopology {
                reason: "join_rate must be non-negative",
            });
        }
        if config.attach_links == 0 {
            return Err(NetError::InvalidTopology {
                reason: "attach_links must be positive",
            });
        }
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Advances the churn process one tick, mutating the graph and
    /// returning the membership events in application order.
    pub fn step<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        let cfg = &self.config;

        // Leaves.
        if cfg.leave_prob > 0.0 {
            let candidates: Vec<NodeId> = g.nodes().collect();
            for id in candidates {
                if g.node_count() <= cfg.min_nodes {
                    break;
                }
                if rng.gen_bool(cfg.leave_prob) && g.remove_node(id).is_ok() {
                    events.push(ChurnEvent::Left(id));
                }
            }
        }

        // Joins. The clamp keeps the float-to-int cast in-range (join
        // rates are small; 1e9 is far beyond any usable overlay size).
        #[allow(clippy::cast_possible_truncation)]
        let mut joins = cfg.join_rate.floor().clamp(0.0, 1e9) as usize;
        let frac = cfg.join_rate - joins as f64;
        if frac > 0.0 && rng.gen_bool(frac) {
            joins += 1;
        }
        for _ in 0..joins {
            let new = g.add_node();
            events.push(ChurnEvent::Joined(new));
            let peers = g.node_count() - 1;
            let links = cfg.attach_links.min(peers);
            let mut attached = 0usize;
            let mut attempts = 0usize;
            while attached < links && attempts < 20 * links + 20 {
                attempts += 1;
                let target = match self.pick_target(g, new, rng) {
                    Some(t) => t,
                    None => break,
                };
                if let Ok(true) = g.add_edge(new, target) {
                    attached += 1;
                }
            }
        }

        if cfg.repair_partitions {
            repair(g, rng);
        }

        let joined = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Joined(_)))
            .count() as u64;
        let left = events.len() as u64 - joined;
        telemetry::NET_CHURN_JOINS.add(joined);
        telemetry::NET_CHURN_LEAVES.add(left);
        if !events.is_empty() && digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "net.churn",
                &[("joins", Field::U64(joined)), ("leaves", Field::U64(left))],
            );
        }
        events
    }

    /// Applies a churn *batch* to a flat [`NodeStore`] — the event-driven
    /// entry point for million-node overlays. Where [`ChurnProcess::step`]
    /// scans every node per tick (O(N), fine at 10³–10⁴), the event loop
    /// pre-draws how many leave/join events are due and this method
    /// applies exactly that many: cost is O(due events), never O(N).
    ///
    /// Leaves pick uniform random live rows (respecting `min_nodes`);
    /// joins recycle departed ids via the store's free list and attach
    /// `attach_links` edges, preferentially by degree (random-neighbor
    /// trick) or uniformly per the config. `join_value` draws the value
    /// column entry for each joiner. Partition repair is intentionally
    /// *not* run here: at 10⁶ nodes a per-batch BFS would dwarf the batch
    /// itself, and the flat sim's walks restart from live origins, so
    /// stray components only bias (never wedge) the estimate.
    ///
    /// Returns `(joined, left)` counts.
    pub fn step_store<R: Rng + ?Sized>(
        &self,
        store: &mut NodeStore,
        leaves: usize,
        joins: usize,
        mut join_value: impl FnMut(&mut R) -> f64,
        rng: &mut R,
    ) -> (usize, usize) {
        let cfg = &self.config;
        let mut left = 0usize;
        for _ in 0..leaves {
            if store.live_count() <= cfg.min_nodes {
                break;
            }
            let Some(id) = store.random_live(rng) else {
                break;
            };
            let Some(r) = store.node_ref(id) else {
                break;
            };
            if store.remove(r) {
                left += 1;
            }
        }
        let mut joined = 0usize;
        for _ in 0..joins {
            let value = join_value(rng);
            let Ok(new) = store.add_node(value, 1.0) else {
                break;
            };
            joined += 1;
            let peers = store.live_count() - 1;
            let links = cfg.attach_links.min(peers);
            let mut attached = 0usize;
            let mut attempts = 0usize;
            while attached < links && attempts < 20 * links + 20 {
                attempts += 1;
                let Some(target) = self.pick_store_target(store, new.id(), rng) else {
                    break;
                };
                if let Ok(true) = store.add_edge(new.id(), target) {
                    attached += 1;
                }
            }
        }
        telemetry::NET_CHURN_JOINS.add(joined as u64);
        telemetry::NET_CHURN_LEAVES.add(left as u64);
        (joined, left)
    }

    /// Store-side analogue of `pick_target`: uniform live row, or
    /// degree-biased via one random-neighbor step.
    fn pick_store_target<R: Rng + ?Sized>(
        &self,
        store: &NodeStore,
        exclude: u32,
        rng: &mut R,
    ) -> Option<u32> {
        for _ in 0..32 {
            let v = store.random_live(rng)?;
            if self.config.preferential {
                let nbs = store.neighbors(v);
                if !nbs.is_empty() {
                    let t = nbs[rng.gen_range(0..nbs.len())];
                    if t != exclude {
                        return Some(t);
                    }
                    continue;
                }
            }
            if v != exclude {
                return Some(v);
            }
        }
        None
    }

    /// Picks an attachment target: uniform, or degree-biased by choosing a
    /// random endpoint of a random node's adjacency (one step of the
    /// "random neighbor" trick approximates degree-proportional choice).
    fn pick_target<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        exclude: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        for _ in 0..32 {
            let v = g.random_node(rng).ok()?;
            if self.config.preferential {
                let nbs = g.neighbors(v);
                if !nbs.is_empty() {
                    let t = nbs[rng.gen_range(0..nbs.len())];
                    if t != exclude {
                        return Some(t);
                    }
                    continue;
                }
            }
            if v != exclude {
                return Some(v);
            }
        }
        None
    }
}

/// Stitches every stray component back to the giant component with a
/// single random edge.
fn repair<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) {
    loop {
        let giant = g.largest_component();
        if giant.len() == g.node_count() || giant.is_empty() {
            return;
        }
        let in_giant: std::collections::BTreeSet<NodeId> = giant.iter().copied().collect();
        let Some(stray) = g.nodes().find(|id| !in_giant.contains(id)) else {
            return;
        };
        let anchor = giant[rng.gen_range(0..giant.len())];
        let _ = g.add_edge(stray, anchor);
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn validates_config() {
        assert!(ChurnProcess::new(ChurnConfig {
            leave_prob: -0.1,
            ..Default::default()
        })
        .is_err());
        assert!(ChurnProcess::new(ChurnConfig {
            leave_prob: 1.1,
            ..Default::default()
        })
        .is_err());
        assert!(ChurnProcess::new(ChurnConfig {
            join_rate: -1.0,
            ..Default::default()
        })
        .is_err());
        assert!(ChurnProcess::new(ChurnConfig {
            attach_links: 0,
            ..Default::default()
        })
        .is_err());
        assert!(ChurnProcess::new(ChurnConfig::default()).is_ok());
    }

    #[test]
    fn zero_churn_is_identity() {
        let mut g = topology::ring(10).unwrap();
        let p = ChurnProcess::new(ChurnConfig::default()).unwrap();
        let events = p.step(&mut g, &mut rng(1));
        assert!(events.is_empty());
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn joins_grow_the_network() {
        let mut g = topology::ring(10).unwrap();
        let p = ChurnProcess::new(ChurnConfig {
            join_rate: 3.0,
            ..Default::default()
        })
        .unwrap();
        let events = p.step(&mut g, &mut rng(2));
        let joined = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Joined(_)))
            .count();
        assert_eq!(joined, 3);
        assert_eq!(g.node_count(), 13);
        assert!(g.is_connected());
        // Each joiner got its links.
        for e in &events {
            if let ChurnEvent::Joined(id) = e {
                assert!(g.degree(*id) >= 1);
            }
        }
    }

    #[test]
    fn leaves_shrink_but_respect_floor() {
        let mut g = topology::complete(10).unwrap();
        let p = ChurnProcess::new(ChurnConfig {
            leave_prob: 1.0,
            min_nodes: 4,
            ..Default::default()
        })
        .unwrap();
        let events = p.step(&mut g, &mut rng(3));
        assert_eq!(g.node_count(), 4);
        let left = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Left(_)))
            .count();
        assert_eq!(left, 6);
    }

    #[test]
    fn repair_keeps_graph_connected_under_heavy_churn() {
        let mut g = topology::barabasi_albert(100, 2, &mut rng(4)).unwrap();
        let p = ChurnProcess::new(ChurnConfig {
            leave_prob: 0.2,
            join_rate: 15.0,
            attach_links: 2,
            ..Default::default()
        })
        .unwrap();
        let mut r = rng(5);
        for _ in 0..30 {
            p.step(&mut g, &mut r);
            assert!(g.is_connected(), "churn broke connectivity");
            assert!(g.node_count() >= 4);
        }
    }

    #[test]
    fn fractional_join_rate_averages_out() {
        let p = ChurnProcess::new(ChurnConfig {
            join_rate: 0.5,
            ..Default::default()
        })
        .unwrap();
        let mut r = rng(6);
        let mut total = 0usize;
        let trials = 1000;
        for _ in 0..trials {
            let mut g = topology::ring(5).unwrap();
            total += p
                .step(&mut g, &mut r)
                .iter()
                .filter(|e| matches!(e, ChurnEvent::Joined(_)))
                .count();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 0.5).abs() < 0.07, "mean joins = {mean}");
    }

    #[test]
    fn preferential_attachment_favours_hubs() {
        // Star graph: the hub has degree n−1. Preferential joiners should
        // attach to the hub far more often than 1/n of the time.
        let p = ChurnProcess::new(ChurnConfig {
            join_rate: 1.0,
            attach_links: 1,
            preferential: true,
            ..Default::default()
        })
        .unwrap();
        let mut r = rng(7);
        let mut hub_hits = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let mut g = topology::star(20).unwrap();
            let events = p.step(&mut g, &mut r);
            let joined = events
                .iter()
                .find_map(|e| match e {
                    ChurnEvent::Joined(id) => Some(*id),
                    ChurnEvent::Left(_) => None,
                })
                .unwrap();
            if g.neighbors(joined).contains(&NodeId(0)) {
                hub_hits += 1;
            }
        }
        // Uniform attachment would hit the hub ~5% of the time.
        assert!(
            hub_hits as f64 / trials as f64 > 0.4,
            "hub hits = {hub_hits}/{trials}"
        );
    }

    #[test]
    fn store_churn_batch_applies_exact_counts_and_floor() {
        let mut s = topology::barabasi_albert_store(200, 2, &mut rng(11)).unwrap();
        let p = ChurnProcess::new(ChurnConfig {
            leave_prob: 0.1,
            join_rate: 1.0,
            attach_links: 2,
            min_nodes: 150,
            ..Default::default()
        })
        .unwrap();
        let mut r = rng(12);
        let (joined, left) = p.step_store(&mut s, 30, 10, |_| 1.0, &mut r);
        assert_eq!(joined, 10);
        assert_eq!(left, 30);
        assert_eq!(s.live_count(), 180);
        // Floor: asking for more leaves than the floor allows stops there.
        let (_, left2) = p.step_store(&mut s, 10_000, 0, |_| 1.0, &mut r);
        assert_eq!(s.live_count(), 150);
        assert_eq!(left2, 30);
        // Joiners got links and the structure stays simple/symmetric.
        for v in s.live_ids() {
            for &nb in s.neighbors(v) {
                assert!(s.is_live(nb));
                assert!(s.neighbors(nb).contains(&v));
                assert_ne!(nb, v);
            }
        }
    }

    #[test]
    fn store_churn_recycles_ids() {
        let mut s = topology::barabasi_albert_store(50, 2, &mut rng(13)).unwrap();
        let p = ChurnProcess::new(ChurnConfig {
            min_nodes: 10,
            ..Default::default()
        })
        .unwrap();
        let mut r = rng(14);
        for _ in 0..40 {
            p.step_store(&mut s, 5, 5, |_| 0.0, &mut r);
        }
        assert_eq!(s.live_count(), 50);
        // 200 leaves + 200 joins later the id space is still ~dense.
        assert!(
            s.id_upper_bound() <= 60,
            "free list must recycle ids, rows = {}",
            s.id_upper_bound()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ChurnConfig {
            leave_prob: 0.1,
            join_rate: 2.0,
            ..Default::default()
        };
        let p = ChurnProcess::new(cfg).unwrap();
        let run = |seed| {
            let mut g = topology::ring(20).unwrap();
            let mut r = rng(seed);
            let mut log = Vec::new();
            for _ in 0..10 {
                log.extend(p.step(&mut g, &mut r));
            }
            (log, g.node_count())
        };
        assert_eq!(run(9), run(9));
    }
}
