//! Topology diagnostics.
//!
//! The mixing-time result (paper Theorem 4) assumes a power-law degree
//! distribution `p_k ∝ k^−α` with `2 < α < 3`; these helpers let the
//! experiments verify that generated topologies actually look like that,
//! and provide the structural statistics reported alongside the
//! mixing-time sweeps.

use crate::error::NetError;
use crate::graph::Graph;
use crate::Result;
use digest_telemetry::registry as telemetry;
use rand::{Rng, RngCore};

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree among live nodes.
    pub min: usize,
    /// Largest degree among live nodes.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population variance of the degree.
    pub variance: f64,
}

/// Computes degree summary statistics (all zeros for an empty graph).
#[must_use]
pub fn degree_distribution(g: &Graph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            variance: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for v in g.nodes() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d as f64;
        sum_sq += (d * d) as f64;
    }
    let mean = sum / n as f64;
    DegreeStats {
        min,
        max,
        mean,
        variance: sum_sq / n as f64 - mean * mean,
    }
}

/// Degree histogram: `hist[k]` = number of nodes of degree `k`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.nodes() {
        let d = g.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Maximum-likelihood estimate of the power-law exponent `α` for the
/// degree distribution, using the discrete Hill estimator
/// `α = 1 + n / Σ ln(k_i / (k_min − ½))` over nodes with degree ≥ `k_min`.
///
/// # Errors
///
/// * [`NetError::EmptyGraph`] if no node has degree ≥ `k_min`.
/// * [`NetError::InvalidTopology`] if `k_min == 0`.
pub fn estimate_power_law_alpha(g: &Graph, k_min: usize) -> Result<f64> {
    if k_min == 0 {
        return Err(NetError::InvalidTopology {
            reason: "k_min must be positive",
        });
    }
    let shift = k_min as f64 - 0.5;
    let mut n = 0usize;
    let mut log_sum = 0.0;
    for v in g.nodes() {
        let d = g.degree(v);
        if d >= k_min {
            n += 1;
            log_sum += (d as f64 / shift).ln();
        }
    }
    if n == 0 || log_sum <= 0.0 {
        return Err(NetError::EmptyGraph);
    }
    Ok(1.0 + n as f64 / log_sum)
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
/// Returns 0 for graphs without a connected triple.
#[must_use]
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in g.nodes() {
        let nbs = g.neighbors(v);
        let d = nbs.len();
        if d < 2 {
            continue;
        }
        triples += d * (d - 1) / 2;
        for i in 0..d {
            for j in i + 1..d {
                if g.has_edge(nbs[i], nbs[j]) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times; the formula's
        // numerator 3·T equals our raw per-corner count.
        triangles as f64 / triples as f64
    }
}

/// Lower bound on the diameter via a double BFS sweep (exact on trees,
/// a good estimate on general graphs).
///
/// # Errors
///
/// [`NetError::EmptyGraph`] for an empty graph.
pub fn estimate_diameter(g: &Graph) -> Result<u32> {
    let start = g.nodes().next().ok_or(NetError::EmptyGraph)?;
    let far = g
        .bfs_distances(start)?
        .into_iter()
        .max_by_key(|&(_, d)| d)
        .map(|(v, _)| v)
        .ok_or(NetError::EmptyGraph)?;
    let diameter = g
        .bfs_distances(far)?
        .into_iter()
        .map(|(_, d)| d)
        .max()
        .unwrap_or(0);
    Ok(diameter)
}

/// Mean shortest-path hop count from `samples` *uniformly random* sources
/// to all reachable nodes — the expected per-push routing cost used to
/// meter the push-based baselines.
///
/// Sources are drawn without replacement by a partial Fisher–Yates
/// shuffle, so `samples >= node_count` sweeps every node exactly once
/// (making the result exact and source-order independent) and smaller
/// budgets give an unbiased subsample. The previous behaviour of walking
/// the first `samples` nodes in id order systematically favoured the
/// oldest nodes, which on preferentially-grown topologies are the hubs.
#[must_use]
pub fn mean_path_length(g: &Graph, samples: usize, rng: &mut dyn RngCore) -> f64 {
    let mut sources: Vec<_> = g.nodes().collect();
    let picks = samples.min(sources.len());
    let mut total = 0u64;
    let mut count = 0u64;
    for i in 0..picks {
        let j = rng.gen_range(i..sources.len());
        sources.swap(i, j);
        telemetry::NET_PATH_BFS_RUNS.inc();
        if let Ok(dists) = g.bfs_distances(sources[i]) {
            for (_, d) in dists {
                total += u64::from(d);
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::SeedableRng;

    #[test]
    fn degree_stats_of_ring() {
        let g = topology::ring(10).unwrap();
        let s = degree_distribution(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.variance.abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        let g = Graph::new();
        let s = degree_distribution(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn histogram_of_star() {
        let g = topology::star(5).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // hub
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = topology::complete(5).unwrap();
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = topology::star(6).unwrap();
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn diameter_of_path() {
        // A 1×n mesh is a path: diameter n−1 and double-sweep is exact.
        let g = topology::mesh(1, 8, false).unwrap();
        assert_eq!(estimate_diameter(&g).unwrap(), 7);
    }

    #[test]
    fn diameter_of_complete_is_one() {
        let g = topology::complete(4).unwrap();
        assert_eq!(estimate_diameter(&g).unwrap(), 1);
    }

    #[test]
    fn diameter_of_empty_errors() {
        assert!(estimate_diameter(&Graph::new()).is_err());
    }

    #[test]
    fn alpha_estimate_on_ba_graph() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let g = topology::barabasi_albert(3000, 2, &mut rng).unwrap();
        let alpha = estimate_power_law_alpha(&g, 2).unwrap();
        // BA converges to α = 3; the MLE on finite graphs lands nearby.
        assert!(alpha > 2.0 && alpha < 3.6, "alpha = {alpha}");
    }

    #[test]
    fn alpha_estimate_validates() {
        let g = topology::ring(5).unwrap();
        assert!(estimate_power_law_alpha(&g, 0).is_err());
        // k_min above every degree → no data.
        assert!(estimate_power_law_alpha(&g, 10).is_err());
    }

    #[test]
    fn mean_path_length_of_path_graph() {
        let g = topology::mesh(1, 3, false).unwrap();
        // Budget covers all nodes → exact regardless of source order.
        // From node 0: 0+1+2; node 1: 1+0+1; node 2: 2+1+0 → mean = 8/9.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mpl = mean_path_length(&g, 10, &mut rng);
        assert!((mpl - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn mean_path_length_samples_sources_uniformly() {
        // On a 1×20 path, node 0 is the most eccentric source (mean
        // distance 9.5); a single *uniform* source must not always be it.
        let g = topology::mesh(1, 20, false).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let exact = mean_path_length(&g, 20, &mut rng);
        let endpoint_mean = 9.5;
        assert!(exact < endpoint_mean, "population mean must beat node 0's");

        // Averaging many single-source draws must approach the population
        // mean, not node 0's — the signature of uniform source choice.
        let trials = 400;
        let mut sum = 0.0;
        let mut saw_non_endpoint = false;
        for seed in 0..trials {
            let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(1000 + seed);
            let one = mean_path_length(&g, 1, &mut r);
            if (one - endpoint_mean).abs() > 1e-9 {
                saw_non_endpoint = true;
            }
            sum += one;
        }
        assert!(saw_non_endpoint, "sources were never anything but node 0");
        let mean_of_means = sum / trials as f64;
        assert!(
            (mean_of_means - exact).abs() < 0.5,
            "single-source average {mean_of_means} vs population {exact}"
        );
    }
}
