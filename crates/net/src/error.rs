//! Error type for the overlay-network crate.

use crate::graph::NodeId;
use std::fmt;

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An operation referenced a node that does not exist (or has left).
    UnknownNode(NodeId),
    /// A self-loop was requested; the overlay is a simple graph.
    SelfLoop(NodeId),
    /// A generator was asked for an impossible configuration.
    InvalidTopology {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// The graph is empty where at least one node is required.
    EmptyGraph,
    /// The flat node store's `u32` addressing space (ids or adjacency
    /// arena offsets) would be exceeded by the operation.
    CapacityExceeded,
    /// A bulk CSR load was attempted on a store that already holds edges.
    NotEmpty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::SelfLoop(id) => write!(f, "self-loop on node {id} not allowed"),
            NetError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            NetError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            NetError::CapacityExceeded => {
                write!(f, "flat node store u32 addressing space exhausted")
            }
            NetError::NotEmpty => write!(f, "bulk CSR load requires an edge-free store"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node() {
        let e = NetError::UnknownNode(NodeId(7));
        assert!(e.to_string().contains('7'));
        let e = NetError::SelfLoop(NodeId(3));
        assert!(e.to_string().contains('3'));
    }
}
