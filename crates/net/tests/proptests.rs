//! Property-based tests of graph invariants under arbitrary operation
//! sequences and of the topology generators.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_net::{topology, ChurnConfig, ChurnProcess, Graph, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An arbitrary mutation applied to a graph.
#[derive(Debug, Clone)]
enum Op {
    AddNode,
    RemoveNode(u32),
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AddNode),
        (0u32..64).prop_map(Op::RemoveNode),
        (0u32..64, 0u32..64).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (0u32..64, 0u32..64).prop_map(|(a, b)| Op::RemoveEdge(a, b)),
    ]
}

fn check_invariants(g: &Graph) {
    // Handshake lemma.
    let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
    assert_eq!(degree_sum, 2 * g.edge_count());
    // Adjacency symmetry, liveness, and simplicity.
    for v in g.nodes() {
        let nbs = g.neighbors(v);
        for &nb in nbs {
            assert!(g.contains(nb), "dangling neighbor");
            assert!(g.neighbors(nb).contains(&v), "asymmetric edge");
            assert_ne!(nb, v, "self-loop");
        }
        let mut sorted = nbs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), nbs.len(), "parallel edge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut g = Graph::new();
        for op in ops {
            match op {
                Op::AddNode => {
                    g.add_node();
                }
                Op::RemoveNode(i) => {
                    let _ = g.remove_node(NodeId(i));
                }
                Op::AddEdge(a, b) => {
                    let _ = g.add_edge(NodeId(a), NodeId(b));
                }
                Op::RemoveEdge(a, b) => {
                    let _ = g.remove_edge(NodeId(a), NodeId(b));
                }
            }
        }
        check_invariants(&g);
    }

    #[test]
    fn generated_topologies_are_connected_and_simple(
        seed in 0u64..1000,
        n in 10usize..120,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graphs = vec![
            topology::barabasi_albert(n, 2, &mut rng).unwrap(),
            topology::erdos_renyi(n, 0.05, &mut rng).unwrap(),
            topology::mesh(3, n / 3 + 1, false).unwrap(),
        ];
        for g in &graphs {
            prop_assert!(g.is_connected());
            check_invariants(g);
        }
    }

    #[test]
    fn churn_preserves_invariants_and_floor(
        seed in 0u64..1000,
        leave in 0.0f64..0.3,
        join in 0.0f64..3.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = topology::ring(20).unwrap();
        let churn = ChurnProcess::new(ChurnConfig {
            leave_prob: leave,
            join_rate: join,
            min_nodes: 5,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..15 {
            churn.step(&mut g, &mut rng);
            prop_assert!(g.node_count() >= 5);
            prop_assert!(g.is_connected());
        }
        check_invariants(&g);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = topology::barabasi_albert(40, 2, &mut rng).unwrap();
        let source = g.nodes().next().unwrap();
        let dist: std::collections::HashMap<NodeId, u32> =
            g.bfs_distances(source).unwrap().into_iter().collect();
        // Every node reached (connected), and adjacent nodes differ by ≤ 1.
        prop_assert_eq!(dist.len(), g.node_count());
        for v in g.nodes() {
            for &nb in g.neighbors(v) {
                let dv = dist[&v] as i64;
                let dn = dist[&nb] as i64;
                prop_assert!((dv - dn).abs() <= 1, "BFS not 1-Lipschitz over edges");
            }
        }
    }
}
