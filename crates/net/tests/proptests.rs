//! Property-based tests of graph invariants under arbitrary operation
//! sequences and of the topology generators.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_net::{topology, ChurnConfig, ChurnProcess, Graph, NodeId, NodeRef, NodeStore};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// An arbitrary mutation applied to a graph.
#[derive(Debug, Clone)]
enum Op {
    AddNode,
    RemoveNode(u32),
    AddEdge(u32, u32),
    RemoveEdge(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AddNode),
        (0u32..64).prop_map(Op::RemoveNode),
        (0u32..64, 0u32..64).prop_map(|(a, b)| Op::AddEdge(a, b)),
        (0u32..64, 0u32..64).prop_map(|(a, b)| Op::RemoveEdge(a, b)),
    ]
}

fn check_invariants(g: &Graph) {
    // Handshake lemma.
    let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
    assert_eq!(degree_sum, 2 * g.edge_count());
    // Adjacency symmetry, liveness, and simplicity.
    for v in g.nodes() {
        let nbs = g.neighbors(v);
        for &nb in nbs {
            assert!(g.contains(nb), "dangling neighbor");
            assert!(g.neighbors(nb).contains(&v), "asymmetric edge");
            assert_ne!(nb, v, "self-loop");
        }
        let mut sorted = nbs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), nbs.len(), "parallel edge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut g = Graph::new();
        for op in ops {
            match op {
                Op::AddNode => {
                    g.add_node();
                }
                Op::RemoveNode(i) => {
                    let _ = g.remove_node(NodeId(i));
                }
                Op::AddEdge(a, b) => {
                    let _ = g.add_edge(NodeId(a), NodeId(b));
                }
                Op::RemoveEdge(a, b) => {
                    let _ = g.remove_edge(NodeId(a), NodeId(b));
                }
            }
        }
        check_invariants(&g);
    }

    #[test]
    fn generated_topologies_are_connected_and_simple(
        seed in 0u64..1000,
        n in 10usize..120,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graphs = vec![
            topology::barabasi_albert(n, 2, &mut rng).unwrap(),
            topology::erdos_renyi(n, 0.05, &mut rng).unwrap(),
            topology::mesh(3, n / 3 + 1, false).unwrap(),
        ];
        for g in &graphs {
            prop_assert!(g.is_connected());
            check_invariants(g);
        }
    }

    #[test]
    fn churn_preserves_invariants_and_floor(
        seed in 0u64..1000,
        leave in 0.0f64..0.3,
        join in 0.0f64..3.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = topology::ring(20).unwrap();
        let churn = ChurnProcess::new(ChurnConfig {
            leave_prob: leave,
            join_rate: join,
            min_nodes: 5,
            ..Default::default()
        })
        .unwrap();
        for _ in 0..15 {
            churn.step(&mut g, &mut rng);
            prop_assert!(g.node_count() >= 5);
            prop_assert!(g.is_connected());
        }
        check_invariants(&g);
    }

    #[test]
    fn store_recycling_never_aliases_a_live_node(
        seed in 0u64..1000,
        rounds in 1usize..40,
    ) {
        // Free-list id recycling is only sound if a handle captured
        // before a departure can never resolve to the row's *next*
        // incarnation. Drive arbitrary churn, holding every handle ever
        // issued, and check each one resolves iff its own incarnation is
        // the live one.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = NodeStore::new();
        let mut issued: Vec<NodeRef> = Vec::new();
        let mut live: Vec<NodeRef> = Vec::new();
        use rand::Rng;
        for _ in 0..8 {
            let r = s.add_node(0.0, 1.0).unwrap();
            issued.push(r);
            live.push(r);
        }
        for _ in 0..rounds {
            // Drop a random live node, then add a node (likely recycling
            // the id just freed).
            if live.len() > 2 {
                let victim = live.remove(rng.gen_range(0..live.len()));
                prop_assert!(s.remove(victim));
                prop_assert_eq!(s.resolve(victim), None);
            }
            let fresh = s.add_node(1.0, 1.0).unwrap();
            issued.push(fresh);
            live.push(fresh);
            // Every stale handle must stay dead even when its id is live
            // again under a new generation.
            let live_set: BTreeSet<NodeRef> = live.iter().copied().collect();
            for &h in &issued {
                let resolves = s.resolve(h).is_some();
                prop_assert_eq!(
                    resolves,
                    live_set.contains(&h),
                    "handle {:?} aliasing: resolves={} live={}",
                    h, resolves, live_set.contains(&h)
                );
            }
        }
    }

    #[test]
    fn store_csr_matches_btreemap_reference_after_churn_burst(
        seed in 0u64..1000,
        bursts in 1usize..6,
    ) {
        // The flat CSR arena (relocations, swap-removes, compaction,
        // recycled rows) must agree with a naive BTreeMap adjacency
        // model on degrees and neighbor *sets* after arbitrary churn.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = topology::barabasi_albert_store(60, 2, &mut rng).unwrap();
        let churn = ChurnProcess::new(ChurnConfig {
            attach_links: 2,
            min_nodes: 10,
            ..Default::default()
        })
        .unwrap();
        use rand::Rng;
        for _ in 0..bursts {
            // Mirror a leave/join burst through both representations by
            // replaying the store's own structural outcome into the model.
            let leaves = rng.gen_range(0..20);
            let joins = rng.gen_range(0..20);
            churn.step_store(&mut s, leaves, joins, |_| 0.0, &mut rng);
            let mut model: BTreeMap<u32, BTreeSet<u32>> = s
                .live_ids()
                .map(|v| (v, s.neighbors(v).iter().copied().collect()))
                .collect();
            // Interleave direct edge toggles, applied to BOTH structures
            // independently — this is where divergence would show.
            let ids: Vec<u32> = s.live_ids().collect();
            for _ in 0..40 {
                let a = ids[rng.gen_range(0..ids.len())];
                let b = ids[rng.gen_range(0..ids.len())];
                if a == b || !s.is_live(a) || !s.is_live(b) {
                    continue;
                }
                if s.has_edge(a, b) {
                    prop_assert!(s.remove_edge(a, b).unwrap());
                    model.get_mut(&a).unwrap().remove(&b);
                    model.get_mut(&b).unwrap().remove(&a);
                } else {
                    prop_assert!(s.add_edge(a, b).unwrap());
                    model.get_mut(&a).unwrap().insert(b);
                    model.get_mut(&b).unwrap().insert(a);
                }
            }
            // Compare: same live rows, same degrees, same neighbor sets.
            let live: Vec<u32> = s.live_ids().collect();
            prop_assert_eq!(live.len(), model.len());
            let mut edge_total = 0usize;
            for v in live {
                let reference = &model[&v];
                prop_assert_eq!(s.degree(v), reference.len(), "degree of {}", v);
                let actual: BTreeSet<u32> = s.neighbors(v).iter().copied().collect();
                prop_assert_eq!(
                    actual.len(),
                    s.degree(v),
                    "parallel edge in row {}",
                    v
                );
                prop_assert_eq!(&actual, reference, "neighbor set of {}", v);
                edge_total += reference.len();
            }
            prop_assert_eq!(edge_total, 2 * s.edge_count());
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(seed in 0u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = topology::barabasi_albert(40, 2, &mut rng).unwrap();
        let source = g.nodes().next().unwrap();
        let dist: std::collections::HashMap<NodeId, u32> =
            g.bfs_distances(source).unwrap().into_iter().collect();
        // Every node reached (connected), and adjacent nodes differ by ≤ 1.
        prop_assert_eq!(dist.len(), g.node_count());
        for v in g.nodes() {
            for &nb in g.neighbors(v) {
                let dv = dist[&v] as i64;
                let dn = dist[&nb] as i64;
                prop_assert!((dv - dn).abs() <= 1, "BFS not 1-Lipschitz over edges");
            }
        }
    }
}
