//! # digest-telemetry
//!
//! Deterministic structured tracing, metric registry, and stage
//! profiling for the Digest workspace (fixed-precision approximate
//! continuous aggregates over P2P databases, Kashani & Shahabi,
//! ICDE 2008).
//!
//! Three facilities, all std-only and allocation-free on the hot path:
//!
//! * **Metrics** ([`metric`], [`registry`]) — every counter, gauge, and
//!   log₂-bucketed histogram in the workspace is a `static` handle
//!   declared centrally in [`registry`]; bumping one is a single relaxed
//!   atomic op.
//! * **Spans** ([`span()`]) — RAII guards timing the fixed pipeline stages
//!   against a wall clock (profiling) or the simulation tick counter
//!   (deterministic mode, the default).
//! * **Events** ([`event`], [`schema`]) — structured facts about the run
//!   ("this walk took 31 hops", "PRED-3 scheduled the next snapshot in
//!   7 ticks") rendered as canonical JSONL through an installable sink.
//!
//! ## Determinism contract
//!
//! With a fixed seed, the emitted JSONL stream is **byte-identical**
//! across runs: events never carry wall-clock values in any mode, field
//! keys serialise sorted, and floats render canonically. Deterministic
//! clock mode extends the same guarantee to the stage-profile table by
//! measuring spans in simulation ticks. `cargo xtask determinism`
//! re-runs its fixed-seed scenarios with telemetry enabled and byte-
//! compares both the stdout and the traces.
//!
//! ## Cost when disabled
//!
//! With no sink installed (the default), [`events_enabled`] is a single
//! relaxed atomic load returning `false`, and instrumentation sites
//! skip field construction entirely. Metrics and spans always run, but
//! each is only one or two relaxed atomic ops.

pub mod event;
pub mod metric;
pub mod registry;
pub mod schema;
pub mod span;

pub use event::{EventSink, Field, JsonlSink, MemorySink, TeeSink};
pub use metric::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{descriptors, reset_metrics, Descriptor, MetricHandle};
pub use span::{
    clock_mode, reset_stages, set_clock_mode, span, stage_reports, ClockMode, SpanGuard, Stage,
    StageReport, STAGES,
};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// The current simulation tick, stamped onto every event and read by
/// deterministic-mode spans. Drivers (the sim runner, the CLI loop) call
/// [`set_tick`] once per tick.
static TICK: AtomicU64 = AtomicU64::new(0);

/// Sets the global simulation tick.
#[inline]
pub fn set_tick(tick: u64) {
    // relaxed-ok: single-writer tick stamp; readers tolerate staleness
    // and events are serialised by the sink lock anyway.
    TICK.store(tick, Ordering::Relaxed);
}

/// The current global simulation tick.
#[inline]
#[must_use]
pub fn tick() -> u64 {
    // relaxed-ok: monotone stamp read for labelling, not synchronisation.
    TICK.load(Ordering::Relaxed)
}

/// Monotone allocator for causal occasion trace ids. Bumped by
/// [`begin_trace`] once per reporting occasion, in the deterministic
/// order the driver executes engines, so same-seed runs assign the same
/// ids. Id 0 is reserved for "no trace".
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The trace id events are currently attributed to (0 = none). Stamped
/// into every emitted event as the optional `trace` envelope field.
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);

/// Starts a new causal trace and makes it current, returning its id
/// (ids start at 1; 0 means "no trace"). The engine calls this at the
/// top of every snapshot occasion so the scheduler decision, snapshot
/// resolution, walk batch, estimate, and report events all share one id.
#[inline]
pub fn begin_trace() -> u64 {
    // relaxed-ok: ids are allocated in deterministic driver order; the
    // counter is never used to synchronise data.
    let id = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed) + 1;
    CURRENT_TRACE.store(id, Ordering::Relaxed); // relaxed-ok: labelling stamp
    id
}

/// Re-attributes subsequent events to trace `id` (0 clears attribution).
/// Drivers call this per engine segment so multi-query runs don't leak
/// one engine's occasion id onto another engine's events.
#[inline]
pub fn set_trace(id: u64) {
    // relaxed-ok: labelling stamp read by `emit` on the same thread.
    CURRENT_TRACE.store(id, Ordering::Relaxed);
}

/// The trace id currently stamped onto events (0 = none).
#[inline]
#[must_use]
pub fn current_trace() -> u64 {
    // relaxed-ok: labelling stamp, not synchronisation.
    CURRENT_TRACE.load(Ordering::Relaxed)
}

/// Whether `span` events are emitted when [`SpanGuard`]s close (off by
/// default: span events are a trace-export feature and would otherwise
/// bloat every `--telemetry` stream).
static SPAN_EVENTS: AtomicBool = AtomicBool::new(false);

/// Enables or disables `span` event emission (see [`emit_span_event`]).
pub fn set_span_events(enabled: bool) {
    // relaxed-ok: set once before the run, read as an advisory flag.
    SPAN_EVENTS.store(enabled, Ordering::Relaxed);
}

/// True when span events are requested (e.g. `digest-cli --trace-out`).
#[inline]
#[must_use]
pub fn span_events_enabled() -> bool {
    // relaxed-ok: advisory fast-path flag.
    SPAN_EVENTS.load(Ordering::Relaxed)
}

/// Emits one `span` event for a closed deterministic-clock span: the
/// stage name plus its duration in simulation ticks. No-op unless span
/// events are enabled *and* a sink is installed and unsuppressed — which
/// is exactly why worker-side spans (closed under suppression) must be
/// re-emitted post-join, in slot order, by the batch executor.
pub fn emit_span_event(stage: Stage, duration_ticks: u64) {
    if !span_events_enabled() || !events_enabled() {
        return;
    }
    emit(
        "span",
        &[
            ("stage", Field::Str(stage.name())),
            ("dur", Field::U64(duration_ticks)),
        ],
    );
}

/// Fast-path gate: true only when a sink is installed AND emission is
/// not suppressed. Kept in sync by [`install_sink`]/[`take_sink`] and
/// the suppression guard.
static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Nesting depth of active [`suppress_events`] guards.
static SUPPRESS_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// The installed sink. A `Mutex` (not `RwLock`): `emit` is already off
/// the disabled fast path, and sinks serialise writes internally anyway.
static SINK: Mutex<Option<Box<dyn EventSink>>> = Mutex::new(None);

fn refresh_enabled_flag(installed: bool) {
    // relaxed-ok: the flag is a fast-path hint; authoritative state is
    // behind the sink mutex and a stale read only costs one extra check.
    let enabled = installed && SUPPRESS_DEPTH.load(Ordering::Relaxed) == 0;
    EVENTS_ENABLED.store(enabled, Ordering::Relaxed); // relaxed-ok: advisory flag
}

/// Installs the process-wide event sink, returning the previous one.
pub fn install_sink(sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
    let mut slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = slot.replace(sink);
    refresh_enabled_flag(true);
    previous
}

/// Removes and returns the installed sink (flushing is the caller's
/// choice — the sink is handed back intact).
pub fn take_sink() -> Option<Box<dyn EventSink>> {
    let mut slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    let previous = slot.take();
    refresh_enabled_flag(false);
    previous
}

/// True when [`emit`] would deliver an event. Instrumentation sites
/// check this before building field slices so the disabled path costs
/// one relaxed load.
#[inline]
#[must_use]
pub fn events_enabled() -> bool {
    // relaxed-ok: fast-path hint; `emit` re-checks under the sink lock.
    EVENTS_ENABLED.load(Ordering::Relaxed)
}

/// Emits one structured event to the installed sink (no-op when
/// disabled or suppressed). The event is stamped with the global
/// [`tick`].
pub fn emit(kind: &'static str, fields: &[(&'static str, Field<'_>)]) {
    if !events_enabled() {
        return;
    }
    let tick = tick();
    let trace = current_trace();
    let slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = slot.as_ref() {
        if trace == 0 {
            sink.emit(kind, tick, fields);
        } else {
            // Stamp the causal trace id into the envelope. The copy is
            // cold-path only: we are already past the enabled check and
            // about to render JSON.
            let mut stamped = Vec::with_capacity(fields.len() + 1);
            stamped.extend_from_slice(fields);
            stamped.push(("trace", Field::U64(trace)));
            sink.emit(kind, tick, &stamped);
        }
    }
}

/// Flushes the installed sink (end of run).
pub fn flush() {
    let slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = slot.as_ref() {
        sink.flush();
    }
}

/// RAII guard from [`suppress_events`]; re-enables emission on drop.
#[derive(Debug)]
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        // relaxed-ok: guard nesting depth; the flag refresh below
        // re-reads it and suppression is advisory, not synchronising.
        SUPPRESS_DEPTH.fetch_sub(1, Ordering::Relaxed);
        let installed = SINK
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        refresh_enabled_flag(installed);
    }
}

/// Suppresses event emission until the returned guard drops. Used by
/// the parallel replication harness: worker threads run suppressed (so
/// interleaving can't leak into the trace) and deterministic rollups
/// are emitted after joining, in seed order. Guards nest.
#[must_use]
pub fn suppress_events() -> SuppressGuard {
    // relaxed-ok: guard nesting depth plus an advisory fast-path flag;
    // neither is used to synchronise data.
    SUPPRESS_DEPTH.fetch_add(1, Ordering::Relaxed);
    EVENTS_ENABLED.store(false, Ordering::Relaxed); // relaxed-ok: advisory flag
    SuppressGuard(())
}

/// Resets every metric, stage accumulator, and the global tick — the
/// full "fresh run" reset used between CLI invocations in one process
/// (tests, the bench harness) and by replication workers.
pub fn reset_run_state() {
    reset_metrics();
    reset_stages();
    set_tick(0);
    // relaxed-ok: reset happens between runs, never concurrently.
    TRACE_COUNTER.store(0, Ordering::Relaxed);
    CURRENT_TRACE.store(0, Ordering::Relaxed); // relaxed-ok: between runs
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// The sink slot is process-global; tests that install sinks must
    /// not interleave.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn emit_is_noop_without_sink() {
        let _guard = sink_lock();
        assert!(!events_enabled());
        // Must not panic or block.
        emit("tick", &[("estimate", Field::F64(1.0))]);
    }

    #[test]
    fn install_emit_take_round_trip() {
        let _guard = sink_lock();
        let sink = MemorySink::new();
        let handle = sink.clone();
        assert!(install_sink(Box::new(sink)).is_none());
        assert!(events_enabled());

        set_tick(42);
        emit(
            "net.churn",
            &[("joins", Field::U64(2)), ("leaves", Field::U64(1))],
        );
        assert_eq!(handle.len(), 1);
        assert_eq!(
            handle.lines()[0],
            r#"{"joins":2,"kind":"net.churn","leaves":1,"tick":42}"#
        );
        assert_eq!(crate::schema::validate_line(&handle.lines()[0]), Ok(()));

        assert!(take_sink().is_some());
        assert!(!events_enabled());
        emit(
            "net.churn",
            &[("joins", Field::U64(9)), ("leaves", Field::U64(9))],
        );
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn suppression_nests_and_restores() {
        let _guard = sink_lock();
        let sink = MemorySink::new();
        let handle = sink.clone();
        let previous = install_sink(Box::new(sink));
        assert!(previous.is_none());

        {
            let _outer = suppress_events();
            assert!(!events_enabled());
            {
                let _inner = suppress_events();
                emit(
                    "net.churn",
                    &[("joins", Field::U64(1)), ("leaves", Field::U64(0))],
                );
                assert!(!events_enabled());
            }
            // Still suppressed by the outer guard.
            assert!(!events_enabled());
        }
        assert!(events_enabled());
        emit(
            "net.churn",
            &[("joins", Field::U64(1)), ("leaves", Field::U64(0))],
        );
        assert_eq!(handle.len(), 1);

        assert!(take_sink().is_some());
    }

    #[test]
    fn trace_ids_stamp_the_envelope() {
        let _guard = sink_lock();
        reset_run_state();
        let sink = MemorySink::new();
        let handle = sink.clone();
        install_sink(Box::new(sink));

        set_tick(5);
        // No trace active: no `trace` key on the wire.
        emit(
            "net.churn",
            &[("joins", Field::U64(1)), ("leaves", Field::U64(0))],
        );
        let first = begin_trace();
        assert_eq!(first, 1);
        emit(
            "net.churn",
            &[("joins", Field::U64(2)), ("leaves", Field::U64(0))],
        );
        let second = begin_trace();
        assert_eq!(second, 2);
        set_trace(first);
        emit(
            "net.churn",
            &[("joins", Field::U64(3)), ("leaves", Field::U64(0))],
        );

        let lines = handle.lines();
        assert!(!lines[0].contains("\"trace\""));
        assert!(lines[1].contains("\"trace\":1"));
        assert!(lines[2].contains("\"trace\":1"));
        for line in &lines {
            assert_eq!(crate::schema::validate_line(line), Ok(()));
        }

        take_sink();
        reset_run_state();
        assert_eq!(current_trace(), 0);
        assert_eq!(begin_trace(), 1, "reset_run_state rewinds the allocator");
        reset_run_state();
    }

    #[test]
    fn span_events_emit_only_when_enabled_and_unsuppressed() {
        let _guard = sink_lock();
        reset_run_state();
        let sink = MemorySink::new();
        let handle = sink.clone();
        install_sink(Box::new(sink));

        set_tick(3);
        // Disabled by default: a closed span emits nothing.
        drop(span(Stage::Replication));
        assert_eq!(handle.len(), 0);

        set_span_events(true);
        drop(span(Stage::Replication));
        assert_eq!(handle.len(), 1);
        assert!(handle.lines()[0].contains("\"kind\":\"span\""));
        assert!(handle.lines()[0].contains("\"stage\":\"replication\""));
        assert_eq!(crate::schema::validate_line(&handle.lines()[0]), Ok(()));

        {
            let _quiet = suppress_events();
            drop(span(Stage::Replication));
        }
        assert_eq!(handle.len(), 1, "suppressed spans must not emit");

        set_span_events(false);
        take_sink();
        reset_run_state();
    }
}
