//! The workspace metric registry.
//!
//! Every metric in the Digest workspace is declared here, in one place,
//! as a `static` handle with a dotted name (`<crate>.<subsystem>.<what>`).
//! Instrumented crates import the handles they touch; consumers (the CLI
//! summary table, the `bench_telemetry` profiler, tests) iterate
//! [`descriptors`] — declaration order is reporting order, so snapshots
//! are deterministic without any runtime registration machinery, and the
//! hot path stays a single static atomic access.
//!
//! Naming scheme (documented in DESIGN.md §10): lower-case dotted paths;
//! the first segment is the owning crate (`sampling`, `core`, `net`,
//! `db`, `stats`, `sim`); counters name events in the plural, gauges name
//! the measured quantity, histograms name the measured duration/size.

use crate::metric::{Counter, Gauge, Histogram};

// --- digest-sampling ---------------------------------------------------

/// Fresh walks launched (full mixing-length burn-in paid).
pub static SAMPLING_WALKS_FRESH: Counter = Counter::new();
/// Pooled walks continued (reset-length only).
pub static SAMPLING_WALKS_CONTINUED: Counter = Counter::new();
/// Metropolis–Hastings steps taken (including lazy and rejected steps).
pub static SAMPLING_WALK_STEPS: Counter = Counter::new();
/// Accepted M–H moves — each is one forwarding message (paper §V-A).
pub static SAMPLING_WALK_HOPS: Counter = Counter::new();
/// M–H proposals drawn (non-lazy steps with at least one neighbor).
pub static SAMPLING_MH_PROPOSALS: Counter = Counter::new();
/// M–H proposals accepted.
pub static SAMPLING_MH_ACCEPTS: Counter = Counter::new();
/// Lazy (stay-put) steps — the ½ self-loop of Eq. 12.
pub static SAMPLING_MH_LAZY: Counter = Counter::new();
/// Node samples delivered by the sampling operator.
pub static SAMPLING_SAMPLES: Counter = Counter::new();
/// Total sampling messages (walk hops + result reports).
pub static SAMPLING_MESSAGES: Counter = Counter::new();
/// Burn-in steps paid per sample (mixing length for fresh walks, reset
/// length for continued ones).
pub static SAMPLING_BURN_IN: Histogram = Histogram::new();
/// Occasion walk batches executed by the parallel executor.
pub static SAMPLING_WALK_BATCHES: Counter = Counter::new();
/// Walk slots per executed batch (the occasion panel size).
pub static SAMPLING_BATCH_SLOTS: Histogram = Histogram::new();
/// Occasion snapshots built from scratch (full CSR + weight + proposal
/// table materialisation).
pub static SAMPLING_SNAPSHOT_BUILT: Counter = Counter::new();
/// Occasion snapshots served verbatim from the operator's cache (graph
/// epoch and weight fingerprint both unchanged).
pub static SAMPLING_SNAPSHOT_REUSED: Counter = Counter::new();
/// Occasion snapshots incrementally patched in place (small churn delta
/// or weight-only change; allocations and clean CSR rows reused).
pub static SAMPLING_SNAPSHOT_PATCHED: Counter = Counter::new();

// --- digest-core -------------------------------------------------------

/// Scheduler `next_delay` decisions taken.
pub static CORE_SCHEDULER_DECISIONS: Counter = Counter::new();
/// Distribution of scheduled inter-snapshot delays (ticks).
pub static CORE_SCHEDULER_DELAY: Histogram = Histogram::new();
/// Snapshot queries executed by engines.
pub static CORE_ENGINE_SNAPSHOTS: Counter = Counter::new();
/// Messages spent by engines (sampling + revisits + size estimation).
pub static CORE_ENGINE_MESSAGES: Counter = Counter::new();
/// Samples evaluated by engines (fresh + revisited).
pub static CORE_ENGINE_SAMPLES: Counter = Counter::new();
/// Retained panel members revisited by the RPT estimator.
pub static CORE_RPT_RETAINED: Counter = Counter::new();
/// Fresh draws made by the RPT estimator.
pub static CORE_RPT_FRESH: Counter = Counter::new();
/// Last observed RPT retained fraction `g` (Eq. 9's optimal split).
pub static CORE_RPT_RETAINED_FRACTION: Gauge = Gauge::new();
/// Capture–recapture relation-size refresh rounds.
pub static CORE_SIZE_REFRESHES: Counter = Counter::new();

// --- digest-net --------------------------------------------------------

/// Nodes that joined the overlay through churn.
pub static NET_CHURN_JOINS: Counter = Counter::new();
/// Nodes that left the overlay through churn.
pub static NET_CHURN_LEAVES: Counter = Counter::new();
/// BFS sweeps run by the path-length diagnostic.
pub static NET_PATH_BFS_RUNS: Counter = Counter::new();

// --- digest-db ---------------------------------------------------------

/// Local uniform tuple draws served by nodes.
pub static DB_LOCAL_SAMPLES: Counter = Counter::new();
/// In-place tuple updates applied.
pub static DB_UPDATES: Counter = Counter::new();

// --- digest-stats ------------------------------------------------------

/// PRED-k Taylor extrapolations computed.
pub static STATS_PRED_PREDICTIONS: Counter = Counter::new();
/// Extrapolations answered while still bootstrapping (forced delay 1).
pub static STATS_PRED_BOOTSTRAPS: Counter = Counter::new();

// --- digest-sim --------------------------------------------------------

/// Simulation ticks driven by the runner.
pub static SIM_TICKS: Counter = Counter::new();
/// Replications completed by the parallel harness.
pub static SIM_REPLICATIONS: Counter = Counter::new();

/// A reference to one registered metric.
#[derive(Debug, Clone, Copy)]
pub enum MetricHandle {
    /// A counter.
    Counter(&'static Counter),
    /// A gauge.
    Gauge(&'static Gauge),
    /// A histogram.
    Histogram(&'static Histogram),
}

/// Name + handle of one registered metric.
#[derive(Debug, Clone, Copy)]
pub struct Descriptor {
    /// Dotted metric name (see the module docs for the scheme).
    pub name: &'static str,
    /// The metric itself.
    pub handle: MetricHandle,
}

/// Every registered metric, in declaration (= reporting) order.
#[must_use]
pub fn descriptors() -> &'static [Descriptor] {
    DESCRIPTORS
}

use MetricHandle as H;

static DESCRIPTORS: &[Descriptor] = &[
    Descriptor {
        name: "sampling.walks.fresh",
        handle: H::Counter(&SAMPLING_WALKS_FRESH),
    },
    Descriptor {
        name: "sampling.walks.continued",
        handle: H::Counter(&SAMPLING_WALKS_CONTINUED),
    },
    Descriptor {
        name: "sampling.walk.steps",
        handle: H::Counter(&SAMPLING_WALK_STEPS),
    },
    Descriptor {
        name: "sampling.walk.hops",
        handle: H::Counter(&SAMPLING_WALK_HOPS),
    },
    Descriptor {
        name: "sampling.mh.proposals",
        handle: H::Counter(&SAMPLING_MH_PROPOSALS),
    },
    Descriptor {
        name: "sampling.mh.accepts",
        handle: H::Counter(&SAMPLING_MH_ACCEPTS),
    },
    Descriptor {
        name: "sampling.mh.lazy",
        handle: H::Counter(&SAMPLING_MH_LAZY),
    },
    Descriptor {
        name: "sampling.samples",
        handle: H::Counter(&SAMPLING_SAMPLES),
    },
    Descriptor {
        name: "sampling.messages",
        handle: H::Counter(&SAMPLING_MESSAGES),
    },
    Descriptor {
        name: "sampling.burn_in",
        handle: H::Histogram(&SAMPLING_BURN_IN),
    },
    Descriptor {
        name: "sampling.walk_batches",
        handle: H::Counter(&SAMPLING_WALK_BATCHES),
    },
    Descriptor {
        name: "sampling.batch.slots",
        handle: H::Histogram(&SAMPLING_BATCH_SLOTS),
    },
    Descriptor {
        name: "sampling.snapshot.built",
        handle: H::Counter(&SAMPLING_SNAPSHOT_BUILT),
    },
    Descriptor {
        name: "sampling.snapshot.reused",
        handle: H::Counter(&SAMPLING_SNAPSHOT_REUSED),
    },
    Descriptor {
        name: "sampling.snapshot.patched",
        handle: H::Counter(&SAMPLING_SNAPSHOT_PATCHED),
    },
    Descriptor {
        name: "core.scheduler.decisions",
        handle: H::Counter(&CORE_SCHEDULER_DECISIONS),
    },
    Descriptor {
        name: "core.scheduler.delay",
        handle: H::Histogram(&CORE_SCHEDULER_DELAY),
    },
    Descriptor {
        name: "core.engine.snapshots",
        handle: H::Counter(&CORE_ENGINE_SNAPSHOTS),
    },
    Descriptor {
        name: "core.engine.messages",
        handle: H::Counter(&CORE_ENGINE_MESSAGES),
    },
    Descriptor {
        name: "core.engine.samples",
        handle: H::Counter(&CORE_ENGINE_SAMPLES),
    },
    Descriptor {
        name: "core.rpt.retained",
        handle: H::Counter(&CORE_RPT_RETAINED),
    },
    Descriptor {
        name: "core.rpt.fresh",
        handle: H::Counter(&CORE_RPT_FRESH),
    },
    Descriptor {
        name: "core.rpt.retained_fraction",
        handle: H::Gauge(&CORE_RPT_RETAINED_FRACTION),
    },
    Descriptor {
        name: "core.size.refreshes",
        handle: H::Counter(&CORE_SIZE_REFRESHES),
    },
    Descriptor {
        name: "net.churn.joins",
        handle: H::Counter(&NET_CHURN_JOINS),
    },
    Descriptor {
        name: "net.churn.leaves",
        handle: H::Counter(&NET_CHURN_LEAVES),
    },
    Descriptor {
        name: "net.path.bfs_runs",
        handle: H::Counter(&NET_PATH_BFS_RUNS),
    },
    Descriptor {
        name: "db.local_samples",
        handle: H::Counter(&DB_LOCAL_SAMPLES),
    },
    Descriptor {
        name: "db.updates",
        handle: H::Counter(&DB_UPDATES),
    },
    Descriptor {
        name: "stats.pred.predictions",
        handle: H::Counter(&STATS_PRED_PREDICTIONS),
    },
    Descriptor {
        name: "stats.pred.bootstraps",
        handle: H::Counter(&STATS_PRED_BOOTSTRAPS),
    },
    Descriptor {
        name: "sim.ticks",
        handle: H::Counter(&SIM_TICKS),
    },
    Descriptor {
        name: "sim.replications",
        handle: H::Counter(&SIM_REPLICATIONS),
    },
];

/// Resets every registered metric (between runs; stage accumulators are
/// reset separately via [`crate::reset_stages`]).
pub fn reset_metrics() {
    for descriptor in descriptors() {
        match descriptor.handle {
            MetricHandle::Counter(c) => c.reset(),
            MetricHandle::Gauge(g) => g.reset(),
            MetricHandle::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_dotted_and_ordered() {
        let descriptors = descriptors();
        assert!(descriptors.len() >= 25);
        let mut seen = std::collections::BTreeSet::new();
        for d in descriptors {
            assert!(d.name.contains('.'), "{} should be dotted", d.name);
            assert_eq!(d.name, d.name.to_lowercase(), "{} lower-case", d.name);
            assert!(seen.insert(d.name), "{} duplicated", d.name);
        }
    }

    #[test]
    fn handles_resolve_to_live_metrics() {
        // Bump one of each kind through the static, observe through the
        // descriptor (>= comparisons: other tests may bump them too).
        SAMPLING_WALK_HOPS.add(3);
        CORE_RPT_RETAINED_FRACTION.set(0.5);
        SAMPLING_BURN_IN.record(7);
        let by_name = |name: &str| {
            descriptors()
                .iter()
                .find(|d| d.name == name)
                .copied()
                .unwrap()
        };
        match by_name("sampling.walk.hops").handle {
            MetricHandle::Counter(c) => assert!(c.get() >= 3),
            _ => panic!("wrong kind"),
        }
        match by_name("core.rpt.retained_fraction").handle {
            MetricHandle::Gauge(g) => assert_eq!(g.get(), 0.5),
            _ => panic!("wrong kind"),
        }
        match by_name("sampling.burn_in").handle {
            MetricHandle::Histogram(h) => assert!(h.count() >= 1),
            _ => panic!("wrong kind"),
        }
    }
}
