//! Structured events and sinks.
//!
//! An event is a `kind` (a `&'static str` naming its schema, see
//! [`crate::schema`]), the current simulation tick, and a small slice of
//! typed key/value fields. Emission goes through a process-wide sink
//! installed with [`crate::install_sink`]; when no sink is installed the
//! emit path is a single relaxed atomic load and an early return, so
//! instrumented library code pays near-zero cost by default.
//!
//! Events carry **no wall-clock values** in any mode — every field is a
//! pure function of the (seeded) simulation state — which is what makes
//! same-seed runs produce byte-identical JSONL streams and lets
//! `cargo xtask determinism` run with telemetry enabled.

use serde_json::{Map, Value};
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

/// One typed event field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Field<'a> {
    /// An unsigned integer (counts, ticks, sizes).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (estimates, fractions, bounds).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A short string label (system/scheduler names).
    Str(&'a str),
}

impl Field<'_> {
    fn to_value(self) -> Value {
        match self {
            Field::U64(v) => Value::Number(v as f64),
            Field::I64(v) => Value::Number(v as f64),
            Field::F64(v) => Value::Number(v),
            Field::Bool(v) => Value::Bool(v),
            Field::Str(v) => Value::String(v.to_owned()),
        }
    }
}

/// Where emitted events go.
///
/// Implementations must be internally synchronised (`emit` takes `&self`)
/// and must not panic: telemetry is an observer, never a failure source.
pub trait EventSink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, kind: &'static str, tick: u64, fields: &[(&'static str, Field<'_>)]);

    /// Flushes any buffering (end of run).
    fn flush(&self);
}

/// Renders an event as one canonical JSON line (no trailing newline).
///
/// Keys serialise in sorted order (the vendored `serde_json` stores
/// objects in a `BTreeMap`), so the rendering of a given event is a pure
/// function of its fields — the byte-level determinism the JSONL trace
/// format relies on.
#[must_use]
pub fn render_json_line(
    kind: &'static str,
    tick: u64,
    fields: &[(&'static str, Field<'_>)],
) -> String {
    let mut map = Map::new();
    map.insert("kind".to_owned(), Value::String(kind.to_owned()));
    map.insert("tick".to_owned(), Value::Number(tick as f64));
    for (name, field) in fields {
        map.insert((*name).to_owned(), field.to_value());
    }
    // The vendored serialiser is infallible for object/number/string
    // values; fall back to an empty object rather than propagating.
    serde_json::to_string(&Value::Object(map)).unwrap_or_else(|_| "{}".to_owned())
}

/// A sink that appends one JSON line per event to an `io::Write` stream
/// (typically a buffered file — see [`JsonlSink::create`]).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, kind: &'static str, tick: u64, fields: &[(&'static str, Field<'_>)]) {
        let line = render_json_line(kind, tick, fields);
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Telemetry IO failures are swallowed by design: losing trace
        // lines must never abort a simulation.
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writer.flush();
    }
}

/// Forwards every event to two child sinks — e.g. a [`JsonlSink`]
/// writing the `--telemetry` stream and a [`MemorySink`] collecting
/// lines for `--trace-out` export. Adds no synchronisation of its own;
/// each child serialises internally.
#[derive(Debug)]
pub struct TeeSink<A: EventSink, B: EventSink> {
    first: A,
    second: B,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Pairs two sinks.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn emit(&self, kind: &'static str, tick: u64, fields: &[(&'static str, Field<'_>)]) {
        self.first.emit(kind, tick, fields);
        self.second.emit(kind, tick, fields);
    }

    fn flush(&self) {
        self.first.flush();
        self.second.flush();
    }
}

/// An in-memory sink for tests: collects rendered JSON lines.
///
/// Clones share the same buffer, so a test can keep one handle and
/// install the other.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the collected lines.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of collected lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, kind: &'static str, tick: u64, fields: &[(&'static str, Field<'_>)]) {
        let line = render_json_line(kind, tick, fields);
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(line);
    }

    fn flush(&self) {}
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_canonical_and_sorted() {
        let line = render_json_line(
            "tick",
            7,
            &[
                ("zeta", Field::Bool(true)),
                ("alpha", Field::U64(3)),
                ("mid", Field::Str("x")),
            ],
        );
        // BTreeMap ordering: alpha < kind < mid < tick < zeta.
        assert_eq!(
            line,
            r#"{"alpha":3,"kind":"tick","mid":"x","tick":7,"zeta":true}"#
        );
        // Same inputs, same bytes.
        let again = render_json_line(
            "tick",
            7,
            &[
                ("zeta", Field::Bool(true)),
                ("alpha", Field::U64(3)),
                ("mid", Field::Str("x")),
            ],
        );
        assert_eq!(line, again);
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        let handle = sink.clone();
        sink.emit("tick", 0, &[("estimate", Field::F64(1.5))]);
        assert_eq!(handle.len(), 1);
        assert!(handle.lines()[0].contains("\"estimate\":1.5"));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit("tick", 1, &[]);
        sink.emit("tick", 2, &[]);
        sink.flush();
        let buffer = sink.writer.lock().unwrap().clone();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
