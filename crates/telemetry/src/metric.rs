//! Metric primitives: atomic counters, gauges, and log-bucketed
//! histograms.
//!
//! All three are `const`-constructible so every metric in the workspace
//! is a `static` handle — reading or bumping one is a single relaxed
//! atomic operation, with no allocation, locking, or registration on the
//! hot path. Relaxed ordering is sufficient: metrics are monotone tallies
//! read at quiescent points (end of run / after thread joins), never used
//! for synchronisation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed-ok: monotone tally; read only at quiescent points.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // relaxed-ok: read at quiescent points (end of run / post-join).
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (between runs; not a hot-path call).
    pub fn reset(&self) {
        // relaxed-ok: reset happens between runs, never concurrently.
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge holding `0.0` (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        // 0u64 is the bit pattern of +0.0_f64.
        Self(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        // relaxed-ok: last-value-wins sample; read at quiescent points.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        // relaxed-ok: read at quiescent points (end of run / post-join).
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets the gauge to `0.0`.
    pub fn reset(&self) {
        // relaxed-ok: reset happens between runs, never concurrently.
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `b`
/// (1 ≤ b ≤ 64) holds values with `b` significant bits, i.e. the range
/// `[2^(b−1), 2^b)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucketing by bit length keeps recording allocation-free and O(1)
/// while still answering the profiling questions that matter here —
/// "how long are burn-ins / scheduler delays, order-of-magnitude-wise,
/// and how skewed" — with ≤ 2× relative resolution everywhere.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// `AtomicU64` lacks `Copy`, so array-repeat initialisation goes through
/// a named constant. The const is only ever used as an initialiser (each
/// repeat produces its own atomic), never borrowed through.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a value: its bit length (0 for 0).
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound (exclusive) of bucket `b`; `u64::MAX` for the last.
    #[must_use]
    pub fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            1
        } else if bucket >= 64 {
            u64::MAX
        } else {
            1u64 << bucket
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone tally
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed-ok: monotone tally
        self.max.fetch_max(value, Ordering::Relaxed); // relaxed-ok: monotone max
                                                      // relaxed-ok: monotone tally; fields are summarised independently
                                                      // at quiescent points, so no cross-field ordering is needed.
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        // relaxed-ok: read at quiescent points (end of run / post-join).
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        // relaxed-ok: read at quiescent points (end of run / post-join).
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        // relaxed-ok: read at quiescent points (end of run / post-join).
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.buckets.iter()) {
            // relaxed-ok: read at quiescent points (end of run / post-join).
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. A ≤ 2× overestimate by
    /// construction — good enough for summary tables.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0);
        let mut cumulative = 0.0;
        for (bucket, count) in self.bucket_counts().iter().enumerate() {
            cumulative += *count as f64;
            if cumulative >= target {
                return Self::bucket_upper(bucket).min(self.max());
            }
        }
        self.max()
    }

    /// Interpolated `q`-quantile estimate (`0.0 ≤ q ≤ 1.0`); 0.0 when
    /// empty. The target rank is positioned linearly *within* its log₂
    /// bucket (between the bucket's lower bound and its upper bound
    /// clamped to the observed max), which recovers exact answers for
    /// single-bucket distributions and stays within the ≤ 2× bucket
    /// resolution everywhere else — a strict refinement of
    /// [`Histogram::quantile_upper_bound`] for summary tables.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let max = self.max() as f64;
        let target = (q.clamp(0.0, 1.0) * n as f64).clamp(1.0, n as f64);
        let mut below = 0.0;
        for (bucket, count) in self.bucket_counts().iter().enumerate() {
            let in_bucket = *count as f64;
            if in_bucket <= 0.0 {
                continue;
            }
            if below + in_bucket >= target {
                let lower = if bucket == 0 {
                    0.0
                } else {
                    Self::bucket_upper(bucket - 1) as f64
                };
                let upper = (Self::bucket_upper(bucket) as f64).min(max);
                let frac = ((target - below) / in_bucket).clamp(0.0, 1.0);
                return (lower + frac * (upper - lower).max(0.0)).min(max);
            }
            below += in_bucket;
        }
        max
    }

    /// Clears all observations.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed); // relaxed-ok: between runs
        self.sum.store(0, Ordering::Relaxed); // relaxed-ok: between runs
        self.max.store(0, Ordering::Relaxed); // relaxed-ok: between runs
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed); // relaxed-ok: between runs
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 1);
        assert_eq!(Histogram::bucket_upper(2), 4);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-12);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[7], 1); // 100 ∈ [64, 128)
                                   // Median bucket upper bound: 3rd of 5 observations lands in
                                   // bucket 2 → upper bound 4.
        assert_eq!(h.quantile_upper_bound(0.5), 4);
        // Extreme quantile is clamped to the observed max.
        assert_eq!(h.quantile_upper_bound(1.0), 100);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn quantile_is_exact_for_constant_distributions() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(64);
        }
        // The single occupied bucket's upper bound clamps to the max, so
        // interpolation collapses to the exact value.
        assert_eq!(h.quantile(0.5), 64.0);
        assert_eq!(h.quantile(0.99), 64.0);
        let zeros = Histogram::new();
        for _ in 0..5 {
            zeros.record(0);
        }
        assert_eq!(zeros.quantile(0.5), 0.0);
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_interpolates_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // log₂ buckets give ≤ 2× resolution; linear interpolation within
        // the bucket should land well inside that envelope for a uniform
        // distribution.
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < 0.30,
                "p{:.0} estimate {est} vs true {truth} (rel err {rel:.3})",
                q * 100.0
            );
        }
        // Monotone in q and clamped to the observed extremes.
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
        assert!(h.quantile(1.0) <= 1000.0);
    }

    #[test]
    fn quantile_handles_skewed_distributions() {
        let h = Histogram::new();
        // 99 small values and one huge outlier: p50 must stay small,
        // p99+ must reach toward the outlier's bucket.
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1_000_000);
        assert!(h.quantile(0.5) <= 4.0, "p50 {}", h.quantile(0.5));
        assert!(h.quantile(0.999) > 1000.0, "p99.9 {}", h.quantile(0.999));
    }
}
