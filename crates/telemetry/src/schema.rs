//! The JSONL trace schema and its validator.
//!
//! Every event kind emitted by the workspace is declared here with its
//! full field list; [`validate_line`] checks one JSONL line strictly —
//! unknown kinds, unknown fields, missing required fields, and
//! type-mismatched values are all errors. `cargo xtask telemetry-schema`
//! runs this validator over a real trace, so the table below *is* the
//! wire format contract documented in the README.
//!
//! Shared envelope (present on every event):
//!
//! * `kind` — string, the schema name;
//! * `tick` — unsigned integer, the simulation tick of emission.

use serde_json::Value;

/// Field value types the schema can require.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// Non-negative integral number.
    U64,
    /// Any number.
    F64,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl FieldType {
    fn matches(self, value: &Value) -> bool {
        match self {
            FieldType::U64 => value.as_u64().is_some(),
            FieldType::F64 => value.as_f64().is_some(),
            FieldType::Bool => value.as_bool().is_some(),
            FieldType::Str => value.as_str().is_some(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FieldType::U64 => "u64",
            FieldType::F64 => "f64",
            FieldType::Bool => "bool",
            FieldType::Str => "string",
        }
    }
}

/// One field slot of an event schema.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Field name as it appears on the wire.
    pub name: &'static str,
    /// Required value type.
    pub ty: FieldType,
    /// Whether the field may be omitted.
    pub required: bool,
}

const fn req(name: &'static str, ty: FieldType) -> FieldSpec {
    FieldSpec {
        name,
        ty,
        required: true,
    }
}

const fn opt(name: &'static str, ty: FieldType) -> FieldSpec {
    FieldSpec {
        name,
        ty,
        required: false,
    }
}

/// Schema of one event kind.
#[derive(Debug, Clone, Copy)]
pub struct EventSchema {
    /// The `kind` discriminator value.
    pub kind: &'static str,
    /// All fields beyond the `kind`/`tick` envelope.
    pub fields: &'static [FieldSpec],
}

use FieldType::{Bool, Str, F64, U64};

/// Every event kind the workspace emits, with its full field list.
pub const EVENT_SCHEMAS: &[EventSchema] = &[
    // One sampling-operator walk: fresh (burn-in) or continued (reset).
    EventSchema {
        kind: "sampling.walk",
        fields: &[req("fresh", Bool), req("steps", U64), req("hops", U64)],
    },
    // One occasion walk batch run through the deterministic parallel
    // executor (emitted after workers join, alongside the per-slot
    // `sampling.walk` rollups). Deliberately carries no worker count:
    // the stream must be byte-identical for every `workers` setting,
    // and thread count is configuration, not behaviour.
    EventSchema {
        kind: "sampling.batch",
        fields: &[
            req("slots", U64),
            req("fresh", U64),
            req("continued", U64),
            req("messages", U64),
        ],
    },
    // One scheduler next_delay decision (PRED-k adds the extrapolation
    // diagnostics; ALL omits them).
    EventSchema {
        kind: "scheduler.decision",
        fields: &[
            req("scheduler", Str),
            req("delay", U64),
            opt("bootstrapping", Bool),
            opt("derivative_bound", F64),
        ],
    },
    // One estimator snapshot evaluation (RPT adds the panel split).
    EventSchema {
        kind: "estimator.snapshot",
        fields: &[
            req("estimator", Str),
            req("estimate", F64),
            req("fresh", U64),
            req("retained", U64),
            opt("retained_fraction", F64),
            opt("rho", F64),
        ],
    },
    // One engine on_tick that executed a snapshot query.
    EventSchema {
        kind: "engine.snapshot",
        fields: &[
            req("system", Str),
            req("estimate", F64),
            req("messages", U64),
            req("samples", U64),
        ],
    },
    // Churn applied to the overlay in one tick (only emitted when
    // something actually changed).
    EventSchema {
        kind: "net.churn",
        fields: &[req("joins", U64), req("leaves", U64)],
    },
    // Per-tick rollup from the simulation driver (one per engine per
    // tick; `query` disambiguates multi-query runs).
    EventSchema {
        kind: "tick",
        fields: &[
            req("estimate", F64),
            req("exact", F64),
            req("snapshot", Bool),
            req("samples", U64),
            req("fresh", U64),
            req("messages", U64),
            req("updated", U64),
            opt("query", U64),
        ],
    },
    // Per-replication rollup from the parallel harness (emitted after
    // joins, in seed order).
    EventSchema {
        kind: "replication",
        fields: &[
            req("seed", U64),
            req("ticks", U64),
            req("snapshots", U64),
            req("samples", U64),
            req("messages", U64),
        ],
    },
    // One occasion-snapshot cache resolution (cold build, zero-write
    // reuse, or incremental patch) at the start of a walk batch.
    EventSchema {
        kind: "sampling.snapshot",
        fields: &[req("refresh", Str), req("nodes", U64)],
    },
    // One closed deterministic-clock pipeline span (`dur` in simulation
    // ticks). Only emitted when span events are enabled (trace export);
    // worker-side spans are suppressed and re-emitted post-join in slot
    // order so the stream is identical for every worker count.
    EventSchema {
        kind: "span",
        fields: &[req("stage", Str), req("dur", U64)],
    },
    // One audited reporting occasion: the ground-truth oracle's exact
    // aggregate next to the reported estimate, with the ε-violation
    // verdict, staleness since the previous occasion, panel size, and
    // message spend. `query` disambiguates multi-query runs; `round` is
    // the trace id of the coalesced multi-query sampling round that
    // served this occasion (mux runs only).
    EventSchema {
        kind: "audit.occasion",
        fields: &[
            req("estimate", F64),
            req("exact", F64),
            req("error", F64),
            req("violation", Bool),
            req("staleness", U64),
            req("panel", U64),
            req("messages", U64),
            opt("query", U64),
            opt("round", U64),
        ],
    },
    // One coalesced multi-query sampling round executed by the query
    // multiplexer: how many member queries consumed the shared panel, how
    // many were at their deadline vs pulled forward within the coalescing
    // horizon, the panel size drawn, and the round's total message spend.
    // The event's `trace` envelope is the round id that member
    // `audit.occasion` events reference via their `round` field.
    EventSchema {
        kind: "mux.round",
        fields: &[
            req("members", U64),
            req("due", U64),
            req("pulled", U64),
            req("panel", U64),
            req("messages", U64),
        ],
    },
];

/// Looks up the schema for a kind.
#[must_use]
pub fn schema_for(kind: &str) -> Option<&'static EventSchema> {
    EVENT_SCHEMAS.iter().find(|s| s.kind == kind)
}

/// Validates one JSONL trace line strictly.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found:
/// parse failure, non-object line, missing/mistyped envelope, unknown
/// `kind`, missing required field, unknown field, or type mismatch.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = serde_json::from_str(line).map_err(|_| format!("not valid JSON: {line}"))?;
    let object = value
        .as_object()
        .ok_or_else(|| format!("not a JSON object: {line}"))?;

    let kind = object
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string `kind`: {line}"))?;
    if object.get("tick").and_then(Value::as_u64).is_none() {
        return Err(format!("missing u64 `tick`: {line}"));
    }
    // The optional `trace` envelope field (causal occasion id) may appear
    // on any kind; 0 is never serialised (it means "no trace").
    if let Some(trace) = object.get("trace") {
        if trace.as_u64().is_none() {
            return Err(format!("envelope field `trace` is not u64: {line}"));
        }
    }

    let schema = schema_for(kind).ok_or_else(|| format!("unknown event kind `{kind}`"))?;

    for spec in schema.fields {
        match object.get(spec.name) {
            Some(value) if spec.ty.matches(value) => {}
            Some(_) => {
                return Err(format!(
                    "`{kind}` field `{}` is not {}: {line}",
                    spec.name,
                    spec.ty.name()
                ));
            }
            None if spec.required => {
                return Err(format!("`{kind}` missing required field `{}`", spec.name));
            }
            None => {}
        }
    }

    for (key, _) in object.iter() {
        let envelope = key == "kind" || key == "tick" || key == "trace";
        if !envelope && !schema.fields.iter().any(|spec| spec.name == key) {
            return Err(format!("`{kind}` has unknown field `{key}`"));
        }
    }

    Ok(())
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::event::{render_json_line, Field};

    #[test]
    fn kinds_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for schema in EVENT_SCHEMAS {
            assert!(seen.insert(schema.kind), "{} duplicated", schema.kind);
        }
    }

    #[test]
    fn rendered_events_validate() {
        let line = render_json_line(
            "sampling.walk",
            4,
            &[
                ("fresh", Field::Bool(true)),
                ("steps", Field::U64(50)),
                ("hops", Field::U64(31)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));

        let line = render_json_line(
            "scheduler.decision",
            9,
            &[
                ("scheduler", Field::Str("pred3")),
                ("delay", Field::U64(7)),
                ("bootstrapping", Field::Bool(false)),
                ("derivative_bound", Field::F64(0.25)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));
    }

    #[test]
    fn optional_fields_may_be_omitted() {
        let line = render_json_line(
            "scheduler.decision",
            0,
            &[("scheduler", Field::Str("all")), ("delay", Field::U64(1))],
        );
        assert_eq!(validate_line(&line), Ok(()));
    }

    #[test]
    fn audit_and_trace_kinds_validate() {
        let line = render_json_line(
            "audit.occasion",
            12,
            &[
                ("estimate", Field::F64(50.2)),
                ("exact", Field::F64(50.0)),
                ("error", Field::F64(0.2)),
                ("violation", Field::Bool(false)),
                ("staleness", Field::U64(3)),
                ("panel", Field::U64(128)),
                ("messages", Field::U64(4096)),
                ("query", Field::U64(0)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));

        let line = render_json_line(
            "span",
            4,
            &[
                ("stage", Field::Str("sampling_walk")),
                ("dur", Field::U64(0)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));

        let line = render_json_line(
            "sampling.snapshot",
            9,
            &[
                ("refresh", Field::Str("patched")),
                ("nodes", Field::U64(1500)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));
    }

    #[test]
    fn mux_round_kind_validates() {
        let line = render_json_line(
            "mux.round",
            17,
            &[
                ("members", Field::U64(5)),
                ("due", Field::U64(2)),
                ("pulled", Field::U64(1)),
                ("panel", Field::U64(256)),
                ("messages", Field::U64(9000)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));
        // A member occasion referencing its round validates too.
        let line = render_json_line(
            "audit.occasion",
            17,
            &[
                ("estimate", Field::F64(50.2)),
                ("exact", Field::F64(50.0)),
                ("error", Field::F64(0.2)),
                ("violation", Field::Bool(false)),
                ("staleness", Field::U64(3)),
                ("panel", Field::U64(256)),
                ("messages", Field::U64(1800)),
                ("query", Field::U64(3)),
                ("round", Field::U64(41)),
            ],
        );
        assert_eq!(validate_line(&line), Ok(()));
    }

    #[test]
    fn rejects_malformed_mux_round_events() {
        // Missing required field (`panel`).
        assert!(validate_line(
            r#"{"due":1,"kind":"mux.round","members":3,"messages":10,"pulled":0,"tick":0}"#
        )
        .is_err());
        // Type mismatch (`members` must be u64).
        assert!(validate_line(
            r#"{"due":1,"kind":"mux.round","members":"x","messages":10,"panel":8,"pulled":0,"tick":0}"#
        )
        .is_err());
        // `round` on audit.occasion must be u64.
        assert!(validate_line(
            r#"{"error":0.1,"estimate":1.0,"exact":0.9,"kind":"audit.occasion","messages":1,"panel":2,"round":-3,"staleness":0,"tick":0,"violation":false}"#
        )
        .is_err());
    }

    #[test]
    fn trace_envelope_is_accepted_on_every_kind() {
        let line = r#"{"dur":0,"kind":"span","stage":"engine_tick","tick":3,"trace":7}"#;
        assert_eq!(validate_line(line), Ok(()));
        let line = r#"{"joins":1,"kind":"net.churn","leaves":0,"tick":0,"trace":2}"#;
        assert_eq!(validate_line(line), Ok(()));
        // Mistyped trace envelope is rejected.
        let line = r#"{"joins":1,"kind":"net.churn","leaves":0,"tick":0,"trace":"x"}"#;
        assert!(validate_line(line).is_err());
    }

    #[test]
    fn rejects_malformed_audit_events() {
        // Missing required field (`exact`).
        assert!(validate_line(
            r#"{"error":0.1,"estimate":1.0,"kind":"audit.occasion","messages":1,"panel":2,"staleness":0,"tick":0,"violation":false}"#
        )
        .is_err());
        // Type mismatch (`violation` must be bool).
        assert!(validate_line(
            r#"{"error":0.1,"estimate":1.0,"exact":0.9,"kind":"audit.occasion","messages":1,"panel":2,"staleness":0,"tick":0,"violation":1}"#
        )
        .is_err());
        // Unknown field.
        assert!(validate_line(
            r#"{"dur":0,"extra":1,"kind":"span","stage":"engine_tick","tick":0}"#
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("[1,2]").is_err());
        assert!(validate_line(r#"{"tick":0}"#).is_err());
        assert!(validate_line(r#"{"kind":"tick"}"#).is_err());
        assert!(validate_line(r#"{"kind":"nope","tick":0}"#).is_err());
        // Missing required field.
        assert!(validate_line(r#"{"kind":"net.churn","tick":0,"joins":1}"#).is_err());
        // Unknown field.
        assert!(
            validate_line(r#"{"joins":1,"kind":"net.churn","leaves":0,"tick":0,"x":1}"#).is_err()
        );
        // Type mismatch.
        assert!(validate_line(r#"{"joins":true,"kind":"net.churn","leaves":0,"tick":0}"#).is_err());
        // Negative tick.
        assert!(validate_line(r#"{"joins":1,"kind":"net.churn","leaves":0,"tick":-1}"#).is_err());
    }
}
