//! Stage profiling: lightweight spans with RAII guards.
//!
//! A [`Stage`] names one of the fixed pipeline phases of a Digest run
//! (workload advance, engine tick, estimator evaluation, sampling walk,
//! …). [`span()`] returns a guard that, on drop, folds the stage's
//! duration into a process-wide accumulator. Two clock modes:
//!
//! * [`ClockMode::Wall`] — durations are measured with
//!   [`std::time::Instant`] and accumulated in nanoseconds. This is the
//!   mode the `bench_telemetry` profiler runs in.
//! * [`ClockMode::Deterministic`] (the default) — no wall clock is ever
//!   read; durations are measured in *simulation ticks* (the global tick
//!   set by the driver via [`crate::set_tick`]). Every accumulated value
//!   is then a pure function of the seeded simulation, so same-seed runs
//!   report byte-identical stage tables and `cargo xtask determinism`
//!   holds with telemetry enabled.
//!
//! Span accounting is two relaxed atomic adds per span (plus two
//! `Instant` reads in wall mode); spans are cheap enough for per-sample
//! instrumentation.

use crate::metric::Counter;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// The clock a span measures against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Logical time: durations in simulation ticks (default; replay-safe).
    Deterministic,
    /// Physical time: durations in nanoseconds (for profiling runs).
    Wall,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide clock mode (call once, before the run).
pub fn set_clock_mode(mode: ClockMode) {
    let encoded = match mode {
        ClockMode::Deterministic => 0,
        ClockMode::Wall => 1,
    };
    // relaxed-ok: mode is set once before the run, never concurrently
    // with spans; readers need no ordering.
    MODE.store(encoded, Ordering::Relaxed);
}

/// The current clock mode.
#[must_use]
pub fn clock_mode() -> ClockMode {
    // relaxed-ok: read-mostly mode flag set before the run starts.
    if MODE.load(Ordering::Relaxed) == 0 {
        ClockMode::Deterministic
    } else {
        ClockMode::Wall
    }
}

/// One profiled pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Workload mutation for one tick (updates + churn).
    WorkloadAdvance,
    /// One engine `on_tick` that executed a snapshot.
    EngineTick,
    /// Capture–recapture relation-size estimation round.
    SizeEstimate,
    /// One estimator snapshot evaluation (INDEP / RPT / quantile).
    EstimatorEval,
    /// One scheduler `next_delay` decision.
    SchedulerDecide,
    /// One sampling-operator walk (burn-in or reset continuation).
    SamplingWalk,
    /// One occasion-snapshot refresh (cache probe + build/patch/reuse of
    /// the CSR, weight, and M–H proposal tables).
    SnapshotBuild,
    /// One occasion walk batch through the parallel executor (snapshot
    /// refresh + all slot walks + reassembly).
    SamplingBatch,
    /// One full simulation replication (parallel harness).
    Replication,
}

/// All stages, in reporting order.
pub const STAGES: &[Stage] = &[
    Stage::WorkloadAdvance,
    Stage::EngineTick,
    Stage::SizeEstimate,
    Stage::EstimatorEval,
    Stage::SchedulerDecide,
    Stage::SamplingWalk,
    Stage::SnapshotBuild,
    Stage::SamplingBatch,
    Stage::Replication,
];

impl Stage {
    /// Stable snake-case name (used in summaries and `BENCH_telemetry.json`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::WorkloadAdvance => "workload_advance",
            Stage::EngineTick => "engine_tick",
            Stage::SizeEstimate => "size_estimate",
            Stage::EstimatorEval => "estimator_eval",
            Stage::SchedulerDecide => "scheduler_decide",
            Stage::SamplingWalk => "sampling_walk",
            Stage::SnapshotBuild => "snapshot_build",
            Stage::SamplingBatch => "sampling_batch",
            Stage::Replication => "replication",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::WorkloadAdvance => 0,
            Stage::EngineTick => 1,
            Stage::SizeEstimate => 2,
            Stage::EstimatorEval => 3,
            Stage::SchedulerDecide => 4,
            Stage::SamplingWalk => 5,
            Stage::SnapshotBuild => 6,
            Stage::SamplingBatch => 7,
            Stage::Replication => 8,
        }
    }
}

struct StageStat {
    count: Counter,
    /// Nanoseconds in wall mode; simulation-tick units in deterministic
    /// mode (the two are never mixed within one run: `reset` between
    /// mode switches).
    total: AtomicU64,
}

impl StageStat {
    const fn new() -> Self {
        Self {
            count: Counter::new(),
            total: AtomicU64::new(0),
        }
    }
}

/// Array-repeat initialiser (atomics lack `Copy`); only used to seed the
/// `STATS` table below, never borrowed as a const.
#[allow(clippy::declare_interior_mutable_const)]
const STAGE_STAT: StageStat = StageStat::new();
static STATS: [StageStat; 9] = [STAGE_STAT; 9];

/// Accumulated totals for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// The stage.
    pub stage: Stage,
    /// Spans recorded.
    pub count: u64,
    /// Total duration: nanoseconds (wall mode) or ticks (deterministic).
    pub total: u64,
}

impl StageReport {
    /// Mean duration per span in the mode's unit (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// Snapshot of every stage accumulator, in [`STAGES`] order.
#[must_use]
pub fn stage_reports() -> Vec<StageReport> {
    STAGES
        .iter()
        .map(|&stage| {
            let stat = &STATS[stage.index()];
            StageReport {
                stage,
                count: stat.count.get(),
                // relaxed-ok: read at quiescent points (post-join).
                total: stat.total.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Clears every stage accumulator (between runs / mode switches).
pub fn reset_stages() {
    for stat in &STATS {
        stat.count.reset();
        stat.total.store(0, Ordering::Relaxed); // relaxed-ok: between runs
    }
}

/// RAII guard returned by [`span()`]; records the stage duration on drop.
#[derive(Debug)]
pub struct SpanGuard {
    stage: Stage,
    /// `Some` in wall mode only — deterministic mode never reads a clock.
    started_wall: Option<Instant>,
    started_tick: u64,
}

/// Opens a span over `stage`; the returned guard closes it when dropped.
#[must_use]
pub fn span(stage: Stage) -> SpanGuard {
    let started_wall = match clock_mode() {
        ClockMode::Wall => Some(Instant::now()),
        ClockMode::Deterministic => None,
    };
    SpanGuard {
        stage,
        started_wall,
        started_tick: crate::tick(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = match self.started_wall {
            Some(start) => u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => crate::tick().saturating_sub(self.started_tick),
        };
        let stat = &STATS[self.stage.index()];
        stat.count.inc();
        stat.total.fetch_add(elapsed, Ordering::Relaxed); // relaxed-ok: monotone tally
                                                          // Deterministic-clock spans additionally surface as `span` events
                                                          // when trace export is on. Wall-mode durations never reach the
                                                          // event stream (they would break byte-level replay), and spans
                                                          // closed under suppression (worker threads) are skipped here and
                                                          // re-emitted post-join in slot order by the batch executor.
        if self.started_wall.is_none() {
            crate::emit_span_event(self.stage, elapsed);
        }
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_spans_measure_ticks_only() {
        // Default mode is deterministic; use a stage no other test (or
        // instrumented crate) touches within this test binary.
        reset_stages();
        crate::set_tick(10);
        {
            let _guard = span(Stage::Replication);
            crate::set_tick(13);
        }
        let report = stage_reports()
            .into_iter()
            .find(|r| r.stage == Stage::Replication)
            .unwrap();
        assert_eq!(report.count, 1);
        assert_eq!(report.total, 3);
        assert_eq!(report.mean(), 3.0);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(STAGES.len(), 9);
        for (i, stage) in STAGES.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.name().is_empty());
        }
    }
}
