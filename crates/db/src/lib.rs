//! # digest-db
//!
//! The peer-to-peer database substrate: a single relation `R`, horizontally
//! partitioned across the live nodes of the overlay (paper §II).
//!
//! * [`tuple`](mod@tuple) — tuples, schemas, and stable tuple handles (node id +
//!   local slot + generation) that let the query engine's sample panel
//!   revisit a sampled tuple cheaply and detect deletion.
//! * [`expr`] — the arithmetic `expression` of the query model
//!   (`SELECT op(expression) FROM R`): an AST over the relation's
//!   attributes with a small text parser for the examples.
//! * [`predicate`] — boolean `WHERE` predicates over the same attributes
//!   (the paper's §VIII selection extension).
//! * [`store`] — a node's local tuple store with O(1) insert / delete /
//!   uniform local sampling, the second stage of two-stage sampling.
//! * [`database`] — the partitioned database: per-node stores, churn
//!   integration (a departing node deletes its fragment), and the *oracle*
//!   exact aggregates the simulator uses for ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod database;
pub mod error;
pub mod expr;
pub mod predicate;
pub mod store;
pub mod tuple;

pub use database::P2PDatabase;
pub use error::DbError;
pub use expr::Expr;
pub use predicate::{CmpOp, Predicate};
pub use store::LocalStore;
pub use tuple::{Schema, Tuple, TupleHandle};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DbError>;
