//! A node's local tuple store.
//!
//! Supports the operations the paper's model needs at per-tick rates:
//! O(1) insert, O(1) delete, O(1) *uniform local sampling* (the second
//! stage of two-stage sampling, §III), and generation-checked access so a
//! retained sample detects deletion on revisit.

use crate::tuple::Tuple;
use rand::Rng;

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    tuple: Option<Tuple>,
}

/// The tuple fragment stored at one node.
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    slots: Vec<Slot>,
    /// Dense list of occupied slot indices (for O(1) uniform choice).
    live: Vec<u32>,
    /// `live_pos[slot]` = index into `live`, `u32::MAX` when vacant.
    live_pos: Vec<u32>,
    /// Vacant slot indices available for reuse.
    free: Vec<u32>,
}

impl LocalStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with capacity for `n` tuples.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            live: Vec::with_capacity(n),
            live_pos: Vec::with_capacity(n),
            free: Vec::new(),
        }
    }

    /// Number of stored tuples (`m_v` in the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Inserts a tuple, returning `(slot, generation)`.
    pub fn insert(&mut self, tuple: Tuple) -> (u32, u32) {
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.tuple = Some(tuple);
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
                self.slots.push(Slot {
                    generation: 0,
                    tuple: Some(tuple),
                });
                self.live_pos.push(u32::MAX);
                s
            }
        };
        self.live_pos[slot as usize] = u32::try_from(self.live.len()).unwrap_or(u32::MAX);
        self.live.push(slot);
        (slot, self.slots[slot as usize].generation)
    }

    /// Deletes the tuple at `slot` if the generation matches; returns
    /// whether a tuple was deleted. The slot's generation is bumped so
    /// outstanding handles become stale.
    pub fn delete(&mut self, slot: u32, generation: u32) -> bool {
        let Some(entry) = self.slots.get_mut(slot as usize) else {
            return false;
        };
        if entry.generation != generation || entry.tuple.is_none() {
            return false;
        }
        entry.tuple = None;
        entry.generation = entry.generation.wrapping_add(1);
        // Remove from the dense live list; it is non-empty here (the slot
        // we just vacated was in it).
        let pos = self.live_pos[slot as usize];
        self.live_pos[slot as usize] = u32::MAX;
        if let Some(last) = self.live.pop() {
            if last != slot {
                self.live[pos as usize] = last;
                self.live_pos[last as usize] = pos;
            }
        }
        self.free.push(slot);
        true
    }

    /// The tuple at `slot` under the given generation, or `None` if the
    /// handle is stale.
    #[must_use]
    pub fn get(&self, slot: u32, generation: u32) -> Option<&Tuple> {
        let entry = self.slots.get(slot as usize)?;
        if entry.generation == generation {
            entry.tuple.as_ref()
        } else {
            None
        }
    }

    /// Mutable access under a generation check (autonomous local update).
    #[must_use]
    pub fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut Tuple> {
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.generation == generation {
            entry.tuple.as_mut()
        } else {
            None
        }
    }

    /// Uniformly random stored tuple as `(slot, generation, &tuple)`.
    #[must_use]
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(u32, u32, &Tuple)> {
        if self.live.is_empty() {
            return None;
        }
        let slot = self.live[rng.gen_range(0..self.live.len())];
        let entry = &self.slots[slot as usize];
        entry
            .tuple
            .as_ref()
            .map(|tuple| (slot, entry.generation, tuple))
    }

    /// Iterates over `(slot, generation, &tuple)` for all stored tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &Tuple)> + '_ {
        self.live.iter().filter_map(move |&slot| {
            let entry = &self.slots[slot as usize];
            entry
                .tuple
                .as_ref()
                .map(|tuple| (slot, entry.generation, tuple))
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn insert_get_delete_cycle() {
        let mut s = LocalStore::new();
        assert!(s.is_empty());
        let (slot, g) = s.insert(Tuple::single(1.5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(slot, g).unwrap().value(0).unwrap(), 1.5);
        assert!(s.delete(slot, g));
        assert!(s.is_empty());
        assert!(s.get(slot, g).is_none());
        assert!(!s.delete(slot, g), "double delete must fail");
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut s = LocalStore::new();
        let (slot, g0) = s.insert(Tuple::single(1.0));
        s.delete(slot, g0);
        let (slot2, g1) = s.insert(Tuple::single(2.0));
        assert_eq!(slot, slot2, "slot should be reused");
        assert_ne!(g0, g1, "generation must differ");
        // The old handle is stale.
        assert!(s.get(slot, g0).is_none());
        assert_eq!(s.get(slot, g1).unwrap().value(0).unwrap(), 2.0);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = LocalStore::new();
        let (slot, g) = s.insert(Tuple::single(5.0));
        s.get_mut(slot, g).unwrap().values_mut()[0] = 6.0;
        assert_eq!(s.get(slot, g).unwrap().value(0).unwrap(), 6.0);
        assert!(s.get_mut(slot, g.wrapping_add(1)).is_none());
    }

    #[test]
    fn uniform_sampling_covers_all_tuples() {
        let mut s = LocalStore::new();
        for i in 0..10 {
            s.insert(Tuple::single(i as f64));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let (_, _, t) = s.sample_uniform(&mut rng).unwrap();
            counts[t.value(0).unwrap() as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 800 && c < 1200,
                "tuple {i} sampled {c} times (expect ~1000)"
            );
        }
    }

    #[test]
    fn sampling_empty_store_is_none() {
        let s = LocalStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(s.sample_uniform(&mut rng).is_none());
    }

    #[test]
    fn iter_sees_exactly_live_tuples() {
        let mut s = LocalStore::new();
        let (s0, g0) = s.insert(Tuple::single(0.0));
        let (_s1, _g1) = s.insert(Tuple::single(1.0));
        let (_s2, _g2) = s.insert(Tuple::single(2.0));
        s.delete(s0, g0);
        let values: Vec<f64> = s.iter().map(|(_, _, t)| t.value(0).unwrap()).collect();
        assert_eq!(values.len(), 2);
        assert!(values.contains(&1.0) && values.contains(&2.0));
    }

    #[test]
    fn stress_many_insert_delete() {
        let mut s = LocalStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut handles = Vec::new();
        for round in 0..50 {
            for i in 0..20 {
                handles.push(s.insert(Tuple::single((round * 20 + i) as f64)));
            }
            use rand::seq::SliceRandom;
            handles.shuffle(&mut rng);
            for _ in 0..10 {
                if let Some((slot, g)) = handles.pop() {
                    assert!(s.delete(slot, g));
                }
            }
        }
        assert_eq!(s.len(), 50 * 20 - 50 * 10);
        // Every remaining handle resolves.
        for &(slot, g) in &handles {
            assert!(s.get(slot, g).is_some());
        }
    }
}
