//! The horizontally partitioned peer-to-peer database.
//!
//! A single relation `R = {u₁, …, u_N}` whose disjoint fragments live at
//! overlay nodes (paper §II). Fragments appear when a node joins with
//! content and disappear — tuples and all — when it leaves. The struct also
//! exposes *oracle* exact aggregates; the real system can never compute
//! these (that is the whole point of Digest), but the simulator uses them
//! as ground truth to verify precision guarantees.

use crate::error::DbError;
use crate::expr::Expr;
use crate::predicate::Predicate;
use crate::store::LocalStore;
use crate::tuple::{Schema, Tuple, TupleHandle};
use crate::Result;
use digest_net::NodeId;
use rand::Rng;

/// The peer-to-peer database: schema + per-node fragments.
#[derive(Debug, Clone)]
pub struct P2PDatabase {
    schema: Schema,
    /// Fragment per node id (`None` = node unknown or departed).
    fragments: Vec<Option<LocalStore>>,
    total_tuples: usize,
}

impl P2PDatabase {
    /// Creates an empty database over the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            fragments: Vec::new(),
            total_tuples: 0,
        }
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Registers a node (idempotent): the node now holds an (initially
    /// empty) fragment.
    pub fn register_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if idx >= self.fragments.len() {
            self.fragments.resize_with(idx + 1, || None);
        }
        if self.fragments[idx].is_none() {
            self.fragments[idx] = Some(LocalStore::new());
        }
    }

    /// Whether the node currently holds a fragment.
    #[must_use]
    pub fn has_node(&self, node: NodeId) -> bool {
        matches!(self.fragments.get(node.0 as usize), Some(Some(_)))
    }

    /// Removes a node's fragment (the node left), returning the number of
    /// tuples that vanished with it.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownNode`] if the node holds no fragment.
    pub fn remove_node(&mut self, node: NodeId) -> Result<usize> {
        let store = self
            .fragments
            .get_mut(node.0 as usize)
            .and_then(Option::take)
            .ok_or(DbError::UnknownNode(node))?;
        self.total_tuples -= store.len();
        Ok(store.len())
    }

    /// Inserts a tuple at `node`.
    ///
    /// # Errors
    ///
    /// * [`DbError::UnknownNode`] if the node holds no fragment.
    /// * [`DbError::ArityMismatch`] if the tuple does not fit the schema.
    pub fn insert(&mut self, node: NodeId, tuple: Tuple) -> Result<TupleHandle> {
        if tuple.arity() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                got: tuple.arity(),
                expected: self.schema.arity(),
            });
        }
        let store = self.store_mut(node)?;
        let (slot, generation) = store.insert(tuple);
        self.total_tuples += 1;
        Ok(TupleHandle {
            node,
            slot,
            generation,
        })
    }

    /// Deletes the tuple a handle points to; returns whether anything was
    /// deleted (`false` = the handle was already stale).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownNode`] if the node holds no fragment.
    pub fn delete(&mut self, handle: TupleHandle) -> Result<bool> {
        let store = self.store_mut(handle.node)?;
        let deleted = store.delete(handle.slot, handle.generation);
        if deleted {
            self.total_tuples -= 1;
        }
        Ok(deleted)
    }

    /// Reads the tuple behind a handle.
    ///
    /// # Errors
    ///
    /// * [`DbError::UnknownNode`] if the node departed.
    /// * [`DbError::StaleHandle`] if the tuple was deleted.
    pub fn read(&self, handle: TupleHandle) -> Result<&Tuple> {
        let store = self.store(handle.node)?;
        store
            .get(handle.slot, handle.generation)
            .ok_or(DbError::StaleHandle)
    }

    /// Overwrites the attribute values of the tuple behind a handle (an
    /// autonomous local update).
    ///
    /// # Errors
    ///
    /// * [`DbError::UnknownNode`] / [`DbError::StaleHandle`] as for
    ///   [`P2PDatabase::read`].
    /// * [`DbError::ArityMismatch`] if `values` does not fit the schema.
    pub fn update(&mut self, handle: TupleHandle, values: &[f64]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        let store = self.store_mut(handle.node)?;
        let tuple = store
            .get_mut(handle.slot, handle.generation)
            .ok_or(DbError::StaleHandle)?;
        tuple.values_mut().copy_from_slice(values);
        digest_telemetry::registry::DB_UPDATES.inc();
        Ok(())
    }

    /// Content size `m_v` of a node (0 for unknown nodes — a weight
    /// function must be total over `V`).
    #[must_use]
    pub fn content_size(&self, node: NodeId) -> usize {
        self.fragments
            .get(node.0 as usize)
            .and_then(Option::as_ref)
            .map_or(0, LocalStore::len)
    }

    /// Total number of tuples `N` across all fragments.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }

    /// Uniformly samples a tuple from `node`'s local fragment — the local
    /// (second) stage of two-stage sampling.
    #[must_use]
    pub fn sample_local<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        rng: &mut R,
    ) -> Option<(TupleHandle, &Tuple)> {
        let store = self.fragments.get(node.0 as usize)?.as_ref()?;
        let (slot, generation, tuple) = store.sample_uniform(rng)?;
        digest_telemetry::registry::DB_LOCAL_SAMPLES.inc();
        Some((
            TupleHandle {
                node,
                slot,
                generation,
            },
            tuple,
        ))
    }

    /// Iterates over all `(handle, tuple)` pairs (oracle-only: a real peer
    /// cannot enumerate the database).
    pub fn iter(&self) -> impl Iterator<Item = (TupleHandle, &Tuple)> + '_ {
        self.fragments.iter().enumerate().flat_map(|(idx, frag)| {
            let node = NodeId(u32::try_from(idx).unwrap_or(u32::MAX));
            frag.iter().flat_map(move |store| {
                store.iter().map(move |(slot, generation, tuple)| {
                    (
                        TupleHandle {
                            node,
                            slot,
                            generation,
                        },
                        tuple,
                    )
                })
            })
        })
    }

    /// Iterates over `node`'s own fragment in live-slot order (empty for
    /// unknown nodes). Unlike [`P2PDatabase::iter`] this is a legitimate
    /// peer operation — a node enumerating its local fragment — and is
    /// what the sketch sweep estimator folds per-node sketch mass from.
    pub fn iter_node(&self, node: NodeId) -> impl Iterator<Item = &Tuple> + '_ {
        self.fragments
            .get(node.0 as usize)
            .and_then(Option::as_ref)
            .into_iter()
            .flat_map(|store| store.iter().map(|(_, _, tuple)| tuple))
    }

    /// Nodes currently holding fragments.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.fragments
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(idx, _)| NodeId(u32::try_from(idx).unwrap_or(u32::MAX)))
    }

    /// Oracle: exact `AVG(expression)` over the whole relation.
    ///
    /// # Errors
    ///
    /// [`DbError::EmptyRelation`] over an empty relation, or any
    /// expression-evaluation error.
    pub fn exact_avg(&self, expr: &Expr) -> Result<f64> {
        if self.total_tuples == 0 {
            return Err(DbError::EmptyRelation);
        }
        Ok(self.exact_sum(expr)? / self.total_tuples as f64)
    }

    /// Oracle: exact `SUM(expression)` over the whole relation (0 when
    /// empty).
    ///
    /// # Errors
    ///
    /// Any expression-evaluation error.
    pub fn exact_sum(&self, expr: &Expr) -> Result<f64> {
        let mut sum = 0.0;
        for (_, tuple) in self.iter() {
            sum += expr.eval(tuple)?;
        }
        Ok(sum)
    }

    /// Oracle: exact `COUNT(*)` over the whole relation.
    #[must_use]
    pub fn exact_count(&self) -> usize {
        self.total_tuples
    }

    /// Oracle: exact `AVG(expression) WHERE predicate`.
    ///
    /// # Errors
    ///
    /// [`DbError::EmptyRelation`] if no tuple qualifies, or any
    /// expression/predicate evaluation error.
    pub fn exact_avg_where(&self, expr: &Expr, predicate: &Predicate) -> Result<f64> {
        let (sum, count) = self.sum_count_where(expr, predicate)?;
        if count == 0 {
            return Err(DbError::EmptyRelation);
        }
        Ok(sum / count as f64)
    }

    /// Oracle: exact `SUM(expression) WHERE predicate` (0 when nothing
    /// qualifies).
    ///
    /// # Errors
    ///
    /// Any expression/predicate evaluation error.
    pub fn exact_sum_where(&self, expr: &Expr, predicate: &Predicate) -> Result<f64> {
        Ok(self.sum_count_where(expr, predicate)?.0)
    }

    /// Oracle: exact `COUNT(*) WHERE predicate`.
    ///
    /// # Errors
    ///
    /// Any predicate evaluation error.
    pub fn exact_count_where(&self, predicate: &Predicate) -> Result<usize> {
        let mut count = 0;
        for (_, tuple) in self.iter() {
            if predicate.eval(tuple)? {
                count += 1;
            }
        }
        Ok(count)
    }

    fn sum_count_where(&self, expr: &Expr, predicate: &Predicate) -> Result<(f64, usize)> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (_, tuple) in self.iter() {
            if predicate.eval(tuple)? {
                sum += expr.eval(tuple)?;
                count += 1;
            }
        }
        Ok((sum, count))
    }

    fn store(&self, node: NodeId) -> Result<&LocalStore> {
        self.fragments
            .get(node.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(DbError::UnknownNode(node))
    }

    fn store_mut(&mut self, node: NodeId) -> Result<&mut LocalStore> {
        self.fragments
            .get_mut(node.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(DbError::UnknownNode(node))
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db_with_nodes(n: u32) -> P2PDatabase {
        let mut db = P2PDatabase::new(Schema::single("a"));
        for i in 0..n {
            db.register_node(NodeId(i));
        }
        db
    }

    #[test]
    fn register_is_idempotent() {
        let mut db = db_with_nodes(1);
        let h = db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        db.register_node(NodeId(0));
        // Re-registering must not wipe the fragment.
        assert_eq!(db.read(h).unwrap().value(0).unwrap(), 1.0);
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn insert_read_update_delete() {
        let mut db = db_with_nodes(2);
        let h = db.insert(NodeId(1), Tuple::single(10.0)).unwrap();
        assert_eq!(db.read(h).unwrap().value(0).unwrap(), 10.0);
        db.update(h, &[11.0]).unwrap();
        assert_eq!(db.read(h).unwrap().value(0).unwrap(), 11.0);
        assert!(db.delete(h).unwrap());
        assert_eq!(db.read(h).unwrap_err(), DbError::StaleHandle);
        assert!(!db.delete(h).unwrap());
        assert_eq!(db.total_tuples(), 0);
    }

    #[test]
    fn insert_validates_arity_and_node() {
        let mut db = db_with_nodes(1);
        assert!(matches!(
            db.insert(NodeId(0), Tuple::new(vec![1.0, 2.0])),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert(NodeId(7), Tuple::single(1.0)),
            Err(DbError::UnknownNode(_))
        ));
    }

    #[test]
    fn update_validates_arity() {
        let mut db = db_with_nodes(1);
        let h = db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        assert!(matches!(
            db.update(h, &[1.0, 2.0]),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn node_departure_removes_fragment() {
        let mut db = db_with_nodes(2);
        let h0 = db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        db.insert(NodeId(0), Tuple::single(2.0)).unwrap();
        db.insert(NodeId(1), Tuple::single(3.0)).unwrap();
        assert_eq!(db.remove_node(NodeId(0)).unwrap(), 2);
        assert_eq!(db.total_tuples(), 1);
        assert!(!db.has_node(NodeId(0)));
        assert_eq!(db.read(h0).unwrap_err(), DbError::UnknownNode(NodeId(0)));
        assert!(db.remove_node(NodeId(0)).is_err());
    }

    #[test]
    fn content_size_tracks_m_v() {
        let mut db = db_with_nodes(2);
        assert_eq!(db.content_size(NodeId(0)), 0);
        db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        db.insert(NodeId(0), Tuple::single(2.0)).unwrap();
        assert_eq!(db.content_size(NodeId(0)), 2);
        assert_eq!(db.content_size(NodeId(1)), 0);
        assert_eq!(db.content_size(NodeId(42)), 0, "unknown node has size 0");
    }

    #[test]
    fn exact_aggregates() {
        let mut db = db_with_nodes(3);
        for (node, v) in [(0, 1.0), (0, 2.0), (1, 3.0), (2, 6.0)] {
            db.insert(NodeId(node), Tuple::single(v)).unwrap();
        }
        let expr = Expr::first_attr(db.schema());
        assert_eq!(db.exact_count(), 4);
        assert!((db.exact_sum(&expr).unwrap() - 12.0).abs() < 1e-12);
        assert!((db.exact_avg(&expr).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_avg_of_empty_relation_errors() {
        let db = db_with_nodes(1);
        let expr = Expr::first_attr(db.schema());
        assert_eq!(db.exact_avg(&expr).unwrap_err(), DbError::EmptyRelation);
        assert_eq!(db.exact_sum(&expr).unwrap(), 0.0);
    }

    #[test]
    fn local_sampling_is_uniform_within_node() {
        let mut db = db_with_nodes(1);
        for i in 0..5 {
            db.insert(NodeId(0), Tuple::single(i as f64)).unwrap();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            let (_, t) = db.sample_local(NodeId(0), &mut rng).unwrap();
            counts[t.value(0).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "counts = {counts:?}");
        }
    }

    #[test]
    fn sample_local_empty_or_unknown_is_none() {
        let db = db_with_nodes(1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(db.sample_local(NodeId(0), &mut rng).is_none());
        assert!(db.sample_local(NodeId(9), &mut rng).is_none());
    }

    #[test]
    fn iter_enumerates_everything_once() {
        let mut db = db_with_nodes(3);
        let mut expected = Vec::new();
        for (node, v) in [(0u32, 1.0), (1, 2.0), (1, 3.0), (2, 4.0)] {
            db.insert(NodeId(node), Tuple::single(v)).unwrap();
            expected.push(v);
        }
        let mut seen: Vec<f64> = db.iter().map(|(_, t)| t.value(0).unwrap()).collect();
        seen.sort_by(f64::total_cmp);
        assert_eq!(seen, expected);
    }

    #[test]
    fn nodes_lists_fragment_holders() {
        let mut db = db_with_nodes(3);
        db.remove_node(NodeId(1)).unwrap();
        let nodes: Vec<NodeId> = db.nodes().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(2)]);
    }
}
