//! Selection predicates — the `WHERE` clause of the query model.
//!
//! The paper's future-work section (§VIII) calls for "more complex
//! aggregate queries with … arbitrary select … predicates". This module
//! supplies the select half: a boolean predicate over a tuple's
//! attributes, composed from arithmetic comparisons with `AND`/`OR`/`NOT`.
//! Sampling-based evaluation filters sampled tuples through the predicate
//! and estimates aggregates over the qualifying sub-population (see
//! `digest-core`); the measured selectivity scales `SUM`/`COUNT`.

use crate::error::DbError;
use crate::expr::Expr;
use crate::tuple::{Schema, Tuple};
use crate::Result;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` (exact IEEE equality; use range predicates for tolerance)
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    // SQL `=` / `<>` compare exactly by definition; tolerance would
    // change predicate semantics.
    #[allow(clippy::float_cmp)]
    fn apply(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// A boolean predicate over tuple attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the default `WHERE` clause).
    True,
    /// `lhs op rhs` over two arithmetic expressions.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left expression.
        lhs: Expr,
        /// Right expression.
        rhs: Expr,
    },
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds a comparison predicate.
    #[must_use]
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Predicate {
        Predicate::Cmp { op, lhs, rhs }
    }

    /// Conjunction.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Whether this is the trivial always-true predicate (lets the query
    /// engine skip the filtering path entirely).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// Evaluates the predicate against a tuple.
    ///
    /// # Errors
    ///
    /// Any expression-evaluation error (e.g. attribute out of range).
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { op, lhs, rhs } => Ok(op.apply(lhs.eval(tuple)?, rhs.eval(tuple)?)),
            Predicate::And(a, b) => Ok(a.eval(tuple)? && b.eval(tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(tuple)? || b.eval(tuple)?),
            Predicate::Not(p) => Ok(!p.eval(tuple)?),
        }
    }

    /// Parses a predicate against a schema.
    ///
    /// Grammar (keywords case-insensitive):
    ///
    /// ```text
    /// pred    := term ('or' term)*
    /// term    := factor ('and' factor)*
    /// factor  := 'not' factor | '(' pred ')' | comparison | 'true' | 'false'
    /// comparison := expr ('<'|'<='|'>'|'>='|'='|'!=') expr
    /// ```
    ///
    /// # Errors
    ///
    /// [`DbError::ParseError`] on malformed input;
    /// [`DbError::UnknownAttribute`] for names outside the schema.
    pub fn parse(text: &str, schema: &Schema) -> Result<Predicate> {
        let mut p = PredParser {
            text,
            pos: 0,
            schema,
        };
        p.skip_ws();
        let pred = p.pred()?;
        p.skip_ws();
        if p.pos != p.text.len() {
            return Err(DbError::ParseError {
                position: p.pos,
                message: "unexpected trailing input".into(),
            });
        }
        Ok(pred)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::Cmp { op, lhs, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(p) => write!(f, "not ({p})"),
        }
    }
}

struct PredParser<'a> {
    text: &'a str,
    pos: usize,
    schema: &'a Schema,
}

impl PredParser<'_> {
    fn skip_ws(&mut self) {
        let rest = &self.text.as_bytes()[self.pos..];
        let skipped = rest.iter().take_while(|c| c.is_ascii_whitespace()).count();
        self.pos += skipped;
    }

    /// Consumes a case-insensitive keyword followed by a non-word
    /// boundary.
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let boundary = rest.as_bytes().get(kw.len());
            let ok = !matches!(boundary, Some(c) if c.is_ascii_alphanumeric() || *c == b'_');
            if ok {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn pred(&mut self) -> Result<Predicate> {
        let mut lhs = self.term()?;
        while self.keyword("or") {
            lhs = lhs.or(self.term()?);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Predicate> {
        let mut lhs = self.factor()?;
        while self.keyword("and") {
            lhs = lhs.and(self.factor()?);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Predicate> {
        if self.keyword("not") {
            return Ok(self.factor()?.not());
        }
        if self.keyword("true") {
            return Ok(Predicate::True);
        }
        if self.keyword("false") {
            return Ok(Predicate::True.not());
        }
        self.skip_ws();
        if self.text.as_bytes().get(self.pos) == Some(&b'(') {
            // Ambiguity: '(' may open a boolean group or an arithmetic
            // expression. Try the boolean parse; fall back to comparison.
            let saved = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.pred() {
                self.skip_ws();
                if self.text.as_bytes().get(self.pos) == Some(&b')') {
                    self.pos += 1;
                    return Ok(inner);
                }
            }
            self.pos = saved;
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let lhs = self.expr_until_cmp()?;
        self.skip_ws();
        let rest = &self.text.as_bytes()[self.pos..];
        let (op, len) = match rest {
            [b'<', b'=', ..] => (CmpOp::Le, 2),
            [b'>', b'=', ..] => (CmpOp::Ge, 2),
            [b'!', b'=', ..] => (CmpOp::Ne, 2),
            [b'<', b'>', ..] => (CmpOp::Ne, 2),
            [b'<', ..] => (CmpOp::Lt, 1),
            [b'>', ..] => (CmpOp::Gt, 1),
            [b'=', ..] => (CmpOp::Eq, 1),
            _ => {
                return Err(DbError::ParseError {
                    position: self.pos,
                    message: "expected comparison operator".into(),
                })
            }
        };
        self.pos += len;
        let rhs = self.expr_until_bool()?;
        Ok(Predicate::cmp(op, lhs, rhs))
    }

    /// Parses an arithmetic expression ending at a comparison operator.
    fn expr_until_cmp(&mut self) -> Result<Expr> {
        self.slice_expr(&["<", ">", "=", "!="])
    }

    /// Parses an arithmetic expression ending at a boolean keyword,
    /// closing paren, or end of input.
    fn expr_until_bool(&mut self) -> Result<Expr> {
        self.slice_expr(&[])
    }

    /// Finds the extent of the next arithmetic expression and delegates to
    /// [`Expr::parse`]. The extent ends at the first top-level comparison
    /// symbol (when `stops` includes them), boolean keyword, or
    /// unbalanced `)`.
    fn slice_expr(&mut self, stops: &[&str]) -> Result<Expr> {
        self.skip_ws();
        let bytes = self.text.as_bytes();
        let start = self.pos;
        let mut depth = 0usize;
        let mut i = start;
        while i < bytes.len() {
            let c = bytes[i];
            match c {
                b'(' => depth += 1,
                b')' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b'<' | b'>' | b'=' | b'!' if depth == 0 && !stops.is_empty() => break,
                _ if depth == 0 && c.is_ascii_alphabetic() => {
                    // Boundary at boolean keywords.
                    let rest = &self.text[i..];
                    let word_len = rest
                        .bytes()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == b'_')
                        .count();
                    let word = &rest[..word_len];
                    if word.eq_ignore_ascii_case("and") || word.eq_ignore_ascii_case("or") {
                        break;
                    }
                    i += word_len;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        let slice = self.text[start..i].trim_end();
        if slice.is_empty() {
            return Err(DbError::ParseError {
                position: start,
                message: "expected arithmetic expression".into(),
            });
        }
        let expr = Expr::parse(slice, self.schema).map_err(|e| match e {
            DbError::ParseError { position, message } => DbError::ParseError {
                position: start + position,
                message,
            },
            other => other,
        })?;
        self.pos = start + slice.len();
        Ok(expr)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["cpu", "memory", "storage"])
    }

    fn tuple(cpu: f64, memory: f64, storage: f64) -> Tuple {
        Tuple::new(vec![cpu, memory, storage])
    }

    #[test]
    fn trivial_predicate() {
        assert!(Predicate::True.eval(&tuple(0.0, 0.0, 0.0)).unwrap());
        assert!(Predicate::True.is_trivial());
        assert!(!Predicate::True.not().is_trivial());
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let t = tuple(2.0, 8.0, 100.0);
        for (text, want) in [
            ("cpu < 3", true),
            ("cpu > 3", false),
            ("cpu <= 2", true),
            ("cpu >= 2.5", false),
            ("memory = 8", true),
            ("memory != 8", false),
            ("memory <> 9", true),
        ] {
            let p = Predicate::parse(text, &s).unwrap();
            assert_eq!(p.eval(&t).unwrap(), want, "{text}");
        }
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let t = tuple(2.0, 8.0, 100.0);
        for (text, want) in [
            ("cpu < 3 and memory > 4", true),
            ("cpu < 3 and memory > 9", false),
            ("cpu > 3 or storage >= 100", true),
            ("not cpu > 3", true),
            ("not (cpu < 3 and storage = 100)", false),
            ("cpu < 1 or cpu > 1 and memory = 8", true), // and binds tighter
        ] {
            let p = Predicate::parse(text, &s).unwrap();
            assert_eq!(p.eval(&t).unwrap(), want, "{text}");
        }
    }

    #[test]
    fn arithmetic_inside_predicates() {
        let s = schema();
        let t = tuple(2.0, 8.0, 100.0);
        let p = Predicate::parse("memory + storage > 100", &s).unwrap();
        assert!(p.eval(&t).unwrap());
        let p = Predicate::parse("(memory + storage) / 2 <= 54", &s).unwrap();
        assert!(p.eval(&t).unwrap());
        let p = Predicate::parse("cpu * cpu = 4", &s).unwrap();
        assert!(p.eval(&t).unwrap());
    }

    #[test]
    fn keyword_case_and_boundaries() {
        let s = Schema::new(["android", "orbit", "nothing"]);
        let t = Tuple::new(vec![1.0, 2.0, 3.0]);
        // Attribute names containing keyword prefixes must not confuse the
        // tokenizer.
        let p = Predicate::parse("android > 0 AND orbit < 5", &s).unwrap();
        assert!(p.eval(&t).unwrap());
        let p = Predicate::parse("nothing = 3 OR android = 99", &s).unwrap();
        assert!(p.eval(&t).unwrap());
        let p = Predicate::parse("NOT nothing = 3", &s).unwrap();
        assert!(!p.eval(&t).unwrap());
    }

    #[test]
    fn parse_errors() {
        let s = schema();
        assert!(Predicate::parse("", &s).is_err());
        assert!(Predicate::parse("cpu", &s).is_err());
        assert!(Predicate::parse("cpu <", &s).is_err());
        assert!(Predicate::parse("cpu < 3 and", &s).is_err());
        assert!(Predicate::parse("cpu < 3 extra", &s).is_err());
        assert!(Predicate::parse("disk < 3", &s).is_err());
        assert!(Predicate::parse("(cpu < 3", &s).is_err());
    }

    #[test]
    fn display_round_trips() {
        let s = schema();
        let p = Predicate::parse("not (cpu < 3 and memory > 4) or storage = 0", &s).unwrap();
        let shown = p.to_string();
        let reparsed = Predicate::parse(&shown, &s).unwrap();
        for values in [(2.0, 8.0, 100.0), (5.0, 2.0, 0.0), (1.0, 1.0, 1.0)] {
            let t = tuple(values.0, values.1, values.2);
            assert_eq!(p.eval(&t).unwrap(), reparsed.eval(&t).unwrap());
        }
    }

    #[test]
    fn eval_propagates_expression_errors() {
        let s = schema();
        let p = Predicate::parse("storage > 5", &s).unwrap();
        let narrow = Tuple::single(1.0);
        assert!(p.eval(&narrow).is_err());
    }
}
