//! Error type for the database crate.

use digest_net::NodeId;
use std::fmt;

/// Errors produced by the peer-to-peer database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The referenced node holds no fragment (unknown or departed).
    UnknownNode(NodeId),
    /// A tuple handle no longer resolves (deleted tuple or departed node).
    StaleHandle,
    /// An expression referenced an attribute the schema does not define.
    UnknownAttribute(String),
    /// An expression referenced an attribute index out of range.
    AttributeIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// A tuple's arity did not match the schema.
    ArityMismatch {
        /// The tuple's arity.
        got: usize,
        /// The schema's arity.
        expected: usize,
    },
    /// Expression text failed to parse.
    ParseError {
        /// Position (byte offset) of the failure.
        position: usize,
        /// Description of what was expected.
        message: String,
    },
    /// An aggregate over an empty relation (AVG is undefined).
    EmptyRelation,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownNode(id) => write!(f, "node {id} holds no database fragment"),
            DbError::StaleHandle => write!(f, "tuple handle is stale (tuple deleted or node left)"),
            DbError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DbError::AttributeIndexOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            DbError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            DbError::ParseError { position, message } => {
                write!(f, "expression parse error at byte {position}: {message}")
            }
            DbError::EmptyRelation => write!(f, "aggregate over empty relation is undefined"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::UnknownNode(NodeId(3)).to_string().contains("n3"));
        assert!(DbError::UnknownAttribute("memory".into())
            .to_string()
            .contains("memory"));
        let e = DbError::ParseError {
            position: 4,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 4"));
    }
}
