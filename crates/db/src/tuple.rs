//! Tuples, schemas, and stable tuple handles.
//!
//! The relation is single-table with numeric attributes (the paper's
//! datasets carry one attribute — temperature or available memory — but
//! the query model allows arbitrary arithmetic over several, e.g.
//! `SUM(memory + storage)`), so attribute values are `f64`.
//!
//! A [`TupleHandle`] names a tuple by `(node, slot, generation)`. Slots are
//! reused after deletion, but the generation counter increments, so a
//! retained sample can detect that "its" tuple was deleted — the trigger
//! for forced replacement in repeated sampling (paper §IV-B2a).

use crate::error::DbError;
use crate::Result;
use digest_net::NodeId;
use std::fmt;
use std::sync::Arc;

/// The attribute schema of the relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Arc<[String]>,
}

impl Schema {
    /// Creates a schema from attribute names.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        Self {
            names: names.into(),
        }
    }

    /// A single-attribute schema (the shape of both paper datasets).
    #[must_use]
    pub fn single(name: &str) -> Self {
        Self::new([name])
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Index of an attribute by name.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownAttribute`] if absent.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::UnknownAttribute(name.to_owned()))
    }

    /// Attribute name at `index`, if in range.
    #[must_use]
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// All attribute names.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A tuple: one `f64` per schema attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<f64>,
}

impl Tuple {
    /// Creates a tuple from attribute values.
    #[must_use]
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// A single-attribute tuple.
    #[must_use]
    pub fn single(value: f64) -> Self {
        Self {
            values: vec![value],
        }
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `index`.
    ///
    /// # Errors
    ///
    /// [`DbError::AttributeIndexOutOfRange`] if out of range.
    pub fn value(&self, index: usize) -> Result<f64> {
        self.values
            .get(index)
            .copied()
            .ok_or(DbError::AttributeIndexOutOfRange {
                index,
                arity: self.values.len(),
            })
    }

    /// All attribute values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to attribute values (local autonomous updates).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

impl From<f64> for Tuple {
    fn from(v: f64) -> Self {
        Tuple::single(v)
    }
}

/// Stable reference to a tuple: node, local slot, and the slot's
/// generation at the time the handle was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleHandle {
    /// The node storing the tuple.
    pub node: NodeId,
    /// Slot index within the node's local store.
    pub slot: u32,
    /// Generation of the slot when the handle was created; a mismatch on
    /// revisit means the tuple was deleted (and the slot possibly reused).
    pub generation: u32,
}

impl fmt::Display for TupleHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@g{}", self.node, self.slot, self.generation)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["cpu", "memory", "storage", "bandwidth"]);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("memory").unwrap(), 1);
        assert_eq!(s.name(2), Some("storage"));
        assert_eq!(s.name(9), None);
        assert_eq!(
            s.index_of("disk").unwrap_err(),
            DbError::UnknownAttribute("disk".into())
        );
    }

    #[test]
    fn single_schema() {
        let s = Schema::single("temperature");
        assert_eq!(s.arity(), 1);
        assert_eq!(s.index_of("temperature").unwrap(), 0);
    }

    #[test]
    fn tuple_access() {
        let t = Tuple::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(1).unwrap(), 2.0);
        assert_eq!(
            t.value(3).unwrap_err(),
            DbError::AttributeIndexOutOfRange { index: 3, arity: 3 }
        );
    }

    #[test]
    fn tuple_from_f64() {
        let t: Tuple = 7.5.into();
        assert_eq!(t.values(), &[7.5]);
    }

    #[test]
    fn tuple_mutation() {
        let mut t = Tuple::single(1.0);
        t.values_mut()[0] = 2.0;
        assert_eq!(t.value(0).unwrap(), 2.0);
    }

    #[test]
    fn handle_display() {
        let h = TupleHandle {
            node: NodeId(4),
            slot: 17,
            generation: 2,
        };
        assert_eq!(h.to_string(), "n4#17@g2");
    }

    #[test]
    fn schema_clone_is_cheap_and_equal() {
        let s = Schema::new(["a", "b"]);
        let s2 = s.clone();
        assert_eq!(s, s2);
    }
}
