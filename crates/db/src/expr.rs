//! Arithmetic expressions over the relation's attributes.
//!
//! The query model is `SELECT op(expression) FROM R` where `expression` is
//! "an arithmetic expression involving the attributes of R" (paper §II) —
//! e.g. `SUM(memory + storage)` in the peer-to-peer computing example.
//! This module provides the expression AST, an evaluator against a tuple,
//! and a small recursive-descent parser (`+ − * /`, unary minus,
//! parentheses, numeric literals, attribute names) so examples can write
//! queries as text.

use crate::error::DbError;
use crate::tuple::{Schema, Tuple};
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// A binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (IEEE semantics; `x/0 = ±inf`).
    Div,
}

impl BinOp {
    fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => l / r,
        }
    }

    fn symbol(self) -> char {
        match self {
            BinOp::Add => '+',
            BinOp::Sub => '-',
            BinOp::Mul => '*',
            BinOp::Div => '/',
        }
    }
}

/// An arithmetic expression over tuple attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The attribute at the given schema index.
    Attr {
        /// Schema index.
        index: usize,
        /// Attribute name, kept for display.
        name: Arc<str>,
    },
    /// A numeric literal.
    Const(f64),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// An attribute reference resolved against a schema.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownAttribute`] if the name is not in the schema.
    pub fn attr(schema: &Schema, name: &str) -> Result<Expr> {
        let index = schema.index_of(name)?;
        Ok(Expr::Attr {
            index,
            name: name.into(),
        })
    }

    /// The attribute at schema index 0 — the common single-attribute case.
    #[must_use]
    pub fn first_attr(schema: &Schema) -> Expr {
        let name = schema.name(0).unwrap_or("a0");
        Expr::Attr {
            index: 0,
            name: name.into(),
        }
    }

    /// A numeric constant.
    #[must_use]
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Builds a binary node.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Evaluates the expression against a tuple.
    ///
    /// # Errors
    ///
    /// [`DbError::AttributeIndexOutOfRange`] if the tuple is narrower than
    /// the expression expects.
    pub fn eval(&self, tuple: &Tuple) -> Result<f64> {
        match self {
            Expr::Attr { index, .. } => tuple.value(*index),
            Expr::Const(v) => Ok(*v),
            Expr::Neg(inner) => Ok(-inner.eval(tuple)?),
            Expr::Binary { op, lhs, rhs } => Ok(op.apply(lhs.eval(tuple)?, rhs.eval(tuple)?)),
        }
    }

    /// Parses an expression against a schema.
    ///
    /// Grammar: `expr := term (('+'|'-') term)*`,
    /// `term := factor (('*'|'/') factor)*`,
    /// `factor := '-' factor | number | attribute | '(' expr ')'`.
    ///
    /// # Errors
    ///
    /// [`DbError::ParseError`] on malformed input;
    /// [`DbError::UnknownAttribute`] for names outside the schema.
    pub fn parse(text: &str, schema: &Schema) -> Result<Expr> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            schema,
        };
        p.skip_ws();
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DbError::ParseError {
                position: p.pos,
                message: "unexpected trailing input".into(),
            });
        }
        Ok(e)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr { name, .. } => write!(f, "{name}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

macro_rules! impl_expr_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self, rhs)
            }
        }
    };
}

impl_expr_op!(Add, add, BinOp::Add);
impl_expr_op!(Sub, sub, BinOp::Sub);
impl_expr_op!(Mul, mul, BinOp::Mul);
impl_expr_op!(Div, div, BinOp::Div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    schema: &'a Schema,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    lhs = Expr::binary(BinOp::Add, lhs, self.term()?);
                }
                Some(b'-') => {
                    self.pos += 1;
                    lhs = Expr::binary(BinOp::Sub, lhs, self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    lhs = Expr::binary(BinOp::Mul, lhs, self.factor()?);
                }
                Some(b'/') => {
                    self.pos += 1;
                    lhs = Expr::binary(BinOp::Div, lhs, self.factor()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        self.skip_ws();
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Some(b'(') => {
                self.pos += 1;
                let inner = self.expr()?;
                self.skip_ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    Ok(inner)
                } else {
                    Err(DbError::ParseError {
                        position: self.pos,
                        message: "expected ')'".into(),
                    })
                }
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.attribute(),
            _ => Err(DbError::ParseError {
                position: self.pos,
                message: "expected number, attribute, '(' or '-'".into(),
            }),
        }
    }

    fn number(&mut self) -> Result<Expr> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E')
        {
            self.pos += 1;
            // Allow exponent signs directly after e/E.
            if matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                && matches!(self.peek(), Some(b'+' | b'-'))
            {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| DbError::ParseError {
                position: start,
                message: "non-UTF-8 bytes in numeric literal".into(),
            })?;
        text.parse::<f64>()
            .map(Expr::Const)
            .map_err(|_| DbError::ParseError {
                position: start,
                message: format!("invalid numeric literal `{text}`"),
            })
    }

    fn attribute(&mut self) -> Result<Expr> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let name =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| DbError::ParseError {
                position: start,
                message: "non-UTF-8 bytes in attribute name".into(),
            })?;
        Expr::attr(self.schema, name)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["cpu", "memory", "storage", "bandwidth"])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![2.0, 8.0, 100.0, 1.5])
    }

    #[test]
    fn eval_attribute_and_constant() {
        let s = schema();
        let e = Expr::attr(&s, "memory").unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), 8.0);
        assert_eq!(Expr::constant(3.5).eval(&tuple()).unwrap(), 3.5);
    }

    #[test]
    fn eval_composite() {
        let s = schema();
        let e = Expr::attr(&s, "memory").unwrap() + Expr::attr(&s, "storage").unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), 108.0);
    }

    #[test]
    fn parse_paper_example() {
        // SELECT SUM(memory + storage) FROM R — the expression part.
        let e = Expr::parse("memory + storage", &schema()).unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), 108.0);
    }

    #[test]
    fn parse_precedence() {
        let s = schema();
        let e = Expr::parse("cpu + memory * 2", &s).unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), 18.0);
        let e = Expr::parse("(cpu + memory) * 2", &s).unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), 20.0);
    }

    #[test]
    fn parse_unary_minus_and_division() {
        let s = schema();
        let e = Expr::parse("-memory / 4", &s).unwrap();
        assert_eq!(e.eval(&tuple()).unwrap(), -2.0);
        let e = Expr::parse("storage / (cpu - 2)", &s).unwrap();
        assert!(e.eval(&tuple()).unwrap().is_infinite());
    }

    #[test]
    fn parse_numeric_forms() {
        let s = schema();
        for (text, want) in [
            ("1.5", 1.5),
            ("2e3", 2000.0),
            ("1.5e-2", 0.015),
            (".5", 0.5),
        ] {
            let e = Expr::parse(text, &s).unwrap();
            assert_eq!(e.eval(&tuple()).unwrap(), want, "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let s = schema();
        assert!(matches!(
            Expr::parse("", &s),
            Err(DbError::ParseError { .. })
        ));
        assert!(matches!(
            Expr::parse("memory +", &s),
            Err(DbError::ParseError { .. })
        ));
        assert!(matches!(
            Expr::parse("(memory", &s),
            Err(DbError::ParseError { .. })
        ));
        assert!(matches!(
            Expr::parse("memory storage", &s),
            Err(DbError::ParseError { .. })
        ));
        assert!(matches!(
            Expr::parse("disk + 1", &s),
            Err(DbError::UnknownAttribute(_))
        ));
        assert!(matches!(
            Expr::parse("1..2", &s),
            Err(DbError::ParseError { .. })
        ));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let s = schema();
        let e = Expr::parse("cpu + memory * (storage - 2) / bandwidth", &s).unwrap();
        let shown = e.to_string();
        let reparsed = Expr::parse(&shown, &s).unwrap();
        assert_eq!(reparsed.eval(&tuple()).unwrap(), e.eval(&tuple()).unwrap());
    }

    #[test]
    fn eval_detects_narrow_tuple() {
        let s = schema();
        let e = Expr::attr(&s, "bandwidth").unwrap();
        let narrow = Tuple::single(1.0);
        assert!(matches!(
            e.eval(&narrow),
            Err(DbError::AttributeIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn first_attr_works_for_single_schema() {
        let s = Schema::single("temperature");
        let e = Expr::first_attr(&s);
        assert_eq!(e.eval(&Tuple::single(72.5)).unwrap(), 72.5);
        assert_eq!(e.to_string(), "temperature");
    }
}
