//! Property-based tests of the partitioned database and local stores.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_db::{Expr, LocalStore, P2PDatabase, Schema, Tuple, TupleHandle};
use digest_net::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, f64),
    DeleteNth(usize),
    UpdateNth(usize, f64),
    RemoveNode(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8, -1e6f64..1e6).prop_map(|(n, v)| Op::Insert(n, v)),
        (0usize..256).prop_map(Op::DeleteNth),
        (0usize..256, -1e6f64..1e6).prop_map(|(i, v)| Op::UpdateNth(i, v)),
        (0u32..8).prop_map(Op::RemoveNode),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn database_counts_stay_consistent(ops in prop::collection::vec(op_strategy(), 0..300)) {
        let mut db = P2PDatabase::new(Schema::single("a"));
        for i in 0..8u32 {
            db.register_node(NodeId(i));
        }
        let mut live: Vec<TupleHandle> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(node, v) => {
                    if db.has_node(NodeId(node)) {
                        live.push(db.insert(NodeId(node), Tuple::single(v)).unwrap());
                    }
                }
                Op::DeleteNth(i) => {
                    if !live.is_empty() {
                        let h = live.swap_remove(i % live.len());
                        // May already be gone via RemoveNode.
                        let _ = db.delete(h);
                    }
                }
                Op::UpdateNth(i, v) => {
                    if !live.is_empty() {
                        let h = live[i % live.len()];
                        let _ = db.update(h, &[v]);
                    }
                }
                Op::RemoveNode(node) => {
                    if db.has_node(NodeId(node)) {
                        db.remove_node(NodeId(node)).unwrap();
                        live.retain(|h| h.node != NodeId(node));
                        db.register_node(NodeId(node)); // node re-joins empty
                    }
                }
            }
            // Invariant: total == sum of fragment sizes == iterator length.
            let frag_sum: usize = db.nodes().map(|n| db.content_size(n)).sum();
            prop_assert_eq!(db.total_tuples(), frag_sum);
            prop_assert_eq!(db.total_tuples(), db.iter().count());
        }
        // Every handle we believe is live resolves; none is double-counted.
        for h in &live {
            prop_assert!(db.read(*h).is_ok());
        }
        prop_assert!(live.len() <= db.total_tuples());
    }

    #[test]
    fn store_slot_generations_prevent_aba(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut store = LocalStore::new();
        let mut stale: Vec<(u32, u32)> = Vec::new();
        for &v in &values {
            let (slot, generation) = store.insert(Tuple::single(v));
            prop_assert!(store.delete(slot, generation));
            stale.push((slot, generation));
            // Refill (likely reusing the slot).
            let _ = store.insert(Tuple::single(v + 1.0));
        }
        // No stale handle ever resolves, even though slots were refilled.
        for (slot, generation) in stale {
            prop_assert!(store.get(slot, generation).is_none());
        }
    }

    #[test]
    fn exact_aggregates_match_direct_computation(
        values in prop::collection::vec(-1e4f64..1e4, 1..100),
    ) {
        let mut db = P2PDatabase::new(Schema::single("a"));
        for i in 0..4u32 {
            db.register_node(NodeId(i));
        }
        for (i, &v) in values.iter().enumerate() {
            db.insert(NodeId((i % 4) as u32), Tuple::single(v)).unwrap();
        }
        let expr = Expr::first_attr(db.schema());
        let sum: f64 = values.iter().sum();
        let avg = sum / values.len() as f64;
        prop_assert_eq!(db.exact_count(), values.len());
        prop_assert!((db.exact_sum(&expr).unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        prop_assert!((db.exact_avg(&expr).unwrap() - avg).abs() < 1e-6 * (1.0 + avg.abs()));
    }

    #[test]
    fn expression_parser_never_panics(text in "[a-z0-9+\\-*/(). ]{0,40}") {
        let schema = Schema::new(["a", "b", "cpu"]);
        // Must return Ok or Err — never panic.
        let _ = Expr::parse(&text, &schema);
    }

    #[test]
    fn parsed_expressions_evaluate_deterministically(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
    ) {
        let schema = Schema::new(["a", "b"]);
        let expr = Expr::parse("(a + b) * 2 - a / 4", &schema).unwrap();
        let t = Tuple::new(vec![a, b]);
        let expected = (a + b) * 2.0 - a / 4.0;
        prop_assert!((expr.eval(&t).unwrap() - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    }
}
