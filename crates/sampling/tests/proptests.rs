//! Property-based tests of the Metropolis machinery: for *any* connected
//! topology and *any* positive weight function, the forwarding matrix must
//! be stochastic, lazy, and in detailed balance with the target.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_net::{topology, Graph, NodeId};
use digest_sampling::{mixing, MetropolisWalk, SamplingConfig, SamplingOperator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arbitrary_graph(seed: u64, n: usize, flavor: u8) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match flavor % 4 {
        0 => topology::barabasi_albert(n.max(4), 2, &mut rng).unwrap(),
        1 => topology::erdos_renyi(n.max(2), 0.2, &mut rng).unwrap(),
        2 => topology::ring(n.max(3)).unwrap(),
        _ => topology::star(n.max(2)).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transition_matrix_is_stochastic_lazy_and_balanced(
        seed in 0u64..10_000,
        n in 4usize..40,
        flavor in 0u8..4,
        wseed in 1u64..1000,
    ) {
        let g = arbitrary_graph(seed, n, flavor);
        // Arbitrary positive weights derived from a hash of the node id.
        let w = move |v: NodeId| {
            let h = (u64::from(v.0) + 1).wrapping_mul(wseed).wrapping_mul(2654435761);
            ((h % 97) + 1) as f64
        };
        let (p, nodes, target) = mixing::transition_matrix(&g, &w).unwrap();
        let m = nodes.len();
        for i in 0..m {
            let row: f64 = (0..m).map(|j| p[(i, j)]).sum();
            prop_assert!((row - 1.0).abs() < 1e-12, "row {i} sums to {row}");
            prop_assert!(p[(i, i)] >= 0.5 - 1e-12, "laziness violated at {i}");
            for j in 0..m {
                prop_assert!(p[(i, j)] >= -1e-15);
                // Detailed balance: π_i P_ij = π_j P_ji.
                let lhs = target.prob(i) * p[(i, j)];
                let rhs = target.prob(j) * p[(j, i)];
                prop_assert!((lhs - rhs).abs() < 1e-12, "balance broken at ({i},{j})");
            }
        }
    }

    #[test]
    fn walk_stays_on_live_nodes_and_counts_messages(
        seed in 0u64..10_000,
        n in 4usize..40,
        flavor in 0u8..4,
        steps in 1u64..200,
    ) {
        let g = arbitrary_graph(seed, n, flavor);
        let w = |_: NodeId| 1.0;
        let origin = g.nodes().next().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let mut walk = MetropolisWalk::new(&g, origin).unwrap();
        let mut moves = 0u64;
        for _ in 0..steps {
            if walk.step(&g, &w, &mut rng).unwrap() {
                moves += 1;
            }
            prop_assert!(g.contains(walk.current()));
        }
        prop_assert_eq!(walk.messages(), moves);
        prop_assert_eq!(walk.steps(), steps);
        prop_assert!(moves <= steps);
    }

    #[test]
    fn operator_pool_is_bounded_by_occasion_width(
        batch in 1usize..20,
        occasions in 1usize..6,
    ) {
        let g = topology::complete(6).unwrap();
        let w = |_: NodeId| 1.0;
        let mut op = SamplingOperator::new(SamplingConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let origin = g.nodes().next().unwrap();
        for _ in 0..occasions {
            op.begin_occasion();
            for _ in 0..batch {
                op.sample_node(&g, &w, origin, &mut rng).unwrap();
            }
        }
        prop_assert_eq!(op.pool_size(), batch, "pool = widest occasion");
        prop_assert_eq!(op.samples_drawn(), (batch * occasions) as u64);
    }
}
