//! Capture–recapture estimation of network and relation size.
//!
//! `AVG` needs no knowledge of the relation size `N`, but `SUM = N · AVG`
//! and `COUNT = N` do — and in an unstructured overlay nobody knows `N` or
//! even the node count `r` (paper §II: "set sizes r and q are variable and
//! unknown a priori"). The classic decentralised fix is the birthday
//! paradox: draw `k` uniform node samples with the sampling operator and
//! count pairwise collisions `C`; since `E[C] = k(k−1)/(2r)`,
//! `r̂ = k(k−1)/(2C)`. Scaling by the sampled nodes' mean content size
//! gives `N̂ = r̂ · mean(m_v)` — and with node samples drawn ∝ m_v the same
//! machinery estimates `N` directly.

use crate::error::SamplingError;
use crate::Result;
use digest_net::NodeId;
use std::collections::BTreeMap;

/// Accumulates uniform node samples and derives size estimates for the
/// unknown `r` and `N` of paper §II (needed by `SUM`/`COUNT`).
#[derive(Debug, Clone, Default)]
pub struct SizeEstimator {
    /// Occurrence count per sampled node (ordered so iteration — and any
    /// derived statistic — is deterministic).
    seen: BTreeMap<NodeId, u32>,
    /// Total samples.
    k: u64,
    /// Sum of content sizes over all samples (with multiplicity).
    content_sum: f64,
}

impl SizeEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one uniform node sample together with the node's reported
    /// content size `m_v`.
    pub fn add_sample(&mut self, node: NodeId, content_size: usize) {
        *self.seen.entry(node).or_insert(0) += 1;
        self.k += 1;
        self.content_sum += content_size as f64;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.k
    }

    /// Number of *distinct* nodes seen.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Number of pairwise collisions `C = Σ_v c_v(c_v−1)/2`.
    #[must_use]
    pub fn collisions(&self) -> u64 {
        self.seen
            .values()
            .map(|&c| u64::from(c) * u64::from(c.saturating_sub(1)) / 2)
            .sum()
    }

    /// Capture–recapture estimate of the node count
    /// `r̂ = k(k−1) / (2C)`.
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidConfig`] until at least one collision has
    /// been observed (the estimator is undefined; callers should keep
    /// sampling — by the birthday bound, `k ≈ 1.2√r` samples suffice in
    /// expectation).
    pub fn estimate_node_count(&self) -> Result<f64> {
        let c = self.collisions();
        if c == 0 {
            return Err(SamplingError::InvalidConfig {
                reason: "no collisions observed yet; draw more samples",
            });
        }
        Ok(self.k as f64 * (self.k as f64 - 1.0) / (2.0 * c as f64))
    }

    /// Estimate of the total tuple count `N̂ = r̂ · mean(m_v)`.
    ///
    /// # Errors
    ///
    /// As for [`SizeEstimator::estimate_node_count`].
    pub fn estimate_tuple_count(&self) -> Result<f64> {
        let r = self.estimate_node_count()?;
        if self.k == 0 {
            return Err(SamplingError::InvalidConfig {
                reason: "no samples",
            });
        }
        Ok(r * self.content_sum / self.k as f64)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn no_collisions_is_an_error() {
        let mut e = SizeEstimator::new();
        e.add_sample(NodeId(0), 5);
        e.add_sample(NodeId(1), 5);
        assert_eq!(e.collisions(), 0);
        assert!(e.estimate_node_count().is_err());
    }

    #[test]
    fn counts_collisions_correctly() {
        let mut e = SizeEstimator::new();
        for _ in 0..3 {
            e.add_sample(NodeId(7), 1);
        }
        e.add_sample(NodeId(8), 1);
        // c_7 = 3 → 3 collisions; c_8 = 1 → 0.
        assert_eq!(e.collisions(), 3);
        assert_eq!(e.distinct(), 2);
        assert_eq!(e.samples(), 4);
    }

    #[test]
    fn estimates_node_count_on_uniform_draws() {
        // True r = 500; draw 400 uniform samples repeatedly and average.
        let r_true = 500u32;
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut estimates = Vec::new();
        for _ in 0..30 {
            let mut e = SizeEstimator::new();
            for _ in 0..400 {
                e.add_sample(NodeId(rng.gen_range(0..r_true)), 10);
            }
            if let Ok(r) = e.estimate_node_count() {
                estimates.push(r);
            }
        }
        assert!(!estimates.is_empty());
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!((mean - 500.0).abs() < 75.0, "mean r̂ = {mean}");
    }

    #[test]
    fn estimates_tuple_count_with_heterogeneous_content() {
        // r = 200 nodes; node v holds (v % 10) + 1 tuples → N = 200·5.5.
        let r_true = 200u32;
        let n_true = (0..r_true).map(|v| (v % 10) as f64 + 1.0).sum::<f64>();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut estimates = Vec::new();
        for _ in 0..40 {
            let mut e = SizeEstimator::new();
            for _ in 0..300 {
                let v = rng.gen_range(0..r_true);
                e.add_sample(NodeId(v), (v % 10) as usize + 1);
            }
            if let Ok(n) = e.estimate_tuple_count() {
                estimates.push(n);
            }
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!(
            (mean - n_true).abs() / n_true < 0.15,
            "N̂ = {mean}, N = {n_true}"
        );
    }
}
