//! # digest-sampling
//!
//! The bottom tier of Digest: the distributed random sampling operator `S`
//! (paper §V).
//!
//! Given any weight function `w` over the live nodes, `S` draws a sample
//! node with probability `p_v = w_v / Σ_u w_u` by running a
//! Metropolis–Hastings random walk whose forwarding probabilities are
//! computed from *local* weight ratios only (Eq. 12) — no global
//! normalisation, no global knowledge. After enough steps the walk's
//! distribution is within any desired total-variation distance `γ` of
//! `p_v` (Theorems 1–4).
//!
//! * [`weight`] — node weight functions (uniform, content-size `m_v`,
//!   degree, custom closures).
//! * [`metropolis`] — one walk: the Eq. 12 transition rule with laziness
//!   ½, plus message accounting per hop.
//! * [`operator`] — the sampling operator: fresh walks (mixing-length) and
//!   continued walks (reset-length, §VI-A's "continue the random walk from
//!   where it stops"), two-stage tuple sampling, cluster sampling (for the
//!   ablation the paper argues against), batch mode. Occasion batches run
//!   through a deterministic parallel executor
//!   ([`SamplingConfig::workers`]): every walk slot owns a counter-derived
//!   RNG stream, so sampled panels are byte-identical for any worker
//!   count, including 1. Per-occasion overlay snapshots are cached and
//!   incrementally patched across occasions
//!   ([`SamplingConfig::cache_snapshots`]): cost is proportional to
//!   *change*, not overlay size, and the M–H acceptance ratios are
//!   precomputed into the snapshot (bit-equivalent to the live Eq. 12
//!   expression, so RNG streams and panels are unaffected).
//! * [`mixing`] — exact mixing analysis on small graphs: transition
//!   matrices, `π_t = π_0 Pᵗ`, TVD curves, measured mixing time `τ(γ)`,
//!   spectral-gap estimation (Theorem 3's `θ_P = 1 − |λ₂|`).
//! * [`baselines`] — the oracle (centralised) sampler that bounds the best
//!   possible cost, and the naive uniform-forwarding walk whose stationary
//!   distribution is degree-biased (what Digest's Metropolis rule fixes).
//! * [`size_estimate`] — capture–recapture estimation of the network and
//!   relation sizes, needed to scale `AVG` estimates into `SUM`/`COUNT`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

mod arena;
pub mod baselines;
pub mod error;
mod executor;
pub mod metropolis;
pub mod mixing;
pub mod operator;
pub mod size_estimate;
mod snapshot;
mod sync;
pub mod weight;

pub use baselines::{NaiveWalkSampler, OracleSampler};
pub use error::SamplingError;
pub use metropolis::MetropolisWalk;
pub use mixing::{
    calibrated_walk_length, mixing_time, sparse_spectral_diagnostics, transition_matrix, tvd_curve,
    SpectralDiagnostics,
};
pub use operator::{
    default_cache_snapshots, default_workers, SampleCost, SamplingConfig, SamplingOperator,
    SnapshotStats, SNAPSHOT_CACHE_ENV_VAR, WORKERS_ENV_VAR,
};
pub use size_estimate::SizeEstimator;
pub use weight::{content_size_weight, degree_weight, uniform_weight, NodeWeight};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SamplingError>;
