//! Sync primitives for the parallel walk executor, swappable for the
//! vendored loom model checker under `RUSTFLAGS="--cfg loom"` (see
//! DESIGN.md §13).
//!
//! The executor's claim/publish/reassembly protocol (`claim_slot` /
//! `publish_slot` in [`crate::executor`]) is written against these
//! aliases, so the very functions the production batch path runs are the
//! ones the loom tests exhaustively interleave.

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::OnceLock;

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::OnceLock;
