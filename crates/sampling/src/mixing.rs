//! Exact mixing analysis (paper §V-B: Definitions 1–2, Theorems 3–4).
//!
//! For graphs small enough to hold a dense `n × n` transition matrix, this
//! module computes the Metropolis forwarding matrix `P` of Eq. 12 exactly,
//! evolves `π_t = π_0 Pᵗ`, measures total-variation distance to the target
//! distribution, and reports the measured mixing time `τ(γ)` and an
//! estimate of the spectral gap `θ_P = 1 − |λ₂|`. The mixing-time
//! experiment (`exp_mixing`) uses these to validate the poly-logarithmic
//! growth Theorem 4 predicts for power-law overlays.

use crate::error::SamplingError;
use crate::weight::NodeWeight;
use crate::Result;
use digest_net::{Graph, NodeId};
use digest_stats::{total_variation_distance, DiscreteDistribution, Matrix};

/// The exact Metropolis forwarding matrix (Eq. 12) over the live nodes of
/// `g`, plus the node ordering (row/column `i` of the matrix is
/// `nodes[i]`) and the target stationary distribution.
///
/// # Errors
///
/// * [`SamplingError::EmptyGraph`] for an empty graph.
/// * [`SamplingError::InvalidWeight`] / [`SamplingError::ZeroTotalWeight`]
///   for unusable weight functions.
pub fn transition_matrix<W: NodeWeight>(
    g: &Graph,
    w: &W,
) -> Result<(Matrix, Vec<NodeId>, DiscreteDistribution)> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    if nodes.is_empty() {
        return Err(SamplingError::EmptyGraph);
    }
    let mut index = vec![usize::MAX; g.id_upper_bound()];
    let mut weights = Vec::with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        index[v.0 as usize] = i;
        let wv = w.weight(v);
        if !wv.is_finite() || wv < 0.0 {
            return Err(SamplingError::InvalidWeight {
                node: v,
                weight: wv,
            });
        }
        weights.push(wv);
    }
    if weights.iter().sum::<f64>() <= 0.0 {
        return Err(SamplingError::ZeroTotalWeight);
    }

    let n = nodes.len();
    let mut p = Matrix::zeros(n, n);
    for (i, &v) in nodes.iter().enumerate() {
        let d_i = g.degree(v) as f64;
        let w_i = weights[i].max(1e-300);
        let mut off_diag = 0.0;
        for &nb in g.neighbors(v) {
            let j = index[nb.0 as usize];
            let d_j = g.degree(nb) as f64;
            let w_j = weights[j];
            // Eq. 12 with laziness ½.
            let p_ij = 0.5 * (1.0 / d_i) * ((w_j * d_i) / (w_i * d_j)).min(1.0);
            p[(i, j)] = p_ij;
            off_diag += p_ij;
        }
        p[(i, i)] = 1.0 - off_diag;
    }
    let target = DiscreteDistribution::from_weights(&weights)?;
    Ok((p, nodes, target))
}

/// One step of distribution evolution: `π' = π P`.
#[must_use]
fn evolve(p: &Matrix, pi: &[f64]) -> Vec<f64> {
    let n = pi.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let pi_i = pi[i];
        if pi_i == 0.0 {
            continue;
        }
        for j in 0..n {
            out[j] += pi_i * p[(i, j)];
        }
    }
    out
}

/// The TVD-to-target curve of a walk started deterministically at
/// `start_index`: element `t` is `‖π_t, p_v‖` for `t = 0..=steps`
/// (paper §V-B, Definition 1).
///
/// # Errors
///
/// [`SamplingError::InvalidConfig`] if `start_index` is out of range.
pub fn tvd_curve(
    p: &Matrix,
    target: &DiscreteDistribution,
    start_index: usize,
    steps: usize,
) -> Result<Vec<f64>> {
    let n = target.len();
    if start_index >= n {
        return Err(SamplingError::InvalidConfig {
            reason: "start_index out of range",
        });
    }
    let mut pi = vec![0.0; n];
    pi[start_index] = 1.0;
    let mut curve = Vec::with_capacity(steps + 1);
    for _ in 0..=steps {
        let dist = DiscreteDistribution::from_weights(&pi)?;
        curve.push(total_variation_distance(&dist, target)?);
        pi = evolve(p, &pi);
    }
    Ok(curve)
}

/// Measured mixing time `τ(γ)` from the worst start node (paper §V-B,
/// Definition 2): the first `t` such that every start node's `π_t` is
/// within `γ` of the target. Returns `None` if `max_steps` is reached
/// first.
///
/// # Errors
///
/// [`SamplingError::InvalidConfig`] if `gamma ∉ (0, 1)`.
pub fn mixing_time(
    p: &Matrix,
    target: &DiscreteDistribution,
    gamma: f64,
    max_steps: usize,
) -> Result<Option<usize>> {
    if !(gamma > 0.0 && gamma < 1.0) {
        return Err(SamplingError::InvalidConfig {
            reason: "gamma must be in (0, 1)",
        });
    }
    let n = target.len();
    // Evolve all start distributions together: rows of Pᵗ.
    let mut power = p.clone();
    // t = 0: only mixed if every point mass is already within γ (untrue for
    // any nontrivial target), so start checking from t = 1.
    for t in 1..=max_steps {
        let mut worst = 0.0_f64;
        for i in 0..n {
            let row: Vec<f64> = (0..n).map(|j| power[(i, j)]).collect();
            let dist = DiscreteDistribution::from_weights(&row)?;
            worst = worst.max(total_variation_distance(&dist, target)?);
        }
        if worst <= gamma {
            return Ok(Some(t));
        }
        power = power.matmul(p).map_err(SamplingError::from)?;
    }
    Ok(None)
}

/// Spectral diagnostics of a forwarding matrix (paper §V-B, Theorem 3).
#[derive(Debug, Clone, Copy)]
pub struct SpectralDiagnostics {
    /// Estimate of `|λ₂|`, the second-largest eigenvalue modulus.
    pub lambda2: f64,
    /// The eigengap `θ_P = 1 − |λ₂|` of Theorem 3.
    pub eigengap: f64,
}

/// Estimates `|λ₂|` — the quantity behind the §V-B Theorem 3 eigengap —
/// by power iteration on `P` deflated by its known stationary left/right
/// structure: iterate `x ← xP` while projecting out the stationary
/// component, and read the decay rate.
///
/// # Errors
///
/// [`SamplingError::InvalidConfig`] if the matrix is not square or empty.
pub fn spectral_diagnostics(
    p: &Matrix,
    target: &DiscreteDistribution,
    iterations: usize,
) -> Result<SpectralDiagnostics> {
    let n = target.len();
    if p.rows() != n || p.cols() != n || n == 0 {
        return Err(SamplingError::InvalidConfig {
            reason: "matrix/target size mismatch",
        });
    }
    if n == 1 {
        return Ok(SpectralDiagnostics {
            lambda2: 0.0,
            eigengap: 1.0,
        });
    }
    // Start from a generic pseudo-random vector: a structured start (e.g.
    // an alternating sign pattern) can coincide with a low-eigenvalue
    // eigenvector and collapse the iteration.
    let mut seed = 0x853c_49e6_748f_ea9b_u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 32) as f64 / (1u64 << 31) as f64 - 1.0
        })
        .collect();
    let mut rate = 0.0;
    for _ in 0..iterations {
        // Project out the stationary left eigenvector (all-ones right
        // eigenvector direction under the π-weighted inner product); in
        // practice removing the π-weighted mean suffices for the decay
        // rate.
        let mean: f64 = x
            .iter()
            .zip(target.as_slice())
            .map(|(xi, pi)| xi * pi)
            .sum();
        for xi in x.iter_mut() {
            *xi -= mean;
        }
        let norm_before = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm_before < 1e-280 {
            return Ok(SpectralDiagnostics {
                lambda2: 0.0,
                eigengap: 1.0,
            });
        }
        x = evolve(p, &x);
        let norm_after = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        rate = norm_after / norm_before;
        // Renormalise to avoid underflow.
        for xi in x.iter_mut() {
            *xi /= norm_before;
        }
    }
    let lambda2 = rate.clamp(0.0, 1.0);
    Ok(SpectralDiagnostics {
        lambda2,
        eigengap: 1.0 - lambda2,
    })
}

/// Matrix-free spectral diagnostics: power iteration on `x ← xP` using the
/// overlay adjacency directly (O(edges) per iteration), so the eigengap of
/// §V-B Theorem 3 can be estimated on networks far too large for a dense
/// transition matrix.
///
/// # Errors
///
/// * [`SamplingError::EmptyGraph`] for an empty graph.
/// * Weight errors as for [`transition_matrix`].
pub fn sparse_spectral_diagnostics<W: NodeWeight>(
    g: &Graph,
    w: &W,
    iterations: usize,
) -> Result<SpectralDiagnostics> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let n = nodes.len();
    if n == 0 {
        return Err(SamplingError::EmptyGraph);
    }
    if n == 1 {
        return Ok(SpectralDiagnostics {
            lambda2: 0.0,
            eigengap: 1.0,
        });
    }
    let mut index = vec![usize::MAX; g.id_upper_bound()];
    let mut weights = Vec::with_capacity(n);
    for (i, &v) in nodes.iter().enumerate() {
        index[v.0 as usize] = i;
        let wv = w.weight(v);
        if !wv.is_finite() || wv < 0.0 {
            return Err(SamplingError::InvalidWeight {
                node: v,
                weight: wv,
            });
        }
        weights.push(wv);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(SamplingError::ZeroTotalWeight);
    }
    let pi: Vec<f64> = weights.iter().map(|w| w / total).collect();

    // One left-multiplication y = xP, computed edge-by-edge.
    let evolve = |x: &[f64], y: &mut [f64]| {
        y.fill(0.0);
        for (i, &v) in nodes.iter().enumerate() {
            let d_i = g.degree(v) as f64;
            let w_i = weights[i].max(1e-300);
            let mut off = 0.0;
            for &nb in g.neighbors(v) {
                let j = index[nb.0 as usize];
                let d_j = g.degree(nb) as f64;
                let p_ij = 0.5 * (1.0 / d_i) * ((weights[j] * d_i) / (w_i * d_j)).min(1.0);
                y[j] += x[i] * p_ij;
                off += p_ij;
            }
            y[i] += x[i] * (1.0 - off);
        }
    };

    // Pseudo-random start, stationary component projected out each round.
    let mut seed = 0x853c_49e6_748f_ea9b_u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 32) as f64 / (1u64 << 31) as f64 - 1.0
        })
        .collect();
    let mut y = vec![0.0; n];
    let mut rate = 0.0;
    for _ in 0..iterations {
        let mean: f64 = x.iter().zip(&pi).map(|(xi, p)| xi * p).sum();
        for xi in x.iter_mut() {
            *xi -= mean;
        }
        let norm_before = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm_before < 1e-280 {
            return Ok(SpectralDiagnostics {
                lambda2: 0.0,
                eigengap: 1.0,
            });
        }
        evolve(&x, &mut y);
        let norm_after = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        rate = norm_after / norm_before;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm_before;
        }
    }
    let lambda2 = rate.clamp(0.0, 1.0);
    Ok(SpectralDiagnostics {
        lambda2,
        eigengap: 1.0 - lambda2,
    })
}

/// §V-B Theorem-3 calibrated walk length: the number of steps after which the
/// walk's distribution is within `gamma` of the target from *any* start,
/// `τ(γ) ≤ θ⁻¹ (ln p_min⁻¹ + ln γ⁻¹)`, using the matrix-free eigengap
/// estimate.
///
/// # Errors
///
/// As for [`sparse_spectral_diagnostics`], plus
/// [`SamplingError::InvalidConfig`] for `gamma ∉ (0, 1)` or a vanishing
/// eigengap estimate.
pub fn calibrated_walk_length<W: NodeWeight>(g: &Graph, w: &W, gamma: f64) -> Result<u64> {
    if !(gamma > 0.0 && gamma < 1.0) {
        return Err(SamplingError::InvalidConfig {
            reason: "gamma must be in (0, 1)",
        });
    }
    let diag = sparse_spectral_diagnostics(g, w, 300)?;
    if diag.eigengap <= 1e-9 {
        return Err(SamplingError::InvalidConfig {
            reason: "eigengap estimate vanished; graph may be disconnected",
        });
    }
    // p_min of the target distribution.
    let mut total = 0.0;
    let mut min_w = f64::INFINITY;
    for v in g.nodes() {
        let wv = w.weight(v).max(1e-300);
        total += wv;
        min_w = min_w.min(wv);
    }
    let p_min = (min_w / total).max(1e-300);
    let bound = ((1.0 / p_min).ln() + (1.0 / gamma).ln()) / diag.eigengap;
    // Walk lengths are poly-logarithmic in n; saturate defensively.
    #[allow(clippy::cast_possible_truncation)]
    let steps = bound.ceil().clamp(0.0, 1e18) as u64;
    Ok(steps)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::weight::uniform_weight;
    use digest_net::topology;

    #[test]
    fn transition_matrix_is_stochastic() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let g = topology::barabasi_albert(30, 2, &mut rng).unwrap();
        let w = uniform_weight();
        let (p, nodes, _) = transition_matrix(&g, &w).unwrap();
        assert_eq!(nodes.len(), 30);
        for i in 0..30 {
            let row_sum: f64 = (0..30).map(|j| p[(i, j)]).sum();
            assert!((row_sum - 1.0).abs() < 1e-12, "row {i} sums to {row_sum}");
            // Laziness ½ guarantees a self-loop ≥ ½.
            assert!(p[(i, i)] >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn stationarity_of_target() {
        // π P = π for the designated target (detailed balance check).
        let g = topology::star(6).unwrap();
        let w = |v: NodeId| f64::from(v.0) + 1.0;
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        let pi = target.as_slice().to_vec();
        let next = evolve(&p, &pi);
        for (a, b) in pi.iter().zip(next.iter()) {
            assert!((a - b).abs() < 1e-12, "stationarity violated: {a} vs {b}");
        }
    }

    #[test]
    fn tvd_curve_decreases_to_zero() {
        let g = topology::ring(10).unwrap();
        let w = uniform_weight();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        let curve = tvd_curve(&p, &target, 0, 400).unwrap();
        assert!(
            (curve[0] - 0.9).abs() < 1e-12,
            "point mass starts at TVD 1 − 1/n"
        );
        assert!(curve[400] < 1e-3, "end TVD = {}", curve[400]);
        // Monotone non-increasing (true for lazy reversible chains).
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn mixing_time_is_finite_and_meaningful() {
        let g = topology::complete(8).unwrap();
        let w = uniform_weight();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        let tau = mixing_time(&p, &target, 0.01, 500).unwrap().unwrap();
        // Complete graphs mix almost instantly.
        assert!(tau < 20, "tau = {tau}");

        let ring = topology::ring(16).unwrap();
        let (p2, _, t2) = transition_matrix(&ring, &w).unwrap();
        let tau_ring = mixing_time(&p2, &t2, 0.01, 5000).unwrap().unwrap();
        assert!(
            tau_ring > tau,
            "ring ({tau_ring}) must mix slower than clique ({tau})"
        );
    }

    #[test]
    fn mixing_time_respects_budget() {
        let g = topology::ring(32).unwrap();
        let w = uniform_weight();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        assert_eq!(mixing_time(&p, &target, 0.001, 3).unwrap(), None);
    }

    #[test]
    fn mixing_time_validates_gamma() {
        let g = topology::ring(4).unwrap();
        let w = uniform_weight();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        assert!(mixing_time(&p, &target, 0.0, 10).is_err());
        assert!(mixing_time(&p, &target, 1.0, 10).is_err());
    }

    #[test]
    fn spectral_gap_orders_topologies() {
        let w = uniform_weight();
        let ring = topology::ring(16).unwrap();
        let (pr, _, tr) = transition_matrix(&ring, &w).unwrap();
        let ring_diag = spectral_diagnostics(&pr, &tr, 300).unwrap();

        let clique = topology::complete(16).unwrap();
        let (pc, _, tc) = transition_matrix(&clique, &w).unwrap();
        let clique_diag = spectral_diagnostics(&pc, &tc, 300).unwrap();

        assert!(
            clique_diag.eigengap > ring_diag.eigengap,
            "clique gap {} should exceed ring gap {}",
            clique_diag.eigengap,
            ring_diag.eigengap
        );
        assert!(ring_diag.lambda2 < 1.0 && ring_diag.lambda2 > 0.8);
    }

    #[test]
    fn eigengap_predicts_mixing_rate() {
        // τ(γ) ≤ θ⁻¹ (ln p_min⁻¹ + ln γ⁻¹) (Theorem 3): check the bound
        // holds for a mesh.
        let g = topology::mesh(4, 4, false).unwrap();
        let w = uniform_weight();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        let gamma = 0.01;
        let tau = mixing_time(&p, &target, gamma, 10_000).unwrap().unwrap() as f64;
        let diag = spectral_diagnostics(&p, &target, 500).unwrap();
        let bound = (1.0 / diag.eigengap) * ((1.0 / target.min_prob()).ln() + (1.0 / gamma).ln());
        assert!(
            tau <= bound * 1.05,
            "tau {tau} exceeds Theorem-3 bound {bound}"
        );
    }

    #[test]
    fn sparse_gap_matches_dense_gap() {
        let w = uniform_weight();
        for g in [
            topology::ring(16).unwrap(),
            topology::mesh(4, 4, false).unwrap(),
            topology::complete(12).unwrap(),
        ] {
            let (p, _, target) = transition_matrix(&g, &w).unwrap();
            let dense = spectral_diagnostics(&p, &target, 400).unwrap();
            let sparse = sparse_spectral_diagnostics(&g, &w, 400).unwrap();
            assert!(
                (dense.lambda2 - sparse.lambda2).abs() < 1e-6,
                "dense {} vs sparse {}",
                dense.lambda2,
                sparse.lambda2
            );
        }
    }

    #[test]
    fn calibrated_walk_length_upper_bounds_measured_mixing() {
        let w = uniform_weight();
        let g = topology::mesh(4, 4, false).unwrap();
        let gamma = 0.02;
        let calibrated = calibrated_walk_length(&g, &w, gamma).unwrap();
        let (p, _, target) = transition_matrix(&g, &w).unwrap();
        let tau = mixing_time(&p, &target, gamma, 20_000).unwrap().unwrap();
        assert!(
            calibrated as usize >= tau,
            "calibrated {calibrated} below measured τ {tau}"
        );
        // And not absurdly loose (within ~20× for small graphs).
        assert!((calibrated as usize) < tau * 20);
    }

    #[test]
    fn calibrated_walk_length_validates() {
        let w = uniform_weight();
        let g = topology::ring(6).unwrap();
        assert!(calibrated_walk_length(&g, &w, 0.0).is_err());
        assert!(calibrated_walk_length(&g, &w, 1.0).is_err());
    }

    #[test]
    fn empty_graph_rejected() {
        let g = digest_net::Graph::new();
        let w = uniform_weight();
        assert!(matches!(
            transition_matrix(&g, &w),
            Err(SamplingError::EmptyGraph)
        ));
    }

    #[test]
    fn zero_total_weight_rejected() {
        let g = topology::ring(4).unwrap();
        let w = |_: NodeId| 0.0;
        assert!(matches!(
            transition_matrix(&g, &w),
            Err(SamplingError::ZeroTotalWeight)
        ));
    }
}
