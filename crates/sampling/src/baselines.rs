//! Baseline samplers the experiments compare against.
//!
//! * [`OracleSampler`] — a centralised sampler with global knowledge: it
//!   draws exactly from the target distribution at zero walk cost. No real
//!   peer can implement it; it lower-bounds the achievable cost and serves
//!   as the ground-truth distribution in correctness tests ("comparable to
//!   optimal sampling" is the paper's claim for `S`).
//! * [`NaiveWalkSampler`] — a plain random walk with uniform forwarding
//!   probabilities `1/d_i`. Its stationary distribution is degree-biased
//!   (`π_v ∝ d_v`), not the desired `p_v` — the defect the Metropolis
//!   correction exists to fix. Used in estimator-bias experiments.

use crate::error::SamplingError;
use crate::weight::NodeWeight;
use crate::Result;
use digest_db::{P2PDatabase, Tuple, TupleHandle};
use digest_net::{Graph, NodeId};
use rand::Rng;

/// Centralised sampler with global knowledge (zero message cost) — the
/// idealised comparator for the §V-A walk's sampling quality.
#[derive(Debug, Clone, Default)]
pub struct OracleSampler;

impl OracleSampler {
    /// Creates the oracle.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Draws a node exactly from `p_v ∝ w_v` by global inverse-CDF
    /// sampling.
    ///
    /// # Errors
    ///
    /// * [`SamplingError::EmptyGraph`] if there are no nodes.
    /// * [`SamplingError::InvalidWeight`] / [`SamplingError::ZeroTotalWeight`]
    ///   for unusable weights.
    pub fn sample_node<W: NodeWeight, R: Rng + ?Sized>(
        &self,
        g: &Graph,
        w: &W,
        rng: &mut R,
    ) -> Result<NodeId> {
        let mut total = 0.0;
        let mut nodes = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            let wv = w.weight(v);
            if !wv.is_finite() || wv < 0.0 {
                return Err(SamplingError::InvalidWeight {
                    node: v,
                    weight: wv,
                });
            }
            total += wv;
            nodes.push((v, wv));
        }
        if nodes.is_empty() {
            return Err(SamplingError::EmptyGraph);
        }
        if total <= 0.0 {
            return Err(SamplingError::ZeroTotalWeight);
        }
        let mut u = rng.gen_range(0.0..total);
        for &(v, wv) in &nodes {
            if u < wv {
                return Ok(v);
            }
            u -= wv;
        }
        // Floating-point slack can exhaust the loop; the last node absorbs
        // the residual mass (`nodes` is non-empty, checked above).
        nodes.last().map(|n| n.0).ok_or(SamplingError::EmptyGraph)
    }

    /// Draws a uniformly random tuple of the relation directly.
    ///
    /// # Errors
    ///
    /// [`SamplingError::EmptyDatabase`] if the relation is empty.
    pub fn sample_tuple<R: Rng + ?Sized>(
        &self,
        db: &P2PDatabase,
        rng: &mut R,
    ) -> Result<(TupleHandle, Tuple)> {
        let total = db.total_tuples();
        if total == 0 {
            return Err(SamplingError::EmptyDatabase);
        }
        let target = rng.gen_range(0..total);
        db.iter()
            .nth(target)
            .map(|(h, t)| (h, t.clone()))
            .ok_or(SamplingError::EmptyDatabase)
    }
}

/// A plain (uncorrected) random walk: uniform forwarding over neighbors,
/// laziness ½ to match the Metropolis walk's tempo. Its stationary
/// distribution is degree-biased — the skew the §V-A Metropolis
/// correction (Eq. 12) exists to remove.
#[derive(Debug, Clone)]
pub struct NaiveWalkSampler {
    walk_length: u64,
}

impl NaiveWalkSampler {
    /// Creates a naive walker that walks `walk_length` steps per sample.
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidConfig`] if `walk_length == 0`.
    pub fn new(walk_length: u64) -> Result<Self> {
        if walk_length == 0 {
            return Err(SamplingError::InvalidConfig {
                reason: "walk_length must be positive",
            });
        }
        Ok(Self { walk_length })
    }

    /// Draws a sample node; its distribution converges to `π_v ∝ d_v`
    /// (NOT the uniform/target distribution — that is the point).
    ///
    /// # Errors
    ///
    /// [`SamplingError::UnknownNode`] if `origin` is not live.
    pub fn sample_node<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        origin: NodeId,
        rng: &mut R,
    ) -> Result<NodeId> {
        if !g.contains(origin) {
            return Err(SamplingError::UnknownNode(origin));
        }
        let mut current = origin;
        for _ in 0..self.walk_length {
            if rng.gen_bool(0.5) {
                continue;
            }
            let nbs = g.neighbors(current);
            if nbs.is_empty() {
                continue;
            }
            current = nbs[rng.gen_range(0..nbs.len())];
        }
        Ok(current)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::weight::uniform_weight;
    use digest_db::Schema;
    use digest_net::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn oracle_node_sampling_matches_weights() {
        let g = topology::ring(4).unwrap();
        let w = |v: NodeId| f64::from(v.0) + 1.0; // 1,2,3,4 → total 10
        let oracle = OracleSampler::new();
        let mut r = rng(1);
        let mut hits = [0usize; 4];
        for _ in 0..20_000 {
            hits[oracle.sample_node(&g, &w, &mut r).unwrap().0 as usize] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / 20_000.0;
            let want = (i + 1) as f64 / 10.0;
            assert!((p - want).abs() < 0.02, "node {i}: {p} vs {want}");
        }
    }

    #[test]
    fn oracle_tuple_sampling_uniform() {
        let mut db = P2PDatabase::new(Schema::single("a"));
        db.register_node(NodeId(0));
        db.register_node(NodeId(1));
        db.insert(NodeId(0), Tuple::single(0.0)).unwrap();
        db.insert(NodeId(1), Tuple::single(1.0)).unwrap();
        db.insert(NodeId(1), Tuple::single(2.0)).unwrap();
        let oracle = OracleSampler::new();
        let mut r = rng(2);
        let mut hits = [0usize; 3];
        for _ in 0..9000 {
            let (_, t) = oracle.sample_tuple(&db, &mut r).unwrap();
            hits[t.value(0).unwrap() as usize] += 1;
        }
        for &h in &hits {
            assert!((h as f64 / 9000.0 - 1.0 / 3.0).abs() < 0.02, "{hits:?}");
        }
    }

    #[test]
    fn oracle_errors() {
        let oracle = OracleSampler::new();
        let mut r = rng(3);
        let g = digest_net::Graph::new();
        assert!(matches!(
            oracle.sample_node(&g, &uniform_weight(), &mut r),
            Err(SamplingError::EmptyGraph)
        ));
        let db = P2PDatabase::new(Schema::single("a"));
        assert!(matches!(
            oracle.sample_tuple(&db, &mut r),
            Err(SamplingError::EmptyDatabase)
        ));
        let g = topology::ring(3).unwrap();
        let zero = |_: NodeId| 0.0;
        assert!(matches!(
            oracle.sample_node(&g, &zero, &mut r),
            Err(SamplingError::ZeroTotalWeight)
        ));
    }

    #[test]
    fn naive_walk_is_degree_biased_on_star() {
        // Star: hub degree n−1, leaves degree 1 → hub stationary mass ½.
        let g = topology::star(9).unwrap();
        let naive = NaiveWalkSampler::new(200).unwrap();
        let mut r = rng(4);
        let mut hub = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            if naive.sample_node(&g, NodeId(1), &mut r).unwrap() == NodeId(0) {
                hub += 1;
            }
        }
        let p_hub = hub as f64 / trials as f64;
        assert!(
            (p_hub - 0.5).abs() < 0.04,
            "hub mass = {p_hub} (expect ~0.5, not 1/9)"
        );
    }

    #[test]
    fn naive_walk_validates() {
        assert!(NaiveWalkSampler::new(0).is_err());
        let g = topology::ring(3).unwrap();
        let naive = NaiveWalkSampler::new(5).unwrap();
        let mut r = rng(5);
        assert!(matches!(
            naive.sample_node(&g, NodeId(9), &mut r),
            Err(SamplingError::UnknownNode(_))
        ));
    }
}
