//! Cached per-occasion overlay snapshots with incremental refresh.
//!
//! PR 3 rebuilt the full CSR snapshot on *every* `sample_tuples` batch,
//! making occasion latency proportional to overlay size even when the
//! overlay had not changed. This module makes the cost proportional to
//! *change* instead (cf. PolyFit's precomputed index structures and the
//! per-occasion amortization argument of the top-k P2P line of work in
//! PAPERS.md):
//!
//! * **Epoch-keyed caching.** [`SnapshotCache`] holds the last-built
//!   [`OccasionSnapshot`] keyed by `(graph mutation epoch, weight
//!   fingerprint)`. [`digest_net::Graph::epoch`] advances only on
//!   structural mutation, so an unchanged overlay is detected in O(1);
//!   weights (arbitrary caller closures) are re-evaluated into a scratch
//!   buffer each occasion — O(n), unavoidable without purity guarantees
//!   — and compared exactly. A full hit reuses the snapshot with zero
//!   writes.
//! * **CSR patching.** When the graph changed but the mutation journal
//!   still covers the gap, [`digest_net::Graph::changes_since`] yields
//!   the sorted set of dirty node ids; only their CSR rows are re-read
//!   from the graph while clean rows are block-copied from the previous
//!   snapshot, all into retained scratch buffers (steady-state: zero
//!   allocation).
//! * **M–H proposal caching.** The snapshot precomputes, for every
//!   directed CSR edge `(i, j)`, the Metropolis–Hastings acceptance
//!   ratio `(w_j·d_i) / (max(w_i, ε)·d_j)` of PAPER.md §V-A Eq. 12 using
//!   *bit-for-bit the same `f64` expression* as the live walk — and then
//!   folds it all the way down to the integer Bernoulli threshold
//!   `rand`'s `gen_bool(ratio)` would compare against. IEEE-754
//!   arithmetic is deterministic, so the table entry decides *and
//!   consumes the RNG stream* exactly like recomputing the ratio and
//!   calling `gen_bool` per step: ratio ≥ 1 maps to [`ACCEPT_ALWAYS`]
//!   (accept, no draw), anything else to `⌈ratio·2⁵³⌉` compared against
//!   the 53 mantissa bits of one raw `next_u64` draw. The per-node
//!   Lemire rejection threshold of the proposal draw (a 64-bit modulo
//!   in the vendored `gen_range`) is precomputed the same way. The
//!   inner walk step becomes a few array reads and integer compares —
//!   no float ops, no modulo, no weight-closure calls.
//!
//! Every refresh outcome is counted (`sampling.snapshot.built/reused/
//! patched`) and timed under [`Stage::SnapshotBuild`]. The cache is
//! bound to one [`Graph`] *instance*: epochs from different graphs are
//! incomparable, so `SamplingOperator::reset` must (and does) drop the
//! cache before an operator may be pointed at another graph.

use crate::error::SamplingError;
use crate::metropolis::ZERO_WEIGHT_FLOOR;
use crate::weight::NodeWeight;
use crate::Result;
use digest_net::{Graph, NodeId};
use digest_telemetry::{registry as telemetry, Stage};

/// Immutable per-occasion view of the overlay: CSR adjacency, liveness,
/// pre-validated node weights, and the precomputed M–H acceptance ratio
/// per directed edge, all indexed by raw node id. Built (or patched)
/// once per occasion on the dispatching thread; shared read-only by
/// every walk slot.
#[derive(Debug, Clone, Default)]
pub(crate) struct OccasionSnapshot {
    /// CSR row offsets, `id_upper_bound + 1` entries.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists.
    adjacency: Vec<NodeId>,
    /// Integer acceptance threshold for the directed edge stored at the
    /// same index in `adjacency`: [`accept_threshold`] of the ratio
    /// `(w_j·d_i) / (max(w_i, ε)·d_j)` that `MetropolisWalk::step`
    /// evaluates live (Eq. 12).
    accept: Vec<u64>,
    /// Per-node Lemire rejection threshold for the uniform proposal
    /// draw, [`lemire_reject_threshold`] of the node's degree
    /// (`id_upper_bound` entries, 0 for dead or isolated ids).
    reject: Vec<u64>,
    /// Weight per id slot (0.0 for dead ids); every entry finite, ≥ 0.
    weights: Vec<f64>,
    /// Liveness per id slot.
    live: Vec<bool>,
}

impl OccasionSnapshot {
    /// Builds a cold snapshot (no cache); test-only reference path —
    /// the operator goes through [`SnapshotCache`].
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidWeight`] if `w` yields a negative or
    /// non-finite weight for any live node (the same check the
    /// sequential walk applies lazily per step, applied eagerly here).
    #[cfg(test)]
    pub(crate) fn build<W: NodeWeight>(g: &Graph, w: &W) -> Result<Self> {
        let mut cache = SnapshotCache::new();
        cache.refresh(g, w, false)?;
        Ok(cache.snapshot)
    }

    /// Whether `v` was live at capture time.
    /// xtask: no-alloc
    pub(crate) fn contains(&self, v: NodeId) -> bool {
        self.live.get(v.0 as usize).copied().unwrap_or(false)
    }

    /// CSR row of `v` as `(start, degree)`; `(0, 0)` for unknown ids.
    /// xtask: no-alloc
    #[inline]
    pub(crate) fn row(&self, v: NodeId) -> (usize, usize) {
        let i = v.0 as usize;
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&start), Some(&end)) => (start, end.saturating_sub(start)),
            _ => (0, 0),
        }
    }

    /// The neighbor stored at CSR index `idx` (caller guarantees `idx`
    /// lies inside a row obtained from [`Self::row`]).
    /// xtask: no-alloc
    #[inline]
    pub(crate) fn neighbor_at(&self, idx: usize) -> NodeId {
        self.adjacency.get(idx).copied().unwrap_or(NodeId(0))
    }

    /// The precomputed integer acceptance threshold at CSR index `idx`:
    /// [`ACCEPT_ALWAYS`] iff the live ratio is ≥ 1 (accept without
    /// consuming randomness), otherwise [`accept_threshold`]'s
    /// `⌈ratio·2⁵³⌉` so that `(next_u64() >> 11) < threshold`
    /// reproduces `gen_bool(ratio)` bit-for-bit.
    /// xtask: no-alloc
    #[inline]
    pub(crate) fn accept_threshold_at(&self, idx: usize) -> u64 {
        self.accept.get(idx).copied().unwrap_or(0)
    }

    /// The precomputed per-node Lemire rejection threshold for `v`'s
    /// uniform proposal draw (see [`lemire_reject_threshold`]).
    /// xtask: no-alloc
    #[inline]
    pub(crate) fn reject_threshold_of(&self, v: NodeId) -> u64 {
        self.reject.get(v.0 as usize).copied().unwrap_or(0)
    }

    #[cfg(test)]
    pub(crate) fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (start, len) = self.row(v);
        self.adjacency.get(start..start + len).unwrap_or(&[])
    }

    #[cfg(test)]
    pub(crate) fn degree(&self, v: NodeId) -> usize {
        self.row(v).1
    }

    #[cfg(test)]
    pub(crate) fn weight(&self, v: NodeId) -> f64 {
        self.weights.get(v.0 as usize).copied().unwrap_or(0.0)
    }

    /// Recomputes the proposal tables (per-edge acceptance thresholds,
    /// per-node rejection thresholds) from the current CSR + weights.
    /// O(n + m); runs on every build *and* patch, because a single
    /// changed weight or degree perturbs the ratios of every incident
    /// edge (and, through `d_j`, of every edge *pointing at* a dirty
    /// node).
    fn recompute_tables(&mut self) {
        self.accept.clear();
        self.accept.reserve(self.adjacency.len());
        let upper = self.live.len();
        self.reject.clear();
        self.reject.reserve(upper);
        for i in 0..upper {
            let (start, len) = (
                self.offsets.get(i).copied().unwrap_or(0),
                self.offsets
                    .get(i + 1)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(self.offsets.get(i).copied().unwrap_or(0)),
            );
            self.reject.push(lemire_reject_threshold(
                u64::try_from(len).unwrap_or(u64::MAX),
            ));
            let d_i = len as f64;
            let w_i = self
                .weights
                .get(i)
                .copied()
                .unwrap_or(0.0)
                .max(ZERO_WEIGHT_FLOOR);
            for k in start..start + len {
                let j = self.adjacency.get(k).map_or(0, |n| n.0 as usize);
                let w_j = self.weights.get(j).copied().unwrap_or(0.0);
                let d_j = (self
                    .offsets
                    .get(j + 1)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(self.offsets.get(j).copied().unwrap_or(0)))
                    as f64;
                self.accept
                    .push(accept_threshold((w_j * d_i) / (w_i * d_j)));
            }
        }
    }
}

/// Sentinel threshold for "ratio ≥ 1": the walk accepts the proposal
/// *without drawing* from the RNG, mirroring the live step's
/// `accept >= 1.0 ||` short-circuit. Unambiguous: for any ratio < 1 the
/// stored threshold is at most `2⁵³ − 1 < u64::MAX`.
pub(crate) const ACCEPT_ALWAYS: u64 = u64::MAX;

/// Folds an M–H acceptance ratio down to the integer threshold whose
/// `(next_u64() >> 11) < threshold` compare reproduces the live step's
/// `accept >= 1.0 || rng.gen_bool(accept.max(0.0))` decision *and* RNG
/// consumption bit-for-bit. The vendored `rand::Rng::gen_bool(p)` is
/// `unit_f64(next_u64()) < p` where `unit_f64(v) = ((v >> 11) as f64)
/// · 2⁻⁵³` — an *exact* rational `m / 2⁵³` with integer `m < 2⁵³`.
/// Scaling `p` by the power of two 2⁵³ is itself exact in IEEE-754, so
/// `m / 2⁵³ < p  ⇔  m < ⌈p·2⁵³⌉`, making the per-draw comparison pure
/// integer (pinned against the real `gen_bool` by a unit test below).
/// A NaN ratio follows the live path's `NaN.max(0.0) == 0.0` to a
/// never-accept threshold of 0.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn accept_threshold(ratio: f64) -> u64 {
    if ratio >= 1.0 {
        return ACCEPT_ALWAYS;
    }
    // 2⁵³ — the mantissa scale inside the vendored `unit_f64`.
    const SCALE: f64 = 9_007_199_254_740_992.0;
    (ratio.max(0.0) * SCALE).ceil() as u64
}

/// The Lemire rejection threshold the vendored
/// `rand::uniform_u64_below(rng, span)` recomputes on every proposal
/// draw (`span.wrapping_neg() % span`, a 64-bit modulo). Precomputed
/// here per node because it depends only on the node's degree.
fn lemire_reject_threshold(span: u64) -> u64 {
    if span == 0 {
        0
    } else {
        span.wrapping_neg() % span
    }
}

/// How a [`SnapshotCache::refresh`] satisfied the occasion's request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SnapshotRefresh {
    /// Cold path: the full CSR + weight + acceptance tables were
    /// (re)materialized from the graph.
    Built,
    /// Cache hit: same graph epoch, byte-identical weights — the cached
    /// snapshot was returned with zero writes.
    Reused,
    /// Incremental path: the mutation journal covered the delta, so only
    /// dirty CSR rows were re-read (clean rows block-copied) and the
    /// acceptance table recomputed.
    Patched,
}

/// FNV-1a over the bit patterns of a weight vector (position-sensitive
/// via the running hash). Informational cache-key component; reuse is
/// confirmed by exact comparison, so a collision can never corrupt a
/// panel.
fn weight_fingerprint(weights: &[f64]) -> u64 {
    // Word-at-a-time FNV-1a variant: one xor-multiply round per weight
    // keeps the per-occasion fingerprint cost negligible next to the
    // walk itself (the byte-wise original cost ~8× more and bought
    // nothing — reuse is confirmed by exact comparison either way).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in weights {
        h ^= w.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Epoch-keyed cache of the last [`OccasionSnapshot`], owned by a
/// `SamplingOperator`. All scratch buffers are retained across
/// occasions, so the steady state (unchanged overlay) allocates nothing
/// and writes nothing beyond the weight re-evaluation.
#[derive(Debug, Clone, Default)]
pub(crate) struct SnapshotCache {
    snapshot: OccasionSnapshot,
    /// Whether `snapshot` reflects some prior refresh of *this* cache.
    valid: bool,
    /// Graph mutation epoch the snapshot was captured at.
    epoch: u64,
    /// FNV-1a fingerprint of the captured weight vector.
    weight_fp: u64,
    /// Per-occasion weight re-evaluation target.
    weights_scratch: Vec<f64>,
    /// Double buffers for in-place CSR patching.
    offsets_scratch: Vec<usize>,
    adjacency_scratch: Vec<NodeId>,
}

impl SnapshotCache {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Drops the cached snapshot and releases every retained buffer.
    /// Required whenever the operator may be re-pointed at a *different*
    /// graph: epochs are per-`Graph`-instance and two graphs can share
    /// an epoch value while disagreeing on topology.
    pub(crate) fn invalidate(&mut self) {
        *self = Self::new();
    }

    /// The current cache key, `(graph epoch, weight fingerprint)`, or
    /// `None` while invalid. Exposed for tests and diagnostics.
    #[cfg(test)]
    pub(crate) fn key(&self) -> Option<(u64, u64)> {
        self.valid.then_some((self.epoch, self.weight_fp))
    }

    /// Produces the occasion snapshot for the graph's current state,
    /// reusing / patching the cached one when `caching` is on and the
    /// key matches / the journal covers the delta.
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidWeight`] if `w` yields a negative or
    /// non-finite weight for any live node; the cache is invalidated so
    /// a later refresh cannot serve stale state.
    pub(crate) fn refresh<W: NodeWeight>(
        &mut self,
        g: &Graph,
        w: &W,
        caching: bool,
    ) -> Result<(&OccasionSnapshot, SnapshotRefresh)> {
        let _span = digest_telemetry::span(Stage::SnapshotBuild);
        let epoch = g.epoch();
        if let Err(err) = capture_weights(g, w, &mut self.weights_scratch) {
            self.invalidate();
            return Err(err);
        }
        let fp = weight_fingerprint(&self.weights_scratch);
        if caching && self.valid {
            if epoch == self.epoch
                && fp == self.weight_fp
                && self.weights_scratch == self.snapshot.weights
            {
                telemetry::SAMPLING_SNAPSHOT_REUSED.inc();
                return Ok((&self.snapshot, SnapshotRefresh::Reused));
            }
            if let Some(dirty) = g.changes_since(self.epoch) {
                self.patch_topology(g, &dirty);
                std::mem::swap(&mut self.snapshot.weights, &mut self.weights_scratch);
                self.snapshot.recompute_tables();
                self.epoch = epoch;
                self.weight_fp = fp;
                telemetry::SAMPLING_SNAPSHOT_PATCHED.inc();
                return Ok((&self.snapshot, SnapshotRefresh::Patched));
            }
        }
        self.rebuild_topology(g);
        std::mem::swap(&mut self.snapshot.weights, &mut self.weights_scratch);
        self.snapshot.recompute_tables();
        self.epoch = epoch;
        self.weight_fp = fp;
        self.valid = true;
        telemetry::SAMPLING_SNAPSHOT_BUILT.inc();
        Ok((&self.snapshot, SnapshotRefresh::Built))
    }

    /// Full CSR + liveness rebuild from the graph, reusing the
    /// snapshot's existing allocations.
    fn rebuild_topology(&mut self, g: &Graph) {
        let upper = g.id_upper_bound();
        let snap = &mut self.snapshot;
        snap.offsets.clear();
        snap.offsets.resize(upper + 1, 0);
        snap.live.clear();
        snap.live.resize(upper, false);
        for v in g.nodes() {
            let i = v.0 as usize;
            if let (Some(live), Some(deg)) = (snap.live.get_mut(i), snap.offsets.get_mut(i + 1)) {
                *live = true;
                *deg = g.neighbors(v).len();
            }
        }
        for i in 0..upper {
            let prev = snap.offsets.get(i).copied().unwrap_or(0);
            if let Some(next) = snap.offsets.get_mut(i + 1) {
                *next += prev;
            }
        }
        let total = snap.offsets.get(upper).copied().unwrap_or(0);
        snap.adjacency.clear();
        snap.adjacency.resize(total, NodeId(0));
        for v in g.nodes() {
            // `nodes()` iterates the dense live list, which is *not*
            // id-ordered after churn — write each row at its offset.
            let i = v.0 as usize;
            let row = g.neighbors(v);
            let start = snap.offsets.get(i).copied().unwrap_or(0);
            if let Some(dst) = snap.adjacency.get_mut(start..start + row.len()) {
                dst.copy_from_slice(row);
            }
        }
    }

    /// Incremental CSR refresh: rows of `dirty` ids (sorted, deduped,
    /// complete — the contract of [`Graph::changes_since`]) are re-read
    /// from the graph; every clean row is block-copied from the previous
    /// snapshot. Clean rows cannot reference removed nodes because
    /// `remove_node` marks all former neighbors dirty.
    fn patch_topology(&mut self, g: &Graph, dirty: &[NodeId]) {
        let upper = g.id_upper_bound();
        let snap = &mut self.snapshot;
        let old_upper = snap.live.len();
        let is_dirty = |i: usize| dirty.binary_search(&node_id(i)).is_ok();

        snap.live.resize(upper, false);
        snap.live.truncate(upper);
        for &d in dirty {
            let i = d.0 as usize;
            if let Some(live) = snap.live.get_mut(i) {
                *live = g.contains(d);
            }
        }

        self.offsets_scratch.clear();
        self.offsets_scratch.reserve(upper + 1);
        self.offsets_scratch.push(0);
        let mut running = 0usize;
        for i in 0..upper {
            let deg = if is_dirty(i) {
                if snap.live.get(i).copied().unwrap_or(false) {
                    g.degree(node_id(i))
                } else {
                    0
                }
            } else if i < old_upper {
                snap.offsets
                    .get(i + 1)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(snap.offsets.get(i).copied().unwrap_or(0))
            } else {
                0
            };
            running += deg;
            self.offsets_scratch.push(running);
        }

        self.adjacency_scratch.clear();
        self.adjacency_scratch.reserve(running);
        for i in 0..upper {
            if is_dirty(i) {
                if snap.live.get(i).copied().unwrap_or(false) {
                    self.adjacency_scratch
                        .extend_from_slice(g.neighbors(node_id(i)));
                }
            } else if i < old_upper {
                let start = snap.offsets.get(i).copied().unwrap_or(0);
                let end = snap.offsets.get(i + 1).copied().unwrap_or(0);
                self.adjacency_scratch
                    .extend_from_slice(snap.adjacency.get(start..end).unwrap_or(&[]));
            }
        }

        std::mem::swap(&mut snap.offsets, &mut self.offsets_scratch);
        std::mem::swap(&mut snap.adjacency, &mut self.adjacency_scratch);
    }
}

/// `NodeId` from a CSR slot index (ids above `u32::MAX` cannot exist:
/// `Graph::add_node` saturates there).
fn node_id(i: usize) -> NodeId {
    NodeId(u32::try_from(i).unwrap_or(u32::MAX))
}

/// Evaluates `w` over every live node into `scratch` (0.0 for dead id
/// slots), validating eagerly.
fn capture_weights<W: NodeWeight>(g: &Graph, w: &W, scratch: &mut Vec<f64>) -> Result<()> {
    let upper = g.id_upper_bound();
    scratch.clear();
    scratch.resize(upper, 0.0);
    for v in g.nodes() {
        let weight = w.weight(v);
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight { node: v, weight });
        }
        if let Some(slot) = scratch.get_mut(v.0 as usize) {
            *slot = weight;
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_net::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn assert_snapshots_equal(a: &OccasionSnapshot, b: &OccasionSnapshot) {
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.adjacency, b.adjacency);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.live, b.live);
        assert_eq!(a.accept, b.accept);
        assert_eq!(a.reject, b.reject);
    }

    #[test]
    fn snapshot_matches_graph_views() {
        let mut g = topology::barabasi_albert(40, 2, &mut rng(7)).unwrap();
        g.remove_node(NodeId(11)).unwrap();
        let w = |v: NodeId| f64::from(v.0) + 0.5;
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        for v in g.nodes() {
            assert!(snap.contains(v));
            assert_eq!(snap.neighbors(v), g.neighbors(v));
            assert_eq!(snap.degree(v), g.degree(v));
            assert_eq!(snap.weight(v), f64::from(v.0) + 0.5);
        }
        assert!(!snap.contains(NodeId(11)));
        assert!(snap.neighbors(NodeId(11)).is_empty());
        assert!(!snap.contains(NodeId(999)));
    }

    #[test]
    fn snapshot_rejects_invalid_weights_eagerly() {
        let g = topology::ring(6).unwrap();
        let w = |v: NodeId| if v.0 == 3 { f64::NAN } else { 1.0 };
        assert!(matches!(
            OccasionSnapshot::build(&g, &w),
            Err(SamplingError::InvalidWeight {
                node: NodeId(3),
                ..
            })
        ));
        let w = |v: NodeId| if v.0 == 2 { -1.0 } else { 1.0 };
        assert!(OccasionSnapshot::build(&g, &w).is_err());
    }

    /// The acceptance table must hold exactly the threshold derived
    /// from the ratio the live walk computes per step (PAPER.md §V-A
    /// Eq. 12), folded through the same [`accept_threshold`].
    #[test]
    fn acceptance_table_is_bit_identical_to_live_expression() {
        let g = topology::barabasi_albert(80, 3, &mut rng(5)).unwrap();
        let w = |v: NodeId| f64::from(v.0 % 7) + 0.25;
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        let mut below_one = 0usize;
        for v in g.nodes() {
            let (start, len) = snap.row(v);
            let d_i = g.degree(v) as f64;
            let w_i = w(v).max(ZERO_WEIGHT_FLOOR);
            for k in 0..len {
                let j = snap.neighbor_at(start + k);
                let live = (w(j) * d_i) / (w_i * (g.degree(j) as f64));
                assert_eq!(snap.accept_threshold_at(start + k), accept_threshold(live));
                if live < 1.0 {
                    below_one += 1;
                }
            }
        }
        // The graph must actually exercise the sub-unity branch.
        assert!(below_one > 0);
    }

    /// [`accept_threshold`]'s `(next_u64() >> 11) < t` compare must
    /// agree with the vendored `gen_bool(p)` on both the decision and
    /// the amount of stream consumed, for every probability class the
    /// acceptance ratio can produce below 1.
    #[test]
    fn thresholds_reproduce_gen_bool_exactly() {
        use rand::{Rng, RngCore};
        let ps = [
            0.0,
            1e-300,
            0.25,
            0.5,
            0.618_033_988_7,
            0.999_999,
            1.0 - f64::EPSILON,
        ];
        for (i, &p) in ps.iter().enumerate() {
            let t = accept_threshold(p);
            let mut live = rng(100 + i as u64);
            let mut table = live.clone();
            for round in 0..128 {
                assert_eq!(
                    live.gen_bool(p),
                    (table.next_u64() >> 11) < t,
                    "p={p} round={round}"
                );
            }
            // Both sides drained the same amount of stream.
            assert_eq!(live.next_u64(), table.next_u64(), "p={p}");
        }
        assert_eq!(accept_threshold(1.0), ACCEPT_ALWAYS);
        assert_eq!(accept_threshold(37.5), ACCEPT_ALWAYS);
        assert_eq!(accept_threshold(f64::INFINITY), ACCEPT_ALWAYS);
        // NaN ratio: the live path's `NaN.max(0.0)` is 0.0 → never accept.
        assert_eq!(accept_threshold(f64::NAN), 0);
        // The sentinel can never collide with a sub-unity threshold.
        assert!(accept_threshold(1.0 - f64::EPSILON) < ACCEPT_ALWAYS);
    }

    /// The per-node rejection table must hold exactly the threshold the
    /// vendored `uniform_u64_below` recomputes per draw, and the
    /// precomputed-threshold draw must match `gen_range` decision- and
    /// consumption-wise.
    #[test]
    fn reject_table_matches_vendored_gen_range() {
        use rand::{Rng, RngCore};
        for span in 1u64..=40 {
            assert_eq!(lemire_reject_threshold(span), span.wrapping_neg() % span);
        }
        assert_eq!(lemire_reject_threshold(0), 0);
        let g = topology::barabasi_albert(40, 2, &mut rng(6)).unwrap();
        let snap = OccasionSnapshot::build(&g, &|_: NodeId| 1.0).unwrap();
        for v in g.nodes() {
            let span = u64::try_from(g.degree(v)).unwrap();
            assert_eq!(snap.reject_threshold_of(v), lemire_reject_threshold(span));
            let mut live = rng(u64::from(v.0) + 500);
            let mut table = live.clone();
            let reject = snap.reject_threshold_of(v);
            for _ in 0..64 {
                let want = live.gen_range(0..g.degree(v));
                let got = loop {
                    let x = table.next_u64();
                    let m = u128::from(x) * u128::from(span);
                    if x.wrapping_mul(span) >= reject {
                        break usize::try_from(m >> 64).unwrap();
                    }
                };
                assert_eq!(want, got, "node {v:?}");
            }
            assert_eq!(live.next_u64(), table.next_u64());
        }
    }

    #[test]
    fn cache_reuses_on_unchanged_graph_and_weights() {
        let g = topology::barabasi_albert(60, 2, &mut rng(3)).unwrap();
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        let (_, first) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(first, SnapshotRefresh::Built);
        let key = cache.key().unwrap();
        let (_, second) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(second, SnapshotRefresh::Reused);
        assert_eq!(cache.key().unwrap(), key);
    }

    #[test]
    fn cache_disabled_always_rebuilds() {
        let g = topology::ring(12).unwrap();
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        for _ in 0..3 {
            let (_, kind) = cache.refresh(&g, &w, false).unwrap();
            assert_eq!(kind, SnapshotRefresh::Built);
        }
    }

    /// Patched refreshes after arbitrary churn must agree exactly with a
    /// cold build of the mutated graph.
    #[test]
    fn patched_snapshot_equals_cold_build_after_churn() {
        let mut g = topology::barabasi_albert(50, 3, &mut rng(9)).unwrap();
        let w = |v: NodeId| f64::from(v.0 % 4) + 1.0;
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &w, true).unwrap();

        // Add a node with edges, remove a node, rewire an edge.
        let fresh = g.add_node();
        g.add_edge(fresh, NodeId(0)).unwrap();
        g.add_edge(fresh, NodeId(7)).unwrap();
        g.remove_node(NodeId(13)).unwrap();
        let a = NodeId(2);
        let b = g.neighbors(a)[0];
        g.remove_edge(a, b).unwrap();
        g.add_edge(a, NodeId(21)).unwrap();

        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Patched);
        let cold = OccasionSnapshot::build(&g, &w).unwrap();
        assert_snapshots_equal(&cache.snapshot, &cold);
    }

    /// A weight change alone (same epoch) must also invalidate reuse and
    /// produce the cold-build snapshot.
    #[test]
    fn weight_change_alone_triggers_patch() {
        let g = topology::ring(20).unwrap();
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &|_: NodeId| 1.0, true).unwrap();
        let w2 = |v: NodeId| f64::from(v.0) + 2.0;
        let (_, kind) = cache.refresh(&g, &w2, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Patched);
        let cold = OccasionSnapshot::build(&g, &w2).unwrap();
        assert_snapshots_equal(&cache.snapshot, &cold);
    }

    /// Once the journal overflows, `changes_since` loses coverage and
    /// the cache must fall back to a full rebuild — still correct.
    #[test]
    fn journal_overflow_falls_back_to_full_rebuild() {
        let mut g = topology::ring(16).unwrap();
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &w, true).unwrap();
        // Far more mutations than the journal retains.
        for _ in 0..4096 {
            let v = g.add_node();
            g.add_edge(v, NodeId(0)).unwrap();
            g.remove_node(v).unwrap();
        }
        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Built);
        let cold = OccasionSnapshot::build(&g, &w).unwrap();
        assert_snapshots_equal(&cache.snapshot, &cold);
    }

    /// Pins the journal-bound decision from the cache's point of view:
    /// a small inter-occasion delta patches, while a delta past the
    /// journal bound must produce `Built` — and the rebuilt snapshot
    /// matches a cold build (never a silently-reused stale CSR).
    #[test]
    fn journal_bound_decides_patch_vs_build() {
        let mut g = topology::ring(16).unwrap();
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &w, true).unwrap();

        // Under the bound: a handful of mutations → Patched.
        let v = g.add_node();
        g.add_edge(v, NodeId(0)).unwrap();
        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Patched);

        // Past the bound (JOURNAL_CAP entries): same edge toggled far
        // more times than the journal retains → Built.
        for _ in 0..1200 {
            g.add_edge(v, NodeId(1)).unwrap();
            g.remove_edge(v, NodeId(1)).unwrap();
        }
        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Built);
        assert_snapshots_equal(&cache.snapshot, &OccasionSnapshot::build(&g, &w).unwrap());
    }

    /// Re-pointing an un-invalidated cache at a *different* graph whose
    /// epoch is lower than the cached mark must force `Built`. Before
    /// `Graph::changes_since` rejected future marks this path silently
    /// "patched" with an empty dirty set and served the previous
    /// graph's adjacency.
    #[test]
    fn repointed_graph_with_lower_epoch_forces_build() {
        // Drive the first graph's epoch high.
        let mut old = topology::ring(24).unwrap();
        for _ in 0..50 {
            let a = NodeId(0);
            let b = NodeId(5);
            old.remove_edge(a, b).ok();
            old.add_edge(a, b).ok();
        }
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        cache.refresh(&old, &w, true).unwrap();

        // A fresh graph starts from epoch ~n: far below the cached mark.
        let fresh = topology::ring(8).unwrap();
        assert!(fresh.epoch() < old.epoch());
        let (_, kind) = cache.refresh(&fresh, &w, true).unwrap();
        assert_eq!(
            kind,
            SnapshotRefresh::Built,
            "stale cache must rebuild for a graph it has never seen"
        );
        assert_snapshots_equal(
            &cache.snapshot,
            &OccasionSnapshot::build(&fresh, &w).unwrap(),
        );
    }

    #[test]
    fn invalid_weight_invalidates_cache() {
        let g = topology::ring(8).unwrap();
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &|_: NodeId| 1.0, true).unwrap();
        assert!(cache.key().is_some());
        let bad = |v: NodeId| if v.0 == 1 { -3.0 } else { 1.0 };
        assert!(cache.refresh(&g, &bad, true).is_err());
        assert!(cache.key().is_none());
        // Next valid refresh is a cold build, not a stale reuse.
        let (_, kind) = cache.refresh(&g, &|_: NodeId| 1.0, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Built);
    }

    #[test]
    fn fingerprint_is_position_sensitive() {
        let a = weight_fingerprint(&[1.0, 2.0, 3.0]);
        let b = weight_fingerprint(&[3.0, 2.0, 1.0]);
        assert_ne!(a, b);
        assert_ne!(weight_fingerprint(&[]), weight_fingerprint(&[0.0]));
    }

    /// Growing then shrinking `id_upper_bound` across patches must stay
    /// consistent with cold builds (regression guard for resize logic).
    #[test]
    fn patch_handles_upper_bound_growth_and_shrink() {
        let mut g = topology::ring(10).unwrap();
        let w = |_: NodeId| 1.0;
        let mut cache = SnapshotCache::new();
        cache.refresh(&g, &w, true).unwrap();

        let v = g.add_node();
        g.add_edge(v, NodeId(4)).unwrap();
        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Patched);
        assert_snapshots_equal(&cache.snapshot, &OccasionSnapshot::build(&g, &w).unwrap());

        g.remove_node(v).unwrap();
        let (_, kind) = cache.refresh(&g, &w, true).unwrap();
        assert_eq!(kind, SnapshotRefresh::Patched);
        assert_snapshots_equal(&cache.snapshot, &OccasionSnapshot::build(&g, &w).unwrap());
    }
}
