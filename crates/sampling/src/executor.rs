//! Deterministic parallel execution of one occasion's walk batch.
//!
//! The paper's batch mode invokes `S` n times *simultaneously* (§VI-A);
//! this module is that simultaneity made real on threads without giving
//! up replayability. The design mirrors the replication harness in
//! `digest-sim::parallel`:
//!
//! * **Counter-derived RNG streams.** The caller draws exactly one
//!   `u64` occasion seed from its own RNG; every walk slot then owns an
//!   independent `ChaCha8Rng` seeded by a SplitMix64 mix of
//!   `(occasion_seed, slot)`. No walk ever reads another walk's stream,
//!   so the sampled panel is a pure function of `(occasion_seed, slot)`
//!   — **byte-identical for any worker count, including 1**. The
//!   sequential case is literally `workers == 1` running the same drain
//!   loop inline, not a separate code path.
//! * **Index stealing + slot-order reassembly.** Workers steal slot
//!   indices from an atomic cursor and park results in a slot-indexed
//!   table; after the scope joins, results are consumed in slot order,
//!   so thread scheduling can influence neither the output order nor
//!   which error surfaces first.
//! * **An immutable occasion snapshot.** Adjacency (CSR), degrees, and
//!   node weights are captured once per batch on the dispatching
//!   thread; M–H proposals then read the snapshot instead of re-querying
//!   [`Graph`] and re-evaluating the weight closure per step. Weights
//!   are validated eagerly at capture, which is why the per-step walk
//!   below is infallible.
//! * **Deferred telemetry.** Workers run with events suppressed and
//!   accumulate per-slot tallies locally; counters and the per-slot
//!   `sampling.walk` / per-batch `sampling.batch` events are flushed
//!   post-join in slot order, keeping traces deterministic.
//!
//! The batch is atomic: any slot error (or exhausted content-retry
//! budget) fails the whole occasion batch and the operator's pool and
//! accounting are left untouched.

use crate::error::SamplingError;
use crate::metropolis::{MetropolisWalk, ZERO_WEIGHT_FLOOR};
use crate::operator::{SampleCost, SamplingConfig};
use crate::weight::NodeWeight;
use crate::Result;
use digest_db::{P2PDatabase, Tuple, TupleHandle};
use digest_net::{Graph, NodeId};
use digest_telemetry::{registry as telemetry, Field, Stage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Retry budget for landing on a content-bearing node, matching the
/// bounded loop in `SamplingOperator::sample_tuple`.
const TUPLE_RETRY_LIMIT: usize = 64;

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators") — used to derive well-separated per-slot seeds
/// from the single occasion seed.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of walk slot `slot`'s private RNG stream for this occasion.
pub(crate) fn walk_stream_seed(occasion_seed: u64, slot: usize) -> u64 {
    splitmix64(occasion_seed.wrapping_add((slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Immutable per-occasion view of the overlay: CSR adjacency, degrees
/// (implied), liveness, and pre-validated node weights, all indexed by
/// raw node id. Built once on the dispatching thread; shared read-only
/// by every walk slot.
pub(crate) struct OccasionSnapshot {
    /// CSR row offsets, `id_upper_bound + 1` entries.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists.
    adjacency: Vec<NodeId>,
    /// Weight per id slot (0.0 for dead ids); every entry finite, ≥ 0.
    weights: Vec<f64>,
    /// Liveness per id slot.
    live: Vec<bool>,
}

impl OccasionSnapshot {
    /// Captures the graph topology and evaluates `w` over every live
    /// node.
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidWeight`] if `w` yields a negative or
    /// non-finite weight for any live node (the same check the
    /// sequential walk applies lazily per step, applied eagerly here).
    pub(crate) fn build<W: NodeWeight>(g: &Graph, w: &W) -> Result<Self> {
        let upper = g.id_upper_bound();
        let mut offsets = vec![0usize; upper + 1];
        let mut weights = vec![0.0f64; upper];
        let mut live = vec![false; upper];
        for v in g.nodes() {
            let i = v.0 as usize;
            live[i] = true;
            offsets[i + 1] = g.neighbors(v).len();
            let weight = w.weight(v);
            if !weight.is_finite() || weight < 0.0 {
                return Err(SamplingError::InvalidWeight { node: v, weight });
            }
            weights[i] = weight;
        }
        for i in 0..upper {
            offsets[i + 1] += offsets[i];
        }
        let mut adjacency = vec![NodeId(0); offsets[upper]];
        for v in g.nodes() {
            let i = v.0 as usize;
            let row = offsets[i];
            for (k, &neighbor) in g.neighbors(v).iter().enumerate() {
                adjacency[row + k] = neighbor;
            }
        }
        Ok(Self {
            offsets,
            adjacency,
            weights,
            live,
        })
    }

    /// Whether `v` was live at capture time.
    pub(crate) fn contains(&self, v: NodeId) -> bool {
        self.live.get(v.0 as usize).copied().unwrap_or(false)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.0 as usize;
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&start), Some(&end)) => self.adjacency.get(start..end).unwrap_or(&[]),
            _ => &[],
        }
    }

    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    fn weight(&self, v: NodeId) -> f64 {
        self.weights.get(v.0 as usize).copied().unwrap_or(0.0)
    }
}

/// Local (lock-free) telemetry tallies of one walk slot, flushed into
/// the global counters post-join.
#[derive(Debug, Default, Clone, Copy)]
struct SlotTally {
    steps: u64,
    hops: u64,
    lazy: u64,
    proposals: u64,
    accepts: u64,
}

/// A Metropolis walk advancing over an [`OccasionSnapshot`]. Must mirror
/// [`MetropolisWalk::step`]'s RNG consumption order *exactly* — one
/// `gen_bool(0.5)` laziness draw, then (non-lazy, with neighbors) one
/// `gen_range` proposal draw and at most one acceptance draw — so the
/// snapshot walk and the live-graph walk are interchangeable given the
/// same stream (pinned by a unit test below).
struct SnapshotWalk {
    current: NodeId,
    tally: SlotTally,
}

impl SnapshotWalk {
    fn new(start: NodeId) -> Self {
        Self {
            current: start,
            tally: SlotTally::default(),
        }
    }

    /// One M–H step on the snapshot. Infallible: the snapshot never
    /// changes under the walk and its weights were validated at build.
    fn step<R: Rng + ?Sized>(&mut self, snap: &OccasionSnapshot, rng: &mut R) {
        self.tally.steps += 1;

        // Laziness ½.
        if rng.gen_bool(0.5) {
            self.tally.lazy += 1;
            return;
        }
        let neighbors = snap.neighbors(self.current);
        if neighbors.is_empty() {
            return;
        }
        let proposal = neighbors[rng.gen_range(0..neighbors.len())];
        self.tally.proposals += 1;

        let w_i = snap.weight(self.current).max(ZERO_WEIGHT_FLOOR);
        let w_j = snap.weight(proposal);
        let d_i = snap.degree(self.current) as f64;
        let d_j = snap.degree(proposal) as f64;

        let accept = (w_j * d_i) / (w_i * d_j);
        if accept >= 1.0 || rng.gen_bool(accept.max(0.0)) {
            self.current = proposal;
            self.tally.accepts += 1;
            self.tally.hops += 1;
        }
    }

    fn run<R: Rng + ?Sized>(&mut self, snap: &OccasionSnapshot, steps: u64, rng: &mut R) {
        for _ in 0..steps {
            self.step(snap, rng);
        }
    }
}

/// Work order for one walk slot, fully determined on the dispatching
/// thread before any worker runs.
struct SlotTask {
    start: NodeId,
    fresh: bool,
    burn_in: u64,
    seed: u64,
}

/// Everything one slot produced: the sampled tuple, the walk's final
/// position for pool writeback, and the deferred telemetry tallies.
#[derive(Debug, Clone)]
pub(crate) struct SlotOutcome {
    /// Whether the slot launched a fresh walk (vs continuing a pooled
    /// one).
    pub(crate) fresh: bool,
    /// Where the walk ended (the pool writeback position).
    pub(crate) end: NodeId,
    /// Planned burn-in of the first segment (mixing or reset length).
    pub(crate) burn_in: u64,
    /// Extra reset-length segments walked to find a content-bearing
    /// node.
    pub(crate) retries: u64,
    /// Total M–H steps taken across all segments.
    pub(crate) steps: u64,
    /// Accepted moves (= forwarding messages).
    pub(crate) hops: u64,
    lazy: u64,
    proposals: u64,
    accepts: u64,
    /// Handle of the sampled tuple.
    pub(crate) handle: TupleHandle,
    /// Snapshot copy of the sampled tuple.
    pub(crate) tuple: Tuple,
    /// §VI-A message cost of this sample.
    pub(crate) cost: SampleCost,
}

/// One occasion batch: which pool state to continue from and how many
/// samples to draw.
pub(crate) struct BatchRequest<'a> {
    /// Operator configuration (lengths, continuation, worker count).
    pub(crate) config: &'a SamplingConfig,
    /// The operator's persistent walk pool.
    pub(crate) pool: &'a [MetropolisWalk],
    /// First pool slot this batch occupies.
    pub(crate) cursor: usize,
    /// Fallback start node for fresh walks.
    pub(crate) origin: NodeId,
    /// Samples to draw.
    pub(crate) n: usize,
    /// The single `u64` the caller's RNG contributed for this occasion.
    pub(crate) occasion_seed: u64,
}

fn run_slot(
    task: &SlotTask,
    snap: &OccasionSnapshot,
    db: &P2PDatabase,
    reset_length: u64,
) -> Result<SlotOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(task.seed);
    let mut walk = SnapshotWalk::new(task.start);
    let _span = digest_telemetry::span(Stage::SamplingWalk);
    walk.run(snap, task.burn_in, &mut rng);
    // Before convergence a walk can sit on an empty node; walk reset
    // lengths until it lands on a content-bearing one (bounded, as in
    // the sequential `sample_tuple`).
    for retry in 0..TUPLE_RETRY_LIMIT {
        if let Some((handle, tuple)) = db.sample_local(walk.current, &mut rng) {
            return Ok(SlotOutcome {
                fresh: task.fresh,
                end: walk.current,
                burn_in: task.burn_in,
                retries: retry as u64,
                steps: walk.tally.steps,
                hops: walk.tally.hops,
                lazy: walk.tally.lazy,
                proposals: walk.tally.proposals,
                accepts: walk.tally.accepts,
                handle,
                tuple: tuple.clone(),
                cost: SampleCost {
                    walk_messages: walk.tally.hops,
                    report_messages: 1,
                },
            });
        }
        walk.run(snap, reset_length, &mut rng);
    }
    Err(SamplingError::ZeroTotalWeight)
}

/// Flushes one slot's deferred tallies into the global registry and
/// emits its `sampling.walk` event. Called post-join, in slot order.
fn flush_slot_telemetry(config: &SamplingConfig, outcome: &SlotOutcome) {
    if outcome.fresh {
        telemetry::SAMPLING_WALKS_FRESH.inc();
    } else {
        telemetry::SAMPLING_WALKS_CONTINUED.inc();
    }
    telemetry::SAMPLING_BURN_IN.record(outcome.burn_in);
    for _ in 0..outcome.retries {
        telemetry::SAMPLING_BURN_IN.record(config.reset_length);
    }
    telemetry::SAMPLING_WALK_STEPS.add(outcome.steps);
    telemetry::SAMPLING_MH_LAZY.add(outcome.lazy);
    telemetry::SAMPLING_MH_PROPOSALS.add(outcome.proposals);
    telemetry::SAMPLING_MH_ACCEPTS.add(outcome.accepts);
    telemetry::SAMPLING_WALK_HOPS.add(outcome.hops);
    telemetry::SAMPLING_SAMPLES.inc();
    telemetry::SAMPLING_MESSAGES.add(outcome.cost.total());
    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "sampling.walk",
            &[
                ("fresh", Field::Bool(outcome.fresh)),
                ("steps", Field::U64(outcome.steps)),
                ("hops", Field::U64(outcome.hops)),
            ],
        );
    }
}

/// Runs one occasion's walk batch and returns the slot outcomes in slot
/// order. See the module docs for the determinism model.
///
/// # Errors
///
/// * [`SamplingError::UnknownNode`] if `origin` is not live.
/// * [`SamplingError::InvalidWeight`] from snapshot capture.
/// * [`SamplingError::ZeroTotalWeight`] if a slot exhausts its
///   content-retry budget.
/// * The lowest-slot error wins when several slots fail.
pub(crate) fn run_tuple_batch<W: NodeWeight>(
    g: &Graph,
    db: &P2PDatabase,
    w: &W,
    request: &BatchRequest<'_>,
) -> Result<Vec<SlotOutcome>> {
    let _batch_span = digest_telemetry::span(Stage::SamplingBatch);
    let snapshot = OccasionSnapshot::build(g, w)?;
    if !snapshot.contains(request.origin) {
        return Err(SamplingError::UnknownNode(request.origin));
    }

    let config = request.config;
    let tasks: Vec<SlotTask> = (0..request.n)
        .map(|i| {
            let slot = request.cursor + i;
            let pooled = config
                .continue_walks
                .then(|| request.pool.get(slot))
                .flatten()
                .filter(|walk| snapshot.contains(walk.current()));
            let (start, fresh) = match pooled {
                Some(walk) => (walk.current(), false),
                None => (request.origin, true),
            };
            SlotTask {
                start,
                fresh,
                burn_in: if fresh {
                    config.walk_length
                } else {
                    config.reset_length
                },
                seed: walk_stream_seed(request.occasion_seed, slot),
            }
        })
        .collect();

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<SlotOutcome>>>> =
        Mutex::new((0..request.n).map(|_| None).collect());
    let drain = || loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        let Some(task) = tasks.get(index) else {
            return;
        };
        let outcome = run_slot(task, &snapshot, db, config.reset_length);
        let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(outcome);
        }
    };

    {
        // Workers could interleave events nondeterministically; run them
        // suppressed and emit deterministic rollups post-join. The guard
        // also covers the inline (single-worker) path so the emitted
        // stream is identical for every worker count.
        let _quiet = digest_telemetry::suppress_events();
        let workers = config.workers.max(1).min(request.n.max(1));
        if workers <= 1 {
            drain();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(drain);
                }
            });
        }
    }

    let slots = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut outcomes = Vec::with_capacity(request.n);
    for slot in slots {
        match slot {
            Some(outcome) => outcomes.push(outcome?),
            // Unreachable by construction (the scope joins all workers
            // and every index below `n` is claimed exactly once), but
            // surfaced as an error per the panic policy.
            None => {
                return Err(SamplingError::InvalidConfig {
                    reason: "parallel walk worker exited without reporting a result",
                })
            }
        }
    }

    let mut fresh = 0u64;
    let mut continued = 0u64;
    let mut messages = 0u64;
    for outcome in &outcomes {
        flush_slot_telemetry(config, outcome);
        if outcome.fresh {
            fresh += 1;
        } else {
            continued += 1;
        }
        messages = messages.saturating_add(outcome.cost.total());
    }
    telemetry::SAMPLING_WALK_BATCHES.inc();
    telemetry::SAMPLING_BATCH_SLOTS.record(request.n as u64);
    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "sampling.batch",
            &[
                ("slots", Field::U64(request.n as u64)),
                ("workers", Field::U64(config.workers.max(1) as u64)),
                ("fresh", Field::U64(fresh)),
                ("continued", Field::U64(continued)),
                ("messages", Field::U64(messages)),
            ],
        );
    }
    Ok(outcomes)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::weight::uniform_weight;
    use digest_net::topology;
    use rand::RngCore;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn snapshot_matches_graph_views() {
        let mut g = topology::barabasi_albert(40, 2, &mut rng(7)).unwrap();
        g.remove_node(NodeId(11)).unwrap();
        let w = |v: NodeId| f64::from(v.0) + 0.5;
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        for v in g.nodes() {
            assert!(snap.contains(v));
            assert_eq!(snap.neighbors(v), g.neighbors(v));
            assert_eq!(snap.degree(v), g.degree(v));
            assert_eq!(snap.weight(v), f64::from(v.0) + 0.5);
        }
        assert!(!snap.contains(NodeId(11)));
        assert!(snap.neighbors(NodeId(11)).is_empty());
        assert!(!snap.contains(NodeId(999)));
    }

    #[test]
    fn snapshot_rejects_invalid_weights_eagerly() {
        let g = topology::ring(6).unwrap();
        let w = |v: NodeId| if v.0 == 3 { f64::NAN } else { 1.0 };
        assert!(matches!(
            OccasionSnapshot::build(&g, &w),
            Err(SamplingError::InvalidWeight {
                node: NodeId(3),
                ..
            })
        ));
        let w = |v: NodeId| if v.0 == 2 { -1.0 } else { 1.0 };
        assert!(OccasionSnapshot::build(&g, &w).is_err());
    }

    /// The snapshot walk must consume its RNG stream exactly like the
    /// live-graph walk: same stream in, same trajectory out.
    #[test]
    fn snapshot_walk_is_byte_equivalent_to_metropolis_walk() {
        let g = topology::barabasi_albert(60, 3, &mut rng(11)).unwrap();
        let w = |v: NodeId| f64::from(v.0 % 5) + 1.0;
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        for seed in 0..20 {
            let start = NodeId(seed % 60);
            let mut live = MetropolisWalk::new(&g, start).unwrap();
            let mut live_rng = rng(u64::from(seed));
            live.run(&g, &w, 300, &mut live_rng).unwrap();

            let mut snapped = SnapshotWalk::new(start);
            let mut snap_rng = rng(u64::from(seed));
            snapped.run(&snap, 300, &mut snap_rng);

            assert_eq!(snapped.current, live.current(), "seed {seed}");
            assert_eq!(snapped.tally.steps, live.steps(), "seed {seed}");
            assert_eq!(snapped.tally.hops, live.messages(), "seed {seed}");
            // Both walks must have drained the same amount of stream.
            assert_eq!(live_rng.next_u64(), snap_rng.next_u64());
        }
    }

    #[test]
    fn walk_stream_seeds_are_distinct_across_slots_and_occasions() {
        let mut seen = std::collections::BTreeSet::new();
        for occasion in 0..8u64 {
            for slot in 0..64usize {
                assert!(seen.insert(walk_stream_seed(occasion, slot)));
            }
        }
    }

    #[test]
    fn isolated_node_walk_stays_put_on_snapshot() {
        let mut g = digest_net::Graph::new();
        let a = g.add_node();
        let w = uniform_weight();
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        let mut walk = SnapshotWalk::new(a);
        walk.run(&snap, 50, &mut rng(3));
        assert_eq!(walk.current, a);
        assert_eq!(walk.tally.hops, 0);
        assert_eq!(walk.tally.steps, 50);
    }
}
