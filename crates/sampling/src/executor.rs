//! Deterministic parallel execution of one occasion's walk batch.
//!
//! The paper's batch mode invokes `S` n times *simultaneously* (§VI-A);
//! this module is that simultaneity made real on threads without giving
//! up replayability. The design mirrors the replication harness in
//! `digest-sim::parallel`:
//!
//! * **Counter-derived RNG streams.** The caller draws exactly one
//!   `u64` occasion seed from its own RNG; every walk slot then owns an
//!   independent `ChaCha8Rng` seeded by a SplitMix64 mix of
//!   `(occasion_seed, slot)`. No walk ever reads another walk's stream,
//!   so the sampled panel is a pure function of `(occasion_seed, slot)`
//!   — **byte-identical for any worker count, including 1**. The
//!   sequential case is literally `workers == 1` running the same drain
//!   loop inline, not a separate code path.
//! * **Index stealing + slot-order reassembly, lock-free.** Workers
//!   claim slot indices from an atomic cursor ([`claim_slot`]) and
//!   publish results into a slot-indexed table of `OnceLock` cells
//!   ([`publish_slot`]) — each cell is written by exactly one worker, so
//!   the substrate holds no lock anywhere (R6). After the scope joins,
//!   cells are drained in slot order, so thread scheduling can influence
//!   neither the output order nor which error surfaces first. The
//!   claim/publish protocol is model-checked against the vendored loom
//!   stand-in under `RUSTFLAGS="--cfg loom"` (see [`crate::sync`] and
//!   DESIGN.md §13).
//! * **A cached occasion snapshot.** The operator refreshes a
//!   [`OccasionSnapshot`] through its [`crate::snapshot::SnapshotCache`]
//!   (reuse / patch / rebuild, see that module) and lends it here;
//!   M–H proposals read the snapshot's CSR rows and precomputed
//!   acceptance table instead of re-querying [`digest_net::Graph`] and
//!   re-evaluating weights per step. Weights were validated at capture,
//!   which is why the per-step walk below is infallible.
//! * **Arena-recycled buffers.** Task, result, and outcome vectors live
//!   in the operator's [`WalkArena`] and are reused across batches —
//!   the steady-state dispatch path allocates nothing.
//! * **Deferred telemetry.** Workers run with events suppressed and
//!   accumulate per-slot tallies locally; counters and the per-slot
//!   `sampling.walk` / per-batch `sampling.batch` events are flushed
//!   post-join in slot order, keeping traces deterministic.
//!
//! The batch is atomic: any slot error (or exhausted content-retry
//! budget) fails the whole occasion batch, `arena.outcomes` is left
//! empty, and the operator's pool and accounting are untouched.

use crate::arena::WalkArena;
use crate::error::SamplingError;
use crate::metropolis::MetropolisWalk;
use crate::operator::{SampleCost, SamplingConfig};
use crate::snapshot::{OccasionSnapshot, ACCEPT_ALWAYS};
use crate::sync::{AtomicUsize, OnceLock, Ordering};
use crate::Result;
use digest_db::{P2PDatabase, Tuple, TupleHandle};
use digest_net::NodeId;
use digest_telemetry::{registry as telemetry, Field, Stage};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Retry budget for landing on a content-bearing node, matching the
/// bounded loop in `SamplingOperator::sample_tuple`.
const TUPLE_RETRY_LIMIT: usize = 64;

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators") — used to derive well-separated per-slot seeds
/// from the single occasion seed.
/// xtask: no-alloc
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of walk slot `slot`'s private RNG stream for this occasion.
/// xtask: no-alloc
pub(crate) fn walk_stream_seed(occasion_seed: u64, slot: usize) -> u64 {
    splitmix64(occasion_seed.wrapping_add((slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Claims the next unprocessed slot index from the batch cursor, or
/// `None` once the batch is drained. Lock-free index stealing: each
/// index in `0..limit` is handed to exactly one caller because
/// `fetch_add` is atomic.
/// xtask: no-alloc
pub(crate) fn claim_slot(cursor: &AtomicUsize, limit: usize) -> Option<usize> {
    // relaxed-ok: claim uniqueness needs only the atomicity of fetch_add;
    // slot results are published through `OnceLock::set` and the scope
    // join, so no ordering rides on this counter.
    let index = cursor.fetch_add(1, Ordering::Relaxed);
    (index < limit).then_some(index)
}

/// Publishes one slot's result into its reassembly cell. Returns `false`
/// when the cell was already filled — impossible while [`claim_slot`]
/// hands out each index once (model-checked under `--cfg loom`), and
/// surfaced as a batch error rather than a panic if the protocol is ever
/// broken.
pub(crate) fn publish_slot<T>(cell: &OnceLock<T>, value: T) -> bool {
    cell.set(value).is_ok()
}

/// Local (lock-free) telemetry tallies of one walk slot, flushed into
/// the global counters post-join.
#[derive(Debug, Default, Clone, Copy)]
struct SlotTally {
    steps: u64,
    hops: u64,
    lazy: u64,
    proposals: u64,
    accepts: u64,
}

/// Integer threshold reproducing the laziness draw. The vendored
/// `gen_bool(0.5)` computes `unit_f64(v) < 0.5` where `unit_f64(v) =
/// ((v >> 11) as f64)·2⁻⁵³` is the exact rational `(v >> 11)/2⁵³`; the
/// comparison holds iff `v >> 11 < 2⁵²`, i.e. iff `v < 2⁶³`. Unrolling
/// it removes the per-step float conversion without touching the
/// stream.
const LAZY_THRESHOLD: u64 = 1 << 63;

/// One cached walk position: the CSR row `(start, span)` of the current
/// node plus its precomputed Lemire rejection threshold for the uniform
/// proposal draw. Refreshed only when the walk actually moves, so lazy
/// steps touch no snapshot memory at all.
#[derive(Clone, Copy)]
struct CachedRow {
    start: usize,
    /// Degree as the `span` of the vendored `uniform_u64_below`.
    span: u64,
    /// `span.wrapping_neg() % span` — the modulo the vendored
    /// `gen_range` recomputes per draw, precomputed per node by the
    /// snapshot.
    reject: u64,
}

/// Draws a uniform offset in `0..span` (`span ≥ 1`), consuming the
/// stream exactly like the vendored `rng.gen_range(0..span)`
/// (`uniform_u64_below`: Lemire widening-multiply rejection, one `u64`
/// draw per attempt) but with the per-attempt modulo replaced by the
/// snapshot's precomputed `reject` threshold. Equivalence is pinned by
/// `reject_table_matches_vendored_gen_range` in the snapshot module and
/// by `snapshot_walk_is_byte_equivalent_to_metropolis_walk` below,
/// which drains both streams.
/// xtask: no-alloc
#[inline]
fn sample_uniform_offset<R: RngCore + ?Sized>(rng: &mut R, span: u64, reject: u64) -> usize {
    loop {
        let x = rng.next_u64();
        if x.wrapping_mul(span) >= reject {
            let hi = (u128::from(x) * u128::from(span)) >> 64;
            // `hi < span` = a node degree, so this cannot actually fail.
            return usize::try_from(hi).unwrap_or(usize::MAX);
        }
    }
}

/// A Metropolis walk advancing over an [`OccasionSnapshot`]. Must mirror
/// [`MetropolisWalk::step`]'s RNG consumption order *exactly* — one
/// laziness draw, then (non-lazy, with neighbors) one proposal draw and
/// at most one acceptance draw — so the snapshot walk and the
/// live-graph walk are interchangeable given the same stream (pinned by
/// a unit test below). Every distribution call of the live step is
/// unrolled to its integer core: laziness is a raw compare against
/// [`LAZY_THRESHOLD`], the proposal is [`sample_uniform_offset`] over
/// the cached row, and acceptance compares the 53 mantissa bits of one
/// draw against the snapshot's precomputed per-edge threshold (which
/// the snapshot module pins bit-identical to the live
/// `gen_bool(ratio)`).
struct SnapshotWalk {
    current: NodeId,
    row: CachedRow,
    tally: SlotTally,
}

impl SnapshotWalk {
    /// xtask: no-alloc
    fn cached_row(snap: &OccasionSnapshot, v: NodeId) -> CachedRow {
        let (start, degree) = snap.row(v);
        CachedRow {
            start,
            span: u64::try_from(degree).unwrap_or(u64::MAX),
            reject: snap.reject_threshold_of(v),
        }
    }

    /// xtask: no-alloc
    fn new(start: NodeId, snap: &OccasionSnapshot) -> Self {
        Self {
            current: start,
            row: Self::cached_row(snap, start),
            tally: SlotTally::default(),
        }
    }

    /// One M–H step on the snapshot. Infallible: the snapshot never
    /// changes under the walk and its weights were validated at build.
    /// xtask: no-alloc
    #[inline]
    fn step<R: RngCore + ?Sized>(&mut self, snap: &OccasionSnapshot, rng: &mut R) {
        self.tally.steps += 1;

        // Laziness ½.
        if rng.next_u64() < LAZY_THRESHOLD {
            self.tally.lazy += 1;
            return;
        }
        let CachedRow {
            start,
            span,
            reject,
        } = self.row;
        if span == 0 {
            return;
        }
        let pick = start + sample_uniform_offset(rng, span, reject);
        self.tally.proposals += 1;

        let threshold = snap.accept_threshold_at(pick);
        if threshold == ACCEPT_ALWAYS || (rng.next_u64() >> 11) < threshold {
            self.current = snap.neighbor_at(pick);
            self.row = Self::cached_row(snap, self.current);
            self.tally.accepts += 1;
            self.tally.hops += 1;
        }
    }

    /// xtask: no-alloc
    fn run<R: RngCore + ?Sized>(&mut self, snap: &OccasionSnapshot, steps: u64, rng: &mut R) {
        for _ in 0..steps {
            self.step(snap, rng);
        }
    }
}

/// Work order for one walk slot, fully determined on the dispatching
/// thread before any worker runs.
#[derive(Debug, Clone)]
pub(crate) struct SlotTask {
    start: NodeId,
    fresh: bool,
    burn_in: u64,
    seed: u64,
}

/// Everything one slot produced: the sampled tuple, the walk's final
/// position for pool writeback, and the deferred telemetry tallies.
#[derive(Debug, Clone)]
pub(crate) struct SlotOutcome {
    /// Whether the slot launched a fresh walk (vs continuing a pooled
    /// one).
    pub(crate) fresh: bool,
    /// Where the walk ended (the pool writeback position).
    pub(crate) end: NodeId,
    /// Planned burn-in of the first segment (mixing or reset length).
    pub(crate) burn_in: u64,
    /// Extra reset-length segments walked to find a content-bearing
    /// node.
    pub(crate) retries: u64,
    /// Total M–H steps taken across all segments.
    pub(crate) steps: u64,
    /// Accepted moves (= forwarding messages).
    pub(crate) hops: u64,
    lazy: u64,
    proposals: u64,
    accepts: u64,
    /// Handle of the sampled tuple.
    pub(crate) handle: TupleHandle,
    /// Snapshot copy of the sampled tuple.
    pub(crate) tuple: Tuple,
    /// §VI-A message cost of this sample.
    pub(crate) cost: SampleCost,
}

/// One occasion batch: which pool state to continue from and how many
/// samples to draw.
pub(crate) struct BatchRequest<'a> {
    /// Operator configuration (lengths, continuation, worker count).
    pub(crate) config: &'a SamplingConfig,
    /// The operator's persistent walk pool.
    pub(crate) pool: &'a [MetropolisWalk],
    /// First pool slot this batch occupies.
    pub(crate) cursor: usize,
    /// Fallback start node for fresh walks.
    pub(crate) origin: NodeId,
    /// Samples to draw.
    pub(crate) n: usize,
    /// The single `u64` the caller's RNG contributed for this occasion.
    pub(crate) occasion_seed: u64,
}

fn run_slot(
    task: &SlotTask,
    snap: &OccasionSnapshot,
    db: &P2PDatabase,
    reset_length: u64,
) -> Result<SlotOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(task.seed);
    let mut walk = SnapshotWalk::new(task.start, snap);
    let _span = digest_telemetry::span(Stage::SamplingWalk);
    walk.run(snap, task.burn_in, &mut rng);
    // Before convergence a walk can sit on an empty node; walk reset
    // lengths until it lands on a content-bearing one (bounded, as in
    // the sequential `sample_tuple`).
    for retry in 0..TUPLE_RETRY_LIMIT {
        if let Some((handle, tuple)) = db.sample_local(walk.current, &mut rng) {
            return Ok(SlotOutcome {
                fresh: task.fresh,
                end: walk.current,
                burn_in: task.burn_in,
                retries: retry as u64,
                steps: walk.tally.steps,
                hops: walk.tally.hops,
                lazy: walk.tally.lazy,
                proposals: walk.tally.proposals,
                accepts: walk.tally.accepts,
                handle,
                tuple: tuple.clone(),
                cost: SampleCost {
                    walk_messages: walk.tally.hops,
                    report_messages: 1,
                },
            });
        }
        walk.run(snap, reset_length, &mut rng);
    }
    Err(SamplingError::ZeroTotalWeight)
}

/// Flushes one slot's deferred tallies into the global registry and
/// emits its `sampling.walk` event. Called post-join, in slot order.
fn flush_slot_telemetry(config: &SamplingConfig, outcome: &SlotOutcome) {
    if outcome.fresh {
        telemetry::SAMPLING_WALKS_FRESH.inc();
    } else {
        telemetry::SAMPLING_WALKS_CONTINUED.inc();
    }
    telemetry::SAMPLING_BURN_IN.record(outcome.burn_in);
    for _ in 0..outcome.retries {
        telemetry::SAMPLING_BURN_IN.record(config.reset_length);
    }
    telemetry::SAMPLING_WALK_STEPS.add(outcome.steps);
    telemetry::SAMPLING_MH_LAZY.add(outcome.lazy);
    telemetry::SAMPLING_MH_PROPOSALS.add(outcome.proposals);
    telemetry::SAMPLING_MH_ACCEPTS.add(outcome.accepts);
    telemetry::SAMPLING_WALK_HOPS.add(outcome.hops);
    telemetry::SAMPLING_SAMPLES.inc();
    telemetry::SAMPLING_MESSAGES.add(outcome.cost.total());
    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "sampling.walk",
            &[
                ("fresh", Field::Bool(outcome.fresh)),
                ("steps", Field::U64(outcome.steps)),
                ("hops", Field::U64(outcome.hops)),
            ],
        );
    }
    // Re-emit the worker-side walk span that was suppressed inside the
    // batch. The deterministic clock cannot advance mid-batch (the tick
    // is driver-stamped), so the re-emitted duration is always 0 ticks —
    // what matters is that the span stream is identical for every worker
    // count and stays monotone in tick order.
    digest_telemetry::emit_span_event(Stage::SamplingWalk, 0);
}

/// Runs one occasion's walk batch over the (cache-refreshed) snapshot,
/// leaving the slot outcomes in `arena.outcomes` in slot order. See the
/// module docs for the determinism model.
///
/// # Errors
///
/// * [`SamplingError::UnknownNode`] if `origin` is not live in the
///   snapshot.
/// * [`SamplingError::ZeroTotalWeight`] if a slot exhausts its
///   content-retry budget.
/// * The lowest-slot error wins when several slots fail; on any error
///   `arena.outcomes` is empty.
pub(crate) fn run_tuple_batch(
    db: &P2PDatabase,
    request: &BatchRequest<'_>,
    snapshot: &OccasionSnapshot,
    arena: &mut WalkArena,
) -> Result<()> {
    let _batch_span = digest_telemetry::span(Stage::SamplingBatch);
    arena.outcomes.clear();
    if !snapshot.contains(request.origin) {
        return Err(SamplingError::UnknownNode(request.origin));
    }

    let config = request.config;
    arena.tasks.clear();
    arena.tasks.extend((0..request.n).map(|i| {
        let slot = request.cursor + i;
        let pooled = config
            .continue_walks
            .then(|| request.pool.get(slot))
            .flatten()
            .filter(|walk| snapshot.contains(walk.current()));
        let (start, fresh) = match pooled {
            Some(walk) => (walk.current(), false),
            None => (request.origin, true),
        };
        SlotTask {
            start,
            fresh,
            burn_in: if fresh {
                config.walk_length
            } else {
                config.reset_length
            },
            seed: walk_stream_seed(request.occasion_seed, slot),
        }
    }));

    let mut results = std::mem::take(&mut arena.results);
    results.clear();
    results.resize_with(request.n, OnceLock::new);
    let tasks = &arena.tasks;
    let next = AtomicUsize::new(0);
    let table = &results;
    let drain = || {
        while let Some(index) = claim_slot(&next, tasks.len()) {
            let Some(task) = tasks.get(index) else {
                return;
            };
            let outcome = run_slot(task, snapshot, db, config.reset_length);
            // Always true: `claim_slot` hands each index to one worker.
            let _ = publish_slot(&table[index], outcome);
        }
    };

    {
        // Workers could interleave events nondeterministically; run them
        // suppressed and emit deterministic rollups post-join. The guard
        // also covers the inline (single-worker) path so the emitted
        // stream is identical for every worker count.
        let _quiet = digest_telemetry::suppress_events();
        let workers = config.workers.max(1).min(request.n.max(1));
        if workers <= 1 {
            drain();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(drain);
                }
            });
        }
    }

    // Lowest-slot problem wins; the table returns to the arena all-empty
    // with its capacity intact either way.
    let mut failure: Option<SamplingError> = None;
    for slot in results.iter_mut() {
        match slot.take() {
            Some(Ok(outcome)) => {
                if failure.is_none() {
                    arena.outcomes.push(outcome);
                }
            }
            Some(Err(err)) => {
                failure.get_or_insert(err);
            }
            // Unreachable by construction (the scope joins all workers
            // and every index below `n` is claimed exactly once), but
            // surfaced as an error per the panic policy.
            None => {
                failure.get_or_insert(SamplingError::InvalidConfig {
                    reason: "parallel walk worker exited without reporting a result",
                });
            }
        }
    }
    arena.results = results;
    if let Some(err) = failure {
        arena.outcomes.clear();
        return Err(err);
    }

    let mut fresh = 0u64;
    let mut continued = 0u64;
    let mut messages = 0u64;
    for outcome in &arena.outcomes {
        flush_slot_telemetry(config, outcome);
        if outcome.fresh {
            fresh += 1;
        } else {
            continued += 1;
        }
        messages = messages.saturating_add(outcome.cost.total());
    }
    telemetry::SAMPLING_WALK_BATCHES.inc();
    telemetry::SAMPLING_BATCH_SLOTS.record(request.n as u64);
    if digest_telemetry::events_enabled() {
        digest_telemetry::emit(
            "sampling.batch",
            &[
                ("slots", Field::U64(request.n as u64)),
                ("fresh", Field::U64(fresh)),
                ("continued", Field::U64(continued)),
                ("messages", Field::U64(messages)),
            ],
        );
    }
    Ok(())
}

#[cfg(all(test, loom))]
#[allow(clippy::unwrap_used)]
mod loom_tests {
    use super::{claim_slot, publish_slot};
    use crate::sync::{AtomicUsize, OnceLock};
    use loom::sync::Arc;
    use loom::thread;

    /// Exhaustively interleaves two workers draining a three-slot batch
    /// through the production `claim_slot` / `publish_slot` protocol:
    /// under every schedule each slot is claimed exactly once, every
    /// publish lands in a previously-empty cell, and after the join the
    /// table holds each slot's result exactly once.
    #[test]
    fn loom_claim_publish_fills_every_slot_exactly_once() {
        loom::model(|| {
            const SLOTS: usize = 3;
            let cursor = Arc::new(AtomicUsize::new(0));
            let table: Arc<Vec<OnceLock<usize>>> =
                Arc::new((0..SLOTS).map(|_| OnceLock::new()).collect());

            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let table = Arc::clone(&table);
                    thread::spawn(move || {
                        while let Some(index) = claim_slot(&cursor, SLOTS) {
                            assert!(
                                publish_slot(&table[index], index * 10),
                                "slot {index} was claimed twice"
                            );
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }

            let mut table = Arc::try_unwrap(table).ok().unwrap();
            for (index, cell) in table.iter_mut().enumerate() {
                assert_eq!(cell.take(), Some(index * 10), "slot {index} missing");
            }
        });
    }

    /// A cursor overshooting the slot count (more workers than work)
    /// never yields an in-range index twice and never blocks: late
    /// claimers see `None` and exit.
    #[test]
    fn loom_overshooting_claims_return_none() {
        loom::model(|| {
            let cursor = Arc::new(AtomicUsize::new(0));
            let claimed = Arc::new(OnceLock::new());

            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let claimed = Arc::clone(&claimed);
                    thread::spawn(move || match claim_slot(&cursor, 1) {
                        Some(index) => {
                            assert!(claimed.set(index).is_ok(), "single slot claimed twice");
                        }
                        None => {}
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }

            let mut claimed = Arc::try_unwrap(claimed).ok().unwrap();
            assert_eq!(claimed.take(), Some(0));
        });
    }
}

#[cfg(all(test, not(loom)))]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::weight::uniform_weight;
    use digest_net::topology;
    use rand::RngCore;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// The snapshot walk must consume its RNG stream exactly like the
    /// live-graph walk: same stream in, same trajectory out. With the
    /// acceptance table this also pins that table lookups decide
    /// identically to the live ratio computation.
    #[test]
    fn snapshot_walk_is_byte_equivalent_to_metropolis_walk() {
        let g = topology::barabasi_albert(60, 3, &mut rng(11)).unwrap();
        let w = |v: NodeId| f64::from(v.0 % 5) + 1.0;
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        for seed in 0..20 {
            let start = NodeId(seed % 60);
            let mut live = MetropolisWalk::new(&g, start).unwrap();
            let mut live_rng = rng(u64::from(seed));
            live.run(&g, &w, 300, &mut live_rng).unwrap();

            let mut snapped = SnapshotWalk::new(start, &snap);
            let mut snap_rng = rng(u64::from(seed));
            snapped.run(&snap, 300, &mut snap_rng);

            assert_eq!(snapped.current, live.current(), "seed {seed}");
            assert_eq!(snapped.tally.steps, live.steps(), "seed {seed}");
            assert_eq!(snapped.tally.hops, live.messages(), "seed {seed}");
            // Both walks must have drained the same amount of stream.
            assert_eq!(live_rng.next_u64(), snap_rng.next_u64());
        }
    }

    #[test]
    fn walk_stream_seeds_are_distinct_across_slots_and_occasions() {
        let mut seen = std::collections::BTreeSet::new();
        for occasion in 0..8u64 {
            for slot in 0..64usize {
                assert!(seen.insert(walk_stream_seed(occasion, slot)));
            }
        }
    }

    #[test]
    fn isolated_node_walk_stays_put_on_snapshot() {
        let mut g = digest_net::Graph::new();
        let a = g.add_node();
        let w = uniform_weight();
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        let mut walk = SnapshotWalk::new(a, &snap);
        walk.run(&snap, 50, &mut rng(3));
        assert_eq!(walk.current, a);
        assert_eq!(walk.tally.hops, 0);
        assert_eq!(walk.tally.steps, 50);
    }

    /// The arena's result table and task list must be recycled: after a
    /// successful batch every cell is empty with capacity `n`, and a
    /// second batch of the same size performs no buffer growth.
    #[test]
    fn arena_buffers_are_recycled_across_batches() {
        let g = topology::barabasi_albert(30, 2, &mut rng(4)).unwrap();
        let mut db = P2PDatabase::new(digest_db::Schema::single("a"));
        for v in g.nodes() {
            db.register_node(v);
            db.insert(v, Tuple::single(f64::from(v.0))).unwrap();
        }
        let w = uniform_weight();
        let snap = OccasionSnapshot::build(&g, &w).unwrap();
        let config = SamplingConfig {
            walk_length: 10,
            reset_length: 4,
            continue_walks: false,
            workers: 1,
            cache_snapshots: true,
        };
        let mut arena = WalkArena::new();
        let request = BatchRequest {
            config: &config,
            pool: &[],
            cursor: 0,
            origin: NodeId(0),
            n: 8,
            occasion_seed: 99,
        };
        run_tuple_batch(&db, &request, &snap, &mut arena).unwrap();
        assert_eq!(arena.outcomes.len(), 8);
        assert_eq!(arena.results.len(), 8);
        assert!(arena.results.iter().all(|cell| cell.get().is_none()));
        let results_cap = arena.results.capacity();
        let tasks_cap = arena.tasks.capacity();
        let outcomes_cap = arena.outcomes.capacity();
        run_tuple_batch(&db, &request, &snap, &mut arena).unwrap();
        assert_eq!(arena.outcomes.len(), 8);
        assert_eq!(arena.results.capacity(), results_cap);
        assert_eq!(arena.tasks.capacity(), tasks_cap);
        assert_eq!(arena.outcomes.capacity(), outcomes_cap);
    }
}
