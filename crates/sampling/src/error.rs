//! Error type for the sampling crate.

use digest_net::NodeId;
use std::fmt;

/// Errors produced by the distributed sampling machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// A walk was started from (or reached) a node that is not live.
    UnknownNode(NodeId),
    /// The graph has no nodes to sample.
    EmptyGraph,
    /// A weight function returned a negative or non-finite weight.
    InvalidWeight {
        /// The offending node.
        node: NodeId,
        /// The weight it was assigned.
        weight: f64,
    },
    /// All live nodes have zero weight — the target distribution is
    /// undefined.
    ZeroTotalWeight,
    /// Configuration parameter out of range.
    InvalidConfig {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// The database had no tuple to sample where one was required.
    EmptyDatabase,
    /// An error bubbled up from the statistics layer.
    Stats(digest_stats::StatsError),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SamplingError::EmptyGraph => write!(f, "cannot sample from an empty graph"),
            SamplingError::InvalidWeight { node, weight } => {
                write!(f, "invalid weight {weight} for node {node}")
            }
            SamplingError::ZeroTotalWeight => write!(f, "all node weights are zero"),
            SamplingError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            SamplingError::EmptyDatabase => {
                write!(f, "cannot sample a tuple from an empty database")
            }
            SamplingError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<digest_stats::StatsError> for SamplingError {
    fn from(e: digest_stats::StatsError) -> Self {
        SamplingError::Stats(e)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SamplingError::InvalidWeight {
            node: NodeId(2),
            weight: -1.0,
        };
        assert!(e.to_string().contains("n2"));
        let e: SamplingError = digest_stats::StatsError::SingularMatrix.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
