//! Node weight functions.
//!
//! The sampling operator is parameterised by "a generic weight function
//! which assigns a weight `w_v` to each node" (paper §III). Weights are
//! functions of *local* node properties — content size, degree, reputation
//! — and need not be normalised; the Metropolis rule only ever consumes
//! the local ratio `w_j / w_i`.

use digest_db::P2PDatabase;
use digest_net::{Graph, NodeId};

/// A (not necessarily normalised) weight function over nodes.
///
/// Implemented for any `Fn(NodeId) -> f64`, so weights can close over the
/// database, the graph, or anything else.
pub trait NodeWeight {
    /// The weight of `node`; must be finite and non-negative for live
    /// nodes.
    fn weight(&self, node: NodeId) -> f64;
}

impl<F: Fn(NodeId) -> f64> NodeWeight for F {
    fn weight(&self, node: NodeId) -> f64 {
        self(node)
    }
}

/// The uniform weight function `w₁ = {∀v : w_v = 1}` — node sampling
/// uniform over `V`.
#[must_use]
pub fn uniform_weight() -> impl NodeWeight + Copy {
    |_: NodeId| 1.0
}

/// The content-size weight function `w₂ = {∀v : w_v = m_v}` — node
/// sampling proportional to the node's tuple count, the first stage of
/// uniform *tuple* sampling (paper §III).
#[must_use]
pub fn content_size_weight(db: &P2PDatabase) -> impl NodeWeight + Copy + '_ {
    move |v: NodeId| db.content_size(v) as f64
}

/// Degree-proportional weight — the stationary distribution of the naive
/// (uncorrected) random walk; exposed so experiments can target it
/// explicitly.
#[must_use]
pub fn degree_weight(g: &Graph) -> impl NodeWeight + Copy + '_ {
    move |v: NodeId| g.degree(v) as f64
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{Schema, Tuple};
    use digest_net::topology;

    #[test]
    fn uniform_is_one_everywhere() {
        let w = uniform_weight();
        assert_eq!(w.weight(NodeId(0)), 1.0);
        assert_eq!(w.weight(NodeId(999)), 1.0);
    }

    #[test]
    fn content_size_tracks_database() {
        let mut db = P2PDatabase::new(Schema::single("a"));
        db.register_node(NodeId(0));
        db.register_node(NodeId(1));
        db.insert(NodeId(0), Tuple::single(1.0)).unwrap();
        db.insert(NodeId(0), Tuple::single(2.0)).unwrap();
        let w = content_size_weight(&db);
        assert_eq!(w.weight(NodeId(0)), 2.0);
        assert_eq!(w.weight(NodeId(1)), 0.0);
        assert_eq!(w.weight(NodeId(7)), 0.0, "unknown nodes weigh 0");
    }

    #[test]
    fn degree_weight_tracks_graph() {
        let g = topology::star(4).unwrap();
        let w = degree_weight(&g);
        assert_eq!(w.weight(NodeId(0)), 3.0);
        assert_eq!(w.weight(NodeId(1)), 1.0);
    }

    #[test]
    fn closures_are_weights() {
        let w = |v: NodeId| f64::from(v.0) * 2.0;
        assert_eq!(w.weight(NodeId(3)), 6.0);
    }
}
