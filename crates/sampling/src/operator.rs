//! The sampling operator `S` (paper §III, §V).
//!
//! `S` turns the Metropolis walk into the service the query engine
//! consumes: *give me a random node under weight function `w`* /
//! *give me a uniformly random tuple of `R`*. The second form is two-stage
//! sampling: a node is drawn with probability ∝ its content size `m_v`,
//! then one of its tuples uniformly at random, making every tuple of the
//! relation equally likely regardless of how tuples are spread over nodes.
//!
//! Cost model (matches the paper's experiments):
//!
//! * a fresh walk must run for the full mixing length before its position
//!   is a valid sample;
//! * a *continued* walk — "once converged for the first time, to derive
//!   successive samples we continue the random walk from where it stops"
//!   (§VI-A) — only needs the much shorter reset length;
//! * each accepted hop is one message, and delivering the sampled node id
//!   back to the originator is one more.

use crate::arena::WalkArena;
use crate::error::SamplingError;
use crate::executor;
use crate::metropolis::MetropolisWalk;
use crate::snapshot::{SnapshotCache, SnapshotRefresh};
use crate::weight::{content_size_weight, uniform_weight, NodeWeight};
use crate::Result;
use digest_db::{P2PDatabase, Tuple, TupleHandle};
use digest_net::{Graph, NodeId};
use digest_telemetry::{registry as telemetry, Field, Stage};
use rand::Rng;

/// Environment override for [`SamplingConfig::workers`]'s default, so a
/// whole test/CI run can be forced onto the parallel path without
/// touching every construction site.
pub const WORKERS_ENV_VAR: &str = "DIGEST_SAMPLING_WORKERS";

/// The default occasion worker count for batch mode (the paper's §V
/// "invoke `S` n times simultaneously"): `DIGEST_SAMPLING_WORKERS` when
/// set to a positive integer, otherwise 1 (inline execution). The
/// sampled panel is byte-identical for every worker count, so this only
/// moves wall-clock time.
#[must_use]
pub fn default_workers() -> usize {
    std::env::var(WORKERS_ENV_VAR)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// Environment escape hatch for [`SamplingConfig::cache_snapshots`]'s
/// default: set `DIGEST_SNAPSHOT_CACHE=0` to force a cold snapshot
/// rebuild every occasion (the PR 3 behavior). Panels are byte-identical
/// either way — the cache only skips rebuild work, never RNG draws — so
/// this exists for A/B benchmarking and the determinism audit.
pub const SNAPSHOT_CACHE_ENV_VAR: &str = "DIGEST_SNAPSHOT_CACHE";

/// Default for [`SamplingConfig::cache_snapshots`]: on, unless
/// [`SNAPSHOT_CACHE_ENV_VAR`] is set to `0`. Caching the §VI-A occasion
/// snapshot is a pure cost optimisation — sample distributions and RNG
/// streams are unaffected.
#[must_use]
pub fn default_cache_snapshots() -> bool {
    std::env::var(SNAPSHOT_CACHE_ENV_VAR)
        .map(|raw| raw.trim() != "0")
        .unwrap_or(true)
}

/// Tuning of the sampling operator `S` (paper §III, §V).
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Steps a fresh walk runs before its position counts as a sample
    /// (the mixing time `τ(γ)` for the deployment's topology).
    pub walk_length: u64,
    /// Steps a continued walk runs between successive samples (the reset
    /// time; `≪ walk_length`).
    pub reset_length: u64,
    /// Whether to keep walks alive between samples (reset-time
    /// continuation). Disabled, every sample pays the full mixing length —
    /// the ablation knob for that design choice.
    pub continue_walks: bool,
    /// Worker threads for each occasion's walk batch (`0` and `1` both
    /// mean inline execution). Sampled panels are **byte-identical for
    /// every value** — each walk slot owns a counter-derived RNG stream —
    /// so this knob trades wall-clock time only, never results.
    pub workers: usize,
    /// Reuse / incrementally patch the per-occasion overlay snapshot
    /// across occasions (keyed by graph mutation epoch and weight
    /// fingerprint; see `crate::snapshot`) instead of rebuilding it per
    /// batch. Byte-identical panels either way; off reproduces the cold
    /// PR 3 path for A/B runs.
    pub cache_snapshots: bool,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            walk_length: 64,
            reset_length: 16,
            continue_walks: true,
            workers: default_workers(),
            cache_snapshots: default_cache_snapshots(),
        }
    }
}

impl SamplingConfig {
    /// A reasonable configuration for a network of `n` nodes: walk length
    /// `⌈15 · ln n⌉` (poly-logarithmic, per Theorem 4) and reset length a
    /// quarter of that. Only the *first* sample of each pooled walk pays
    /// the full length; persistent walks accumulate unbounded burn-in.
    #[must_use]
    pub fn recommended(n: usize) -> Self {
        // `15 ln n` fits easily in u64 for every representable `n`.
        #[allow(clippy::cast_possible_truncation)]
        let walk = ((n.max(2) as f64).ln() * 15.0).ceil() as u64;
        Self {
            walk_length: walk.max(8),
            reset_length: (walk / 4).max(2),
            continue_walks: true,
            workers: default_workers(),
            cache_snapshots: default_cache_snapshots(),
        }
    }

    /// Theorem-3 calibrated configuration: measures the overlay's spectral
    /// gap (matrix-free power iteration, O(edges) per step) and sizes the
    /// walk so a fresh walk is within total-variation `gamma` of the
    /// target from any start. Costlier to construct and yields longer —
    /// guarantee-grade — walks than [`SamplingConfig::recommended`]; a
    /// deployment would run it once per epoch on its bootstrap view.
    ///
    /// # Errors
    ///
    /// As for [`crate::mixing::calibrated_walk_length`].
    pub fn calibrated<W: NodeWeight>(g: &Graph, w: &W, gamma: f64) -> Result<Self> {
        let walk = crate::mixing::calibrated_walk_length(g, w, gamma)?;
        Ok(Self {
            walk_length: walk.max(8),
            reset_length: (walk / 8).max(2),
            continue_walks: true,
            workers: default_workers(),
            cache_snapshots: default_cache_snapshots(),
        })
    }
}

/// The message cost of drawing one sample under the §VI-A cost model
/// (walk forwarding + result report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleCost {
    /// Messages spent forwarding the sampling agent.
    pub walk_messages: u64,
    /// Messages spent reporting the sample back to the originator.
    pub report_messages: u64,
}

impl SampleCost {
    /// Total messages. Saturating: a pathological accumulation (e.g. a
    /// caller summing costs into one `SampleCost`) pins at `u64::MAX`
    /// instead of overflowing.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.walk_messages.saturating_add(self.report_messages)
    }
}

/// The sampling operator: a pool of persistent walks plus cost accounting.
///
/// Batch mode (paper §VI-A): the `i`-th sample of an occasion is produced
/// by the `i`-th pooled walk. A walk pays the full mixing length the first
/// time it is used and only the reset length on later occasions, and
/// successive samples *within* one occasion come from distinct walks, so
/// they are mutually independent. Call [`SamplingOperator::begin_occasion`]
/// at each occasion boundary to rewind the pool cursor.
#[derive(Debug, Clone)]
pub struct SamplingOperator {
    config: SamplingConfig,
    walkers: Vec<MetropolisWalk>,
    cursor: usize,
    total_messages: u64,
    samples_drawn: u64,
    /// Epoch-keyed occasion-snapshot cache (see `crate::snapshot`). The
    /// cache is bound to the graph instance the operator samples from;
    /// [`SamplingOperator::reset`] drops it, which is what makes
    /// re-pointing a reset operator at a different graph safe.
    cache: SnapshotCache,
    /// Recycled batch buffers (see `crate::arena`).
    arena: WalkArena,
    stats: SnapshotStats,
}

/// Per-operator tally of how its occasion snapshots were produced
/// (paper §VI-A batch occasions; one entry per `sample_tuples` call).
/// Mirrors the global `sampling.snapshot.{built,reused,patched}`
/// telemetry counters but is race-free per operator, which is what the
/// benchmarks and tests read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Full cold builds of the CSR + weight + acceptance tables.
    pub built: u64,
    /// Zero-write reuses of the cached snapshot.
    pub reused: u64,
    /// Incremental patches (dirty CSR rows only).
    pub patched: u64,
}

impl SamplingOperator {
    /// Creates an operator.
    ///
    /// # Errors
    ///
    /// [`SamplingError::InvalidConfig`] if either length is zero.
    pub fn new(config: SamplingConfig) -> Result<Self> {
        if config.walk_length == 0 || config.reset_length == 0 {
            return Err(SamplingError::InvalidConfig {
                reason: "walk_length and reset_length must be positive",
            });
        }
        Ok(Self {
            config,
            walkers: Vec::new(),
            cursor: 0,
            total_messages: 0,
            samples_drawn: 0,
            cache: SnapshotCache::new(),
            arena: WalkArena::new(),
            stats: SnapshotStats::default(),
        })
    }

    /// The operator's configuration.
    #[must_use]
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Sets the occasion worker count (see [`SamplingConfig::workers`]).
    /// Safe to change at any time: results never depend on it.
    pub fn set_workers(&mut self, workers: usize) {
        self.config.workers = workers;
    }

    /// Total messages spent across all samples so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Number of samples drawn so far.
    #[must_use]
    pub fn samples_drawn(&self) -> u64 {
        self.samples_drawn
    }

    /// How this operator's occasion snapshots were produced so far.
    #[must_use]
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.stats
    }

    /// Discards all persistent walks **and** the cached occasion
    /// snapshot / arena buffers (e.g. after a topology upheaval, or
    /// before pointing the operator at a different graph). Dropping the
    /// cache here is load-bearing: graph mutation epochs are
    /// per-instance, so a *different* graph can coincidentally report
    /// the same epoch as the one the cache was built against — a reset
    /// operator must never serve that stale snapshot.
    pub fn reset(&mut self) {
        self.walkers.clear();
        self.cursor = 0;
        self.cache.invalidate();
        self.arena.release();
    }

    /// Marks an occasion boundary: the next samples reuse the pooled
    /// walks from the start, paying only the reset length each.
    pub fn begin_occasion(&mut self) {
        self.cursor = 0;
    }

    /// Number of pooled walks currently alive.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.walkers.len()
    }

    /// Draws one sample node with probability ∝ `w`.
    ///
    /// # Errors
    ///
    /// * [`SamplingError::UnknownNode`] if `origin` is not live.
    /// * [`SamplingError::EmptyGraph`] if the graph is empty.
    /// * Weight errors as for [`MetropolisWalk::step`].
    pub fn sample_node<W: NodeWeight, R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        w: &W,
        origin: NodeId,
        rng: &mut R,
    ) -> Result<(NodeId, SampleCost)> {
        if g.is_empty() {
            return Err(SamplingError::EmptyGraph);
        }
        if !g.contains(origin) {
            return Err(SamplingError::UnknownNode(origin));
        }

        // Continue the cursor's pooled walk when possible, otherwise grow
        // the pool with a fresh walk that pays the full mixing length.
        let slot = self.cursor;
        self.cursor += 1;
        let reuse = self.config.continue_walks
            && slot < self.walkers.len()
            && g.contains(self.walkers[slot].current());
        let (mut walk, steps) = if reuse {
            (self.walkers[slot].clone(), self.config.reset_length)
        } else {
            (MetropolisWalk::new(g, origin)?, self.config.walk_length)
        };

        if reuse {
            telemetry::SAMPLING_WALKS_CONTINUED.inc();
        } else {
            telemetry::SAMPLING_WALKS_FRESH.inc();
        }
        telemetry::SAMPLING_BURN_IN.record(steps);

        let before = walk.messages();
        {
            let _span = digest_telemetry::span(Stage::SamplingWalk);
            walk.run(g, w, steps, rng)?;
        }
        let cost = SampleCost {
            walk_messages: walk.messages() - before,
            report_messages: 1,
        };
        let sampled = walk.current();
        telemetry::SAMPLING_SAMPLES.inc();
        telemetry::SAMPLING_MESSAGES.add(cost.total());
        if digest_telemetry::events_enabled() {
            digest_telemetry::emit(
                "sampling.walk",
                &[
                    ("fresh", Field::Bool(!reuse)),
                    ("steps", Field::U64(steps)),
                    ("hops", Field::U64(cost.walk_messages)),
                ],
            );
        }

        if self.config.continue_walks {
            if slot < self.walkers.len() {
                self.walkers[slot] = walk;
            } else {
                self.walkers.push(walk);
            }
        }
        self.total_messages += cost.total();
        self.samples_drawn += 1;
        Ok((sampled, cost))
    }

    /// Draws one uniformly random tuple of the relation by two-stage
    /// sampling (node ∝ `m_v`, then a uniform local tuple). The returned
    /// tuple is a snapshot copy (the remote node ships the tuple's current
    /// state with the report message).
    ///
    /// # Errors
    ///
    /// * [`SamplingError::EmptyDatabase`] if no node stores any tuple.
    /// * Errors of [`SamplingOperator::sample_node`].
    pub fn sample_tuple<R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        db: &P2PDatabase,
        origin: NodeId,
        rng: &mut R,
    ) -> Result<(TupleHandle, Tuple, SampleCost)> {
        if db.total_tuples() == 0 {
            return Err(SamplingError::EmptyDatabase);
        }
        let w = content_size_weight(db);
        let mut cost = SampleCost::default();
        // Before convergence a walk can sit on an empty node; walk a bit
        // further until it lands on a content-bearing one. Bounded because
        // the database is non-empty and empty nodes repel the walk.
        for _ in 0..64 {
            let (node, c) = self.sample_node(g, &w, origin, rng)?;
            cost.walk_messages += c.walk_messages;
            cost.report_messages = c.report_messages;
            if let Some((handle, tuple)) = db.sample_local(node, rng) {
                return Ok((handle, tuple.clone(), cost));
            }
        }
        Err(SamplingError::ZeroTotalWeight)
    }

    /// Draws `n` uniformly random tuples ("batch mode": the paper invokes
    /// `S` n times simultaneously, and this is that simultaneity — the
    /// occasion's walk slots run on [`SamplingConfig::workers`] threads
    /// through the deterministic executor in `executor`).
    ///
    /// RNG contract: exactly **one** `u64` is drawn from `rng` per call
    /// with `n > 0` (the occasion seed) and none when `n == 0`, so the
    /// caller's stream advance — and hence everything downstream — is
    /// independent of both `n`'s internals and the worker count. Each
    /// walk slot derives its own `ChaCha8` stream from `(occasion_seed,
    /// slot)`; the returned panel is byte-identical for every worker
    /// count.
    ///
    /// The batch is atomic: on error no sample is returned and the walk
    /// pool, cursor, and message accounting are left untouched.
    ///
    /// # Errors
    ///
    /// As for [`SamplingOperator::sample_tuple`].
    pub fn sample_tuples<R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        db: &P2PDatabase,
        origin: NodeId,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<(TupleHandle, Tuple, SampleCost)>> {
        if n == 0 {
            return Ok(Vec::new());
        }
        if db.total_tuples() == 0 {
            return Err(SamplingError::EmptyDatabase);
        }
        if g.is_empty() {
            return Err(SamplingError::EmptyGraph);
        }
        if !g.contains(origin) {
            return Err(SamplingError::UnknownNode(origin));
        }
        let occasion_seed = rng.next_u64();
        let w = content_size_weight(db);
        let (snapshot, refresh) = self.cache.refresh(g, &w, self.config.cache_snapshots)?;
        match refresh {
            SnapshotRefresh::Built => self.stats.built += 1,
            SnapshotRefresh::Reused => self.stats.reused += 1,
            SnapshotRefresh::Patched => self.stats.patched += 1,
        }
        if digest_telemetry::events_enabled() {
            let refresh_name = match refresh {
                SnapshotRefresh::Built => "built",
                SnapshotRefresh::Reused => "reused",
                SnapshotRefresh::Patched => "patched",
            };
            digest_telemetry::emit(
                "sampling.snapshot",
                &[
                    ("refresh", Field::Str(refresh_name)),
                    ("nodes", Field::U64(g.node_count() as u64)),
                ],
            );
        }
        let request = executor::BatchRequest {
            config: &self.config,
            pool: &self.walkers,
            cursor: self.cursor,
            origin,
            n,
            occasion_seed,
        };
        executor::run_tuple_batch(db, &request, snapshot, &mut self.arena)?;

        let mut out = Vec::with_capacity(n);
        for (i, outcome) in self.arena.outcomes.drain(..).enumerate() {
            let slot = self.cursor + i;
            if self.config.continue_walks {
                // Fold the batch walk's tallies back into the pooled
                // walk so `steps()`/`messages()` read as if the walk had
                // been advanced sequentially.
                let (walk_origin, prior_steps, prior_messages) = if outcome.fresh {
                    (origin, 0, 0)
                } else {
                    let prev = &self.walkers[slot];
                    (prev.origin(), prev.steps(), prev.messages())
                };
                let walk = MetropolisWalk::restore(
                    outcome.end,
                    walk_origin,
                    prior_steps.saturating_add(outcome.steps),
                    prior_messages.saturating_add(outcome.hops),
                );
                if slot < self.walkers.len() {
                    self.walkers[slot] = walk;
                } else {
                    self.walkers.push(walk);
                }
            }
            self.total_messages = self.total_messages.saturating_add(outcome.cost.total());
            self.samples_drawn += 1;
            out.push((outcome.handle, outcome.tuple, outcome.cost));
        }
        self.cursor += n;
        Ok(out)
    }

    /// Cluster sampling (the alternative the paper rejects in §III): draw
    /// a node *uniformly* and take its entire fragment as a batch sample.
    /// Exposed for the two-stage-vs-cluster ablation.
    ///
    /// # Errors
    ///
    /// As for [`SamplingOperator::sample_node`].
    pub fn cluster_sample<R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        db: &P2PDatabase,
        origin: NodeId,
        rng: &mut R,
    ) -> Result<(NodeId, Vec<Tuple>, SampleCost)> {
        let w = uniform_weight();
        let (node, cost) = self.sample_node(g, &w, origin, rng)?;
        // The report message ships the node's whole fragment as the batch.
        let tuples: Vec<Tuple> = db
            .iter()
            .filter(|(h, _)| h.node == node)
            .map(|(_, t)| t.clone())
            .collect();
        Ok((node, tuples, cost))
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::Schema;
    use digest_net::topology;
    use rand::RngCore;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// db with node i holding i+1 tuples valued 100·i + j.
    fn skewed_db(nodes: u32) -> P2PDatabase {
        let mut db = P2PDatabase::new(Schema::single("a"));
        for i in 0..nodes {
            db.register_node(NodeId(i));
            for j in 0..=i {
                db.insert(NodeId(i), Tuple::single(f64::from(100 * i + j)))
                    .unwrap();
            }
        }
        db
    }

    #[test]
    fn config_validation() {
        assert!(SamplingOperator::new(SamplingConfig {
            walk_length: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SamplingOperator::new(SamplingConfig {
            reset_length: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn recommended_config_scales_logarithmically() {
        let small = SamplingConfig::recommended(100);
        let large = SamplingConfig::recommended(10_000);
        assert!(large.walk_length > small.walk_length);
        assert!(
            large.walk_length < 4 * small.walk_length,
            "should grow slowly"
        );
        assert!(small.reset_length < small.walk_length);
    }

    #[test]
    fn sample_node_respects_weights() {
        let g = topology::complete(4).unwrap();
        let w = |v: NodeId| if v.0 == 3 { 3.0 } else { 1.0 };
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 60,
            reset_length: 20,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(1);
        let mut hits = [0usize; 4];
        for _ in 0..6000 {
            let (node, _) = op.sample_node(&g, &w, NodeId(0), &mut r).unwrap();
            hits[node.0 as usize] += 1;
        }
        // Expected: node 3 gets 3/6 = 50%, others ~16.7%.
        let p3 = hits[3] as f64 / 6000.0;
        assert!((p3 - 0.5).abs() < 0.04, "p3 = {p3}");
        for (i, &h) in hits.iter().enumerate().take(3) {
            let p = h as f64 / 6000.0;
            assert!((p - 1.0 / 6.0).abs() < 0.04, "p{i} = {p}");
        }
    }

    #[test]
    fn two_stage_sampling_is_uniform_over_tuples() {
        // 3 nodes holding 1, 2, 3 tuples: every tuple should be drawn with
        // probability 1/6 even though nodes differ in content size.
        let g = topology::complete(3).unwrap();
        let db = skewed_db(3);
        assert_eq!(db.total_tuples(), 6);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 60,
            reset_length: 20,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(2);
        let mut counts = std::collections::BTreeMap::new();
        let draws = 12_000;
        for _ in 0..draws {
            let (_, tuple, _) = op.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
            *counts
                .entry(tuple.value(0).unwrap() as u64)
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6, "all six tuples must appear");
        for (&val, &c) in &counts {
            let p = c as f64 / draws as f64;
            assert!((p - 1.0 / 6.0).abs() < 0.02, "tuple {val}: p = {p}");
        }
    }

    #[test]
    fn continued_walks_are_cheaper() {
        let g = topology::ring(50).unwrap();
        let db = skewed_db(50);
        let mut r = rng(3);

        let mut cont = SamplingOperator::new(SamplingConfig {
            walk_length: 100,
            reset_length: 10,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut fresh = SamplingOperator::new(SamplingConfig {
            walk_length: 100,
            reset_length: 10,
            continue_walks: false,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();

        for _ in 0..30 {
            // One sample per occasion: the continued operator reuses its
            // pooled walk, the fresh one re-pays the mixing length.
            cont.begin_occasion();
            cont.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
            fresh.begin_occasion();
            fresh.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
        }
        assert_eq!(cont.pool_size(), 1, "one occasion slot in use");
        assert!(
            cont.total_messages() < fresh.total_messages() / 2,
            "continued {} vs fresh {}",
            cont.total_messages(),
            fresh.total_messages()
        );
        assert_eq!(cont.samples_drawn(), fresh.samples_drawn());
    }

    #[test]
    fn sample_cost_reports_hops_plus_report() {
        let g = topology::complete(5).unwrap();
        let db = skewed_db(5);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 40,
            reset_length: 10,
            continue_walks: false,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(4);
        let (_, _, cost) = op.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
        assert_eq!(cost.report_messages, 1);
        assert!(cost.walk_messages > 0);
        assert!(cost.walk_messages <= 40);
        assert_eq!(cost.total(), cost.walk_messages + 1);
        assert_eq!(op.total_messages(), cost.total());
    }

    #[test]
    fn empty_database_is_an_error() {
        let g = topology::ring(4).unwrap();
        let db = P2PDatabase::new(Schema::single("a"));
        let mut op = SamplingOperator::new(SamplingConfig::default()).unwrap();
        let mut r = rng(5);
        assert!(matches!(
            op.sample_tuple(&g, &db, NodeId(0), &mut r),
            Err(SamplingError::EmptyDatabase)
        ));
    }

    #[test]
    fn departed_walker_node_recovers_via_fresh_walk() {
        let mut g = topology::complete(6).unwrap();
        let db = skewed_db(6);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 30,
            reset_length: 5,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(6);
        op.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
        // Remove a node the pooled walker may be sitting on; sampling must
        // keep working by relaunching fresh walks where needed, and no
        // sampled tuple may belong to the departed node.
        g.remove_node(NodeId(5)).unwrap();
        for _ in 0..20 {
            op.begin_occasion();
            let (handle, _, _) = op.sample_tuple(&g, &db, NodeId(0), &mut r).unwrap();
            assert_ne!(handle.node, NodeId(5), "sampled a departed node's tuple");
        }
    }

    #[test]
    fn batch_sampling_draws_n() {
        let g = topology::complete(4).unwrap();
        let db = skewed_db(4);
        let mut op = SamplingOperator::new(SamplingConfig::default()).unwrap();
        let mut r = rng(7);
        let batch = op.sample_tuples(&g, &db, NodeId(0), 25, &mut r).unwrap();
        assert_eq!(batch.len(), 25);
        assert_eq!(op.samples_drawn(), 25);
    }

    #[test]
    fn sample_cost_total_saturates_instead_of_overflowing() {
        let cost = SampleCost {
            walk_messages: u64::MAX - 1,
            report_messages: 5,
        };
        assert_eq!(cost.total(), u64::MAX);
        let cost = SampleCost {
            walk_messages: u64::MAX,
            report_messages: u64::MAX,
        };
        assert_eq!(cost.total(), u64::MAX);
        // The ordinary regime is unchanged.
        let cost = SampleCost {
            walk_messages: 7,
            report_messages: 1,
        };
        assert_eq!(cost.total(), 8);
    }

    #[test]
    fn batch_empty_request_consumes_no_rng() {
        let g = topology::complete(4).unwrap();
        let db = skewed_db(4);
        let mut op = SamplingOperator::new(SamplingConfig::default()).unwrap();
        let mut a = rng(11);
        let mut b = rng(11);
        assert!(op
            .sample_tuples(&g, &db, NodeId(0), 0, &mut a)
            .unwrap()
            .is_empty());
        assert_eq!(a.next_u64(), b.next_u64(), "n == 0 must not touch rng");
    }

    #[test]
    fn batch_panels_are_identical_for_any_worker_count() {
        let g = topology::complete(5).unwrap();
        let db = skewed_db(5);
        let draw = |workers: usize| {
            let mut op = SamplingOperator::new(SamplingConfig {
                walk_length: 40,
                reset_length: 8,
                continue_walks: true,
                workers,
                cache_snapshots: true,
            })
            .unwrap();
            let mut r = rng(12);
            let mut panels = Vec::new();
            for _ in 0..4 {
                op.begin_occasion();
                panels.push(op.sample_tuples(&g, &db, NodeId(0), 17, &mut r).unwrap());
            }
            (panels, op.total_messages(), r.next_u64())
        };
        let (base, base_messages, base_next) = draw(1);
        for workers in [2, 4, 8] {
            let (panels, messages, next) = draw(workers);
            assert_eq!(messages, base_messages, "{workers} workers");
            assert_eq!(next, base_next, "caller rng advance, {workers} workers");
            for (pa, pb) in base.iter().zip(panels.iter()) {
                assert_eq!(pa.len(), pb.len());
                for ((ha, ta, ca), (hb, tb, cb)) in pa.iter().zip(pb.iter()) {
                    assert_eq!(ha, hb, "{workers} workers");
                    assert_eq!(
                        ta.value(0).unwrap().to_bits(),
                        tb.value(0).unwrap().to_bits(),
                        "{workers} workers"
                    );
                    assert_eq!(ca, cb, "{workers} workers");
                }
            }
        }
    }

    #[test]
    fn batch_continuation_is_cheaper_and_maintains_the_pool() {
        let g = topology::ring(30).unwrap();
        let db = skewed_db(30);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 100,
            reset_length: 10,
            continue_walks: true,
            workers: 2,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(13);
        op.sample_tuples(&g, &db, NodeId(0), 8, &mut r).unwrap();
        assert_eq!(op.pool_size(), 8);
        let after_first = op.total_messages();
        op.begin_occasion();
        op.sample_tuples(&g, &db, NodeId(0), 8, &mut r).unwrap();
        let second_cost = op.total_messages() - after_first;
        assert!(
            second_cost < after_first / 2,
            "continued occasion {second_cost} vs fresh {after_first}"
        );
        assert_eq!(op.pool_size(), 8, "pool slots are reused, not regrown");
        assert_eq!(op.samples_drawn(), 16);
    }

    /// Snapshot caching across occasions: unchanged overlay → reuse.
    #[test]
    fn snapshot_cache_reuses_across_unchanged_occasions() {
        let g = topology::complete(6).unwrap();
        let db = skewed_db(6);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 30,
            reset_length: 6,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(21);
        for _ in 0..5 {
            op.begin_occasion();
            op.sample_tuples(&g, &db, NodeId(0), 6, &mut r).unwrap();
        }
        let stats = op.snapshot_stats();
        assert_eq!(stats.built, 1, "one cold build");
        assert_eq!(stats.reused, 4, "all later occasions reuse");
        assert_eq!(stats.patched, 0);
    }

    /// With caching disabled every occasion pays a cold build, and the
    /// panel is byte-identical to the cached run (same caller RNG).
    #[test]
    fn cache_off_rebuilds_every_occasion_with_identical_panels() {
        let g = topology::complete(6).unwrap();
        let db = skewed_db(6);
        let draw = |cache_snapshots: bool| {
            let mut op = SamplingOperator::new(SamplingConfig {
                walk_length: 30,
                reset_length: 6,
                continue_walks: true,
                workers: 1,
                cache_snapshots,
            })
            .unwrap();
            let mut r = rng(22);
            let mut panels = Vec::new();
            for _ in 0..3 {
                op.begin_occasion();
                panels.push(op.sample_tuples(&g, &db, NodeId(0), 5, &mut r).unwrap());
            }
            (panels, op.snapshot_stats(), r.next_u64())
        };
        let (cached, cached_stats, cached_next) = draw(true);
        let (cold, cold_stats, cold_next) = draw(false);
        assert_eq!(cold_stats.built, 3);
        assert_eq!(cold_stats.reused + cold_stats.patched, 0);
        assert!(cached_stats.reused > 0);
        assert_eq!(cached_next, cold_next, "caller RNG advance must match");
        for (pa, pb) in cached.iter().zip(cold.iter()) {
            for ((ha, ta, ca), (hb, tb, cb)) in pa.iter().zip(pb.iter()) {
                assert_eq!(ha, hb);
                assert_eq!(
                    ta.value(0).unwrap().to_bits(),
                    tb.value(0).unwrap().to_bits()
                );
                assert_eq!(ca, cb);
            }
        }
    }

    /// Regression test for the stale-cache-after-reset bug: graph
    /// epochs are per-instance, so a *different* graph can report the
    /// same epoch and weight fingerprint as the one the cache was built
    /// against. `reset()` must drop the cache so the next occasion
    /// rebuilds from the new graph.
    #[test]
    fn reset_drops_cached_snapshot_before_graph_swap() {
        // Graph A: ring(8) — 8 add_node + 8 add_edge = 16 epoch bumps.
        let a = topology::ring(8).unwrap();
        // Graph B: 8 nodes, a path 0-…-7 plus edge 0-4 — also exactly
        // 16 mutations, so `epoch(A) == epoch(B)`, same id range, and
        // (uniform content below) the same weight fingerprint.
        let mut b = digest_net::Graph::new();
        let ids: Vec<NodeId> = (0..8).map(|_| b.add_node()).collect();
        for pair in ids.windows(2) {
            b.add_edge(pair[0], pair[1]).unwrap();
        }
        b.add_edge(ids[0], ids[4]).unwrap();
        assert_eq!(a.epoch(), b.epoch(), "the trap this test depends on");

        let db = {
            let mut db = P2PDatabase::new(Schema::single("a"));
            for i in 0..8 {
                db.register_node(NodeId(i));
                db.insert(NodeId(i), Tuple::single(f64::from(i))).unwrap();
            }
            db
        };
        let config = SamplingConfig {
            walk_length: 40,
            reset_length: 8,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        };

        let mut op = SamplingOperator::new(config).unwrap();
        let mut r = rng(23);
        op.sample_tuples(&a, &db, NodeId(0), 6, &mut r).unwrap();
        op.reset();
        op.begin_occasion();
        let mut r2 = rng(24);
        let swapped = op.sample_tuples(&b, &db, NodeId(0), 6, &mut r2).unwrap();

        let mut fresh_op = SamplingOperator::new(config).unwrap();
        let mut r3 = rng(24);
        let fresh = fresh_op
            .sample_tuples(&b, &db, NodeId(0), 6, &mut r3)
            .unwrap();

        assert_eq!(
            op.snapshot_stats().built,
            2,
            "post-reset occasion must cold-build, not reuse"
        );
        for ((ha, ta, ca), (hb, tb, cb)) in swapped.iter().zip(fresh.iter()) {
            assert_eq!(ha, hb, "reset operator must match a fresh one on graph B");
            assert_eq!(
                ta.value(0).unwrap().to_bits(),
                tb.value(0).unwrap().to_bits()
            );
            assert_eq!(ca, cb);
        }
    }

    /// Churn between occasions takes the incremental patch path and
    /// never a false reuse.
    #[test]
    fn churn_between_occasions_patches_snapshot() {
        let mut g = topology::complete(8).unwrap();
        let db = skewed_db(9);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 30,
            reset_length: 6,
            continue_walks: true,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(25);
        op.sample_tuples(&g, &db, NodeId(0), 6, &mut r).unwrap();
        let v = g.add_node();
        g.add_edge(v, NodeId(0)).unwrap();
        op.begin_occasion();
        op.sample_tuples(&g, &db, NodeId(0), 6, &mut r).unwrap();
        let stats = op.snapshot_stats();
        assert_eq!(stats.built, 1);
        assert_eq!(stats.patched, 1);
    }

    #[test]
    fn cluster_sample_returns_whole_fragment() {
        let g = topology::complete(3).unwrap();
        let db = skewed_db(3);
        let mut op = SamplingOperator::new(SamplingConfig {
            walk_length: 50,
            reset_length: 10,
            continue_walks: false,
            workers: 1,
            cache_snapshots: true,
        })
        .unwrap();
        let mut r = rng(8);
        let (node, tuples, _) = op.cluster_sample(&g, &db, NodeId(0), &mut r).unwrap();
        assert_eq!(tuples.len(), db.content_size(node));
        // Every tuple value encodes its node: 100·node + j.
        for t in &tuples {
            assert_eq!((t.value(0).unwrap() as u32) / 100, node.0);
        }
    }
}
