//! One Metropolis random walk (paper §V-A, Eq. 12, Theorem 2).
//!
//! The walk at node `i` behaves as follows each step:
//!
//! 1. with probability ½ it stays put (the *laziness* that makes the chain
//!    aperiodic even on bipartite overlays such as meshes);
//! 2. otherwise it proposes a uniformly random neighbor `j` (probability
//!    `1/d_i` each) and *accepts* the move with probability
//!    `min(1, (w_j · d_i) / (w_i · d_j))`, staying at `i` on rejection.
//!
//! This realises exactly the forwarding matrix of Eq. 12:
//! `P_ij = ½ · (1/d_i) · min(1, (p_j d_i)/(p_i d_j))` for neighbors and
//! `P_ii = 1 − Σ_j P_ij`, whose unique stationary distribution is
//! `p_v ∝ w_v`. Everything node `i` needs is its own weight/degree and its
//! neighbors' — fully local.
//!
//! Message accounting: an accepted move physically forwards the sampling
//! agent (1 message). Rejections and self-loops are local decisions and
//! cost nothing; neighbor weights are assumed known from the routine
//! keep-alive exchange (the paper's "obtaining the weight `w_j` from its
//! neighbor `j`").

use crate::error::SamplingError;
use crate::weight::NodeWeight;
use crate::Result;
use digest_net::{Graph, NodeId};
use digest_telemetry::registry as telemetry;
use rand::Rng;

/// A zero-weight node is treated as having this weight when it is the
/// *current* node, so the walk always escapes zero-weight nodes instead of
/// dividing by zero. (A zero-weight node still has stationary probability
/// ~0 because every neighbor accepts a move away from it and essentially
/// never accepts a move into it.)
pub(crate) const ZERO_WEIGHT_FLOOR: f64 = 1e-300;

/// The state of one random-walking sampling agent (paper §V-A, Eq. 12).
#[derive(Debug, Clone)]
pub struct MetropolisWalk {
    current: NodeId,
    origin: NodeId,
    steps: u64,
    messages: u64,
}

impl MetropolisWalk {
    /// Starts a walk at `origin`.
    ///
    /// # Errors
    ///
    /// [`SamplingError::UnknownNode`] if `origin` is not live in `g`.
    pub fn new(g: &Graph, origin: NodeId) -> Result<Self> {
        if !g.contains(origin) {
            return Err(SamplingError::UnknownNode(origin));
        }
        Ok(Self {
            current: origin,
            origin,
            steps: 0,
            messages: 0,
        })
    }

    /// Rebuilds a pooled walk from executor state: the batch executor
    /// advances walks on an immutable occasion snapshot and writes the
    /// final positions back through this constructor (crate-internal; the
    /// cumulative step/message tallies keep [`MetropolisWalk::steps`] and
    /// [`MetropolisWalk::messages`] consistent with sequential stepping).
    pub(crate) fn restore(current: NodeId, origin: NodeId, steps: u64, messages: u64) -> Self {
        Self {
            current,
            origin,
            steps,
            messages,
        }
    }

    /// The node the agent currently occupies.
    #[must_use]
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// The node that launched the walk.
    #[must_use]
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Number of steps taken (including lazy/rejected steps).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of node-to-node messages spent so far (accepted moves).
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// If the walk's current node has left the overlay (churn between
    /// sampling occasions), restart the agent from a given live node.
    ///
    /// # Errors
    ///
    /// [`SamplingError::UnknownNode`] if `node` is not live.
    pub fn relocate(&mut self, g: &Graph, node: NodeId) -> Result<()> {
        if !g.contains(node) {
            return Err(SamplingError::UnknownNode(node));
        }
        self.current = node;
        Ok(())
    }

    /// Advances the walk one step under weight function `w`. Returns
    /// whether the agent physically moved.
    ///
    /// # Errors
    ///
    /// * [`SamplingError::UnknownNode`] if the current node was removed
    ///   from the graph (caller should [`MetropolisWalk::relocate`]).
    /// * [`SamplingError::InvalidWeight`] on negative/non-finite weights.
    pub fn step<W: NodeWeight, R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        w: &W,
        rng: &mut R,
    ) -> Result<bool> {
        if !g.contains(self.current) {
            return Err(SamplingError::UnknownNode(self.current));
        }
        self.steps += 1;
        telemetry::SAMPLING_WALK_STEPS.inc();

        // Laziness ½.
        if rng.gen_bool(0.5) {
            telemetry::SAMPLING_MH_LAZY.inc();
            return Ok(false);
        }
        let neighbors = g.neighbors(self.current);
        if neighbors.is_empty() {
            return Ok(false);
        }
        let proposal = neighbors[rng.gen_range(0..neighbors.len())];
        telemetry::SAMPLING_MH_PROPOSALS.inc();

        let w_i = checked_weight(w, self.current)?.max(ZERO_WEIGHT_FLOOR);
        let w_j = checked_weight(w, proposal)?;
        let d_i = g.degree(self.current) as f64;
        let d_j = g.degree(proposal) as f64;

        let accept = (w_j * d_i) / (w_i * d_j);
        if accept >= 1.0 || rng.gen_bool(accept.max(0.0)) {
            self.current = proposal;
            self.messages += 1;
            telemetry::SAMPLING_MH_ACCEPTS.inc();
            telemetry::SAMPLING_WALK_HOPS.inc();
            return Ok(true);
        }
        Ok(false)
    }

    /// Runs `n` steps (see [`MetropolisWalk::step`]).
    ///
    /// # Errors
    ///
    /// As for [`MetropolisWalk::step`].
    pub fn run<W: NodeWeight, R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        w: &W,
        steps: u64,
        rng: &mut R,
    ) -> Result<()> {
        for _ in 0..steps {
            self.step(g, w, rng)?;
        }
        Ok(())
    }
}

fn checked_weight<W: NodeWeight>(w: &W, node: NodeId) -> Result<f64> {
    let weight = w.weight(node);
    if !weight.is_finite() || weight < 0.0 {
        return Err(SamplingError::InvalidWeight { node, weight });
    }
    Ok(weight)
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::weight::uniform_weight;
    use digest_net::topology;
    use digest_stats::{total_variation_distance, DiscreteDistribution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Runs many independent walks of `len` steps and returns the
    /// empirical distribution of their end nodes over node-id order.
    fn empirical_endpoints(
        g: &Graph,
        w: &impl NodeWeight,
        len: u64,
        walks: usize,
        seed: u64,
    ) -> DiscreteDistribution {
        let mut r = rng(seed);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut index = vec![usize::MAX; g.id_upper_bound()];
        for (i, &v) in nodes.iter().enumerate() {
            index[v.0 as usize] = i;
        }
        let mut counts = vec![0u64; nodes.len()];
        for _ in 0..walks {
            let start = nodes[0];
            let mut walk = MetropolisWalk::new(g, start).unwrap();
            walk.run(g, w, len, &mut r).unwrap();
            counts[index[walk.current().0 as usize]] += 1;
        }
        DiscreteDistribution::from_counts(&counts).unwrap()
    }

    #[test]
    fn rejects_unknown_origin() {
        let g = topology::ring(5).unwrap();
        assert!(matches!(
            MetropolisWalk::new(&g, NodeId(99)),
            Err(SamplingError::UnknownNode(_))
        ));
    }

    #[test]
    fn uniform_target_on_ring_converges_to_uniform() {
        let g = topology::ring(8).unwrap();
        let w = uniform_weight();
        let emp = empirical_endpoints(&g, &w, 200, 20_000, 1);
        let target = DiscreteDistribution::uniform(8).unwrap();
        let tvd = total_variation_distance(&emp, &target).unwrap();
        assert!(tvd < 0.03, "TVD = {tvd}");
    }

    #[test]
    fn uniform_target_on_star_corrects_degree_bias() {
        // A naive walk would sit at the hub half the time; Metropolis with
        // uniform weights must visit leaves equally.
        let g = topology::star(9).unwrap(); // hub + 8 leaves
        let w = uniform_weight();
        let emp = empirical_endpoints(&g, &w, 300, 30_000, 2);
        let target = DiscreteDistribution::uniform(9).unwrap();
        let tvd = total_variation_distance(&emp, &target).unwrap();
        assert!(tvd < 0.03, "TVD = {tvd}");
    }

    #[test]
    fn nonuniform_target_is_reached() {
        // Weight node v by (v+1): stationary ∝ 1,2,3,…
        let g = topology::complete(5).unwrap();
        let w = |v: NodeId| f64::from(v.0) + 1.0;
        let emp = empirical_endpoints(&g, &w, 120, 30_000, 3);
        let target = DiscreteDistribution::from_weights(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let tvd = total_variation_distance(&emp, &target).unwrap();
        assert!(tvd < 0.03, "TVD = {tvd}");
    }

    #[test]
    fn zero_weight_nodes_are_avoided_at_stationarity() {
        let g = topology::complete(4).unwrap();
        // Node 0 has zero weight.
        let w = |v: NodeId| if v.0 == 0 { 0.0 } else { 1.0 };
        let emp = empirical_endpoints(&g, &w, 150, 20_000, 4);
        assert!(
            emp.prob(0) < 0.01,
            "zero-weight node visited: {}",
            emp.prob(0)
        );
        for i in 1..4 {
            assert!((emp.prob(i) - 1.0 / 3.0).abs() < 0.03);
        }
    }

    #[test]
    fn walk_starting_at_zero_weight_node_escapes() {
        let g = topology::ring(5).unwrap();
        let w = |v: NodeId| if v.0 == 0 { 0.0 } else { 1.0 };
        let mut r = rng(5);
        let mut walk = MetropolisWalk::new(&g, NodeId(0)).unwrap();
        walk.run(&g, &w, 50, &mut r).unwrap();
        assert_ne!(walk.current(), NodeId(0));
    }

    #[test]
    fn negative_weight_is_an_error() {
        let g = topology::ring(5).unwrap();
        let w = |_: NodeId| -1.0;
        let mut r = rng(6);
        let mut walk = MetropolisWalk::new(&g, NodeId(0)).unwrap();
        // The first non-lazy step must surface the invalid weight.
        let mut saw_error = false;
        for _ in 0..20 {
            if walk.step(&g, &w, &mut r).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error);
    }

    #[test]
    fn messages_count_accepted_moves_only() {
        let g = topology::ring(6).unwrap();
        let w = uniform_weight();
        let mut r = rng(7);
        let mut walk = MetropolisWalk::new(&g, NodeId(0)).unwrap();
        let mut moves = 0;
        for _ in 0..100 {
            if walk.step(&g, &w, &mut r).unwrap() {
                moves += 1;
            }
        }
        assert_eq!(walk.messages(), moves);
        assert_eq!(walk.steps(), 100);
        // On a uniform-weight ring every proposal is accepted → moves ≈ half
        // the steps (laziness).
        assert!(moves > 30 && moves < 70, "moves = {moves}");
    }

    #[test]
    fn departed_current_node_surfaces_error_and_relocate_recovers() {
        let mut g = topology::ring(5).unwrap();
        let w = uniform_weight();
        let mut r = rng(8);
        let mut walk = MetropolisWalk::new(&g, NodeId(2)).unwrap();
        g.remove_node(NodeId(2)).unwrap();
        assert!(matches!(
            walk.step(&g, &w, &mut r),
            Err(SamplingError::UnknownNode(_))
        ));
        walk.relocate(&g, NodeId(0)).unwrap();
        assert!(walk.step(&g, &w, &mut r).is_ok());
        assert!(walk.relocate(&g, NodeId(2)).is_err());
    }

    #[test]
    fn isolated_node_walk_stays_put() {
        let mut g = digest_net::Graph::new();
        let a = g.add_node();
        let w = uniform_weight();
        let mut r = rng(9);
        let mut walk = MetropolisWalk::new(&g, a).unwrap();
        walk.run(&g, &w, 10, &mut r).unwrap();
        assert_eq!(walk.current(), a);
        assert_eq!(walk.messages(), 0);
    }
}
