//! Reusable walk-batch arenas: zero steady-state allocation for the
//! occasion hot path.
//!
//! PR 3's executor allocated three vectors per `sample_tuples` batch
//! (the slot task list, the slot-indexed result table, and the outcome
//! list), every occasion, forever. [`WalkArena`] owns those buffers for
//! the lifetime of a `SamplingOperator` and recycles them across batches
//! and occasions: `clear()` + `resize` keep capacity, so after the first
//! occasion at a given panel size the dispatch path performs no heap
//! allocation of its own. (Per-slot state — the ChaCha8 stream and the
//! walk cursor — already lives on the worker's stack; the only
//! per-sample allocation left is the unavoidable clone of the sampled
//! tuple out of the database.)
//!
//! The arena is scratch, not state: its contents are meaningful only
//! *during* one `run_tuple_batch` call, and the operator drains
//! `outcomes` immediately after. `Clone` therefore yields a fresh empty
//! arena (cloned operators share no buffers and need none).

use crate::executor::{SlotOutcome, SlotTask};
use crate::sync::OnceLock;
use crate::Result;

/// Retained buffers for one operator's walk batches.
#[derive(Debug, Default)]
pub(crate) struct WalkArena {
    /// Per-slot work orders, fully written before workers start.
    pub(crate) tasks: Vec<SlotTask>,
    /// Slot-indexed reassembly table the workers fill lock-free (each
    /// cell written by exactly one worker via `publish_slot`; always
    /// returned to the arena all-empty, capacity intact).
    pub(crate) results: Vec<OnceLock<Result<SlotOutcome>>>,
    /// Slot-ordered outcomes of the last successful batch; drained by
    /// the operator.
    pub(crate) outcomes: Vec<SlotOutcome>,
}

impl WalkArena {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Drops every retained buffer (used by `SamplingOperator::reset`
    /// so a reset operator holds no memory from its previous life).
    pub(crate) fn release(&mut self) {
        *self = Self::new();
    }
}

impl Clone for WalkArena {
    fn clone(&self) -> Self {
        Self::new()
    }
}
