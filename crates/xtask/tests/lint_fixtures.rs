//! Fixture tests for the `cargo xtask lint` rules: each seeded violation
//! in `tests/fixtures/` must be flagged, the clean fixture must pass, and
//! the allowlist must enforce its shrink-only contract.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{
    lint_float_discipline, lint_no_hash_collections, lint_no_panic, lint_paper_refs,
    lint_workspace, Rule, R1_CRATES, R2_CRATES, R3_CRATES,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

#[test]
fn r1_flags_each_seeded_panic_construct() {
    let findings = lint_no_panic("fixtures/r1_panic.rs", &fixture("r1_panic.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R1Panic));
    for needle in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
        assert!(
            findings.iter().any(|f| f.message.contains(needle)),
            "seeded `{needle}` violation not flagged: {findings:?}"
        );
    }
    // Exactly the four seeded sites: the string literal mention and the
    // unwrap/expect inside `#[cfg(test)]` must not count.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn r2_flags_hash_collections_outside_tests() {
    let findings = lint_no_hash_collections("fixtures/r2_hash.rs", &fixture("r2_hash.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R2HashCollection));
    assert!(findings.iter().any(|f| f.message.contains("HashMap")));
    assert!(findings.iter().any(|f| f.message.contains("HashSet")));
    // Two `use` lines + two field declarations; the `MyHashMapLike` name
    // and the test-module HashMap must not count.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn r3_flags_float_compares_and_narrowing_casts() {
    let findings = lint_float_discipline("fixtures/r3_float.rs", &fixture("r3_float.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R3FloatDiscipline));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`==`") && f.message.contains("0.0")),
        "seeded float `==` not flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`!=`") && f.message.contains("1.5")),
        "seeded float `!=` not flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("as u32")),
        "seeded narrowing cast not flagged: {findings:?}"
    );
    // The widening cast, integer compare, and `<=`/`>=` bounds are clean.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn r4_flags_uncited_public_items_only() {
    let findings = lint_paper_refs("fixtures/r4_missing_ref.rs", &fixture("r4_missing_ref.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R4PaperRef));
    let named: Vec<&str> = findings
        .iter()
        .filter_map(|f| {
            f.message
                .split('`')
                .nth(1)
                .filter(|_| f.message.contains("lacks a paper reference"))
        })
        .collect();
    assert!(named.contains(&"uncited_sample_size"), "{findings:?}");
    assert!(named.contains(&"UncitedPanel"), "{findings:?}");
    // `CitedConfig` (§) and `cited_combine` (Eq.) are properly referenced.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let source = fixture("clean.rs");
    assert!(lint_no_panic("fixtures/clean.rs", &source).is_empty());
    assert!(lint_no_hash_collections("fixtures/clean.rs", &source).is_empty());
    assert!(lint_float_discipline("fixtures/clean.rs", &source).is_empty());
    assert!(lint_paper_refs("fixtures/clean.rs", &source).is_empty());
}

/// Builds a throwaway workspace skeleton (every crate `lint_workspace`
/// scans, with empty lib sources) under the OS temp dir.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-lint-{}-{tag}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).expect("clear stale temp workspace");
        }
        // Every crate any rule scans, derived from the rule constants so
        // the skeleton tracks future crate-list growth.
        let mut crates: Vec<&str> = Vec::new();
        for set in [R1_CRATES, R2_CRATES, R3_CRATES] {
            for krate in set {
                if !crates.contains(krate) {
                    crates.push(krate);
                }
            }
        }
        for krate in crates {
            let src = root.join("crates").join(krate).join("src");
            fs::create_dir_all(&src).expect("create temp crate dir");
            fs::write(src.join("lib.rs"), "// empty\n").expect("write empty lib");
        }
        fs::create_dir_all(root.join("crates/xtask")).expect("create xtask dir");
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        fs::write(self.root.join(rel), contents).expect("write temp file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn workspace_scan_reports_seeded_violation_and_clean_tree_passes() {
    let ws = TempWorkspace::new("scan");
    let findings = lint_workspace(&ws.root).expect("lint clean tree");
    assert!(findings.is_empty(), "clean tree must pass: {findings:?}");

    ws.write(
        "crates/net/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint seeded tree");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::R1Panic);
    assert_eq!(findings[0].file, "crates/net/src/lib.rs");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn allowlist_justifies_exact_counts_and_flags_drift() {
    let ws = TempWorkspace::new("allow");
    ws.write(
        "crates/db/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );

    // Exact-count entry: the finding is justified, the gate passes.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with exact allowlist");
    assert!(findings.is_empty(), "{findings:?}");

    // Slack entry (allows 3, only 1 remains): shrink-only rule fires.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 3 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with slack allowlist");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Allowlist);
    assert!(findings[0].message.contains("slack entry"), "{findings:?}");

    // Stale entry (violation fixed, entry left behind): also a finding.
    ws.write("crates/db/src/lib.rs", "// fixed\n");
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with stale allowlist");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Allowlist);
    assert!(findings[0].message.contains("stale entry"), "{findings:?}");

    // Undocumented entry: allowlist syntax error surfaces as Err.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1\n",
    );
    let err = lint_workspace(&ws.root).expect_err("undocumented entry must be rejected");
    assert!(err.contains("justification"), "{err}");
}

#[test]
fn allowlist_does_not_mask_count_growth() {
    let ws = TempWorkspace::new("growth");
    // Two unwraps, but only one is allowlisted: the gate must fail.
    ws.write(
        "crates/db/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n\
         pub fn g(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint grown tree");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::R1Panic && f.file == "crates/db/src/lib.rs"),
        "count growth past the allowlisted budget must fail: {findings:?}"
    );
}
