//! Fixture tests for the `cargo xtask lint` rules: each seeded violation
//! in `tests/fixtures/` must be flagged, the clean fixture must pass, and
//! the allowlist must enforce its shrink-only contract.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{
    lint_concurrency, lint_float_discipline, lint_hot_path_alloc, lint_no_hash_collections,
    lint_no_panic, lint_paper_refs, lint_rng_discipline, lint_workspace, Remedy, Rule, R1_CRATES,
    R2_CRATES, R3_CRATES, R5_SEEDING_MODULES,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

#[test]
fn r1_flags_each_seeded_panic_construct() {
    let findings = lint_no_panic("fixtures/r1_panic.rs", &fixture("r1_panic.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R1Panic));
    for needle in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
        assert!(
            findings.iter().any(|f| f.message.contains(needle)),
            "seeded `{needle}` violation not flagged: {findings:?}"
        );
    }
    // Exactly the four seeded sites: the string literal mention and the
    // unwrap/expect inside `#[cfg(test)]` must not count.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn r2_flags_hash_collections_outside_tests() {
    let findings = lint_no_hash_collections("fixtures/r2_hash.rs", &fixture("r2_hash.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R2HashCollection));
    assert!(findings.iter().any(|f| f.message.contains("HashMap")));
    assert!(findings.iter().any(|f| f.message.contains("HashSet")));
    // Two `use` lines + two field declarations; the `MyHashMapLike` name
    // and the test-module HashMap must not count.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn r3_flags_float_compares_and_narrowing_casts() {
    let findings = lint_float_discipline("fixtures/r3_float.rs", &fixture("r3_float.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R3FloatDiscipline));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`==`") && f.message.contains("0.0")),
        "seeded float `==` not flagged: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`!=`") && f.message.contains("1.5")),
        "seeded float `!=` not flagged: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("as u32")),
        "seeded narrowing cast not flagged: {findings:?}"
    );
    // The widening cast, integer compare, and `<=`/`>=` bounds are clean.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn r4_flags_uncited_public_items_only() {
    let findings = lint_paper_refs("fixtures/r4_missing_ref.rs", &fixture("r4_missing_ref.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R4PaperRef));
    let named: Vec<&str> = findings
        .iter()
        .filter_map(|f| {
            f.message
                .split('`')
                .nth(1)
                .filter(|_| f.message.contains("lacks a paper reference"))
        })
        .collect();
    assert!(named.contains(&"uncited_sample_size"), "{findings:?}");
    assert!(named.contains(&"UncitedPanel"), "{findings:?}");
    // `CitedConfig` (§) and `cited_combine` (Eq.) are properly referenced.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn r5_flags_entropy_and_ad_hoc_seeding_outside_seeding_modules() {
    let findings = lint_rng_discipline("fixtures/r5_rng.rs", &fixture("r5_rng.rs"), false);
    assert!(findings.iter().all(|f| f.rule == Rule::R5RngDiscipline));
    // Entropy draws are hard failures; ad-hoc seeding is allowlistable.
    for banned in ["thread_rng", "from_entropy"] {
        let found = findings
            .iter()
            .find(|f| f.message.contains(banned))
            .unwrap_or_else(|| panic!("seeded `{banned}` violation not flagged: {findings:?}"));
        assert_eq!(found.remedy, Remedy::Fix);
        assert!(found.allow_token.is_none());
    }
    for token in ["seed_from_u64", "from_seed"] {
        let found = findings
            .iter()
            .find(|f| f.allow_token == Some(token))
            .unwrap_or_else(|| panic!("seeded `{token}` violation not flagged: {findings:?}"));
        assert_eq!(found.remedy, Remedy::AllowlistEntry);
    }
    // The doc-comment mention, the string literal, and the test-module
    // seeding must not count.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn r5_seeding_modules_may_construct_rngs() {
    let findings = lint_rng_discipline("fixtures/r5_rng.rs", &fixture("r5_rng.rs"), true);
    // Entropy draws stay banned even in seeding modules; the two ad-hoc
    // seeding sites become legal.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .all(|f| f.message.contains("OS entropy") && f.allow_token.is_none()));
}

#[test]
fn r6_flags_unjustified_relaxed_locks_and_unsafe() {
    let findings = lint_concurrency("fixtures/r6_concurrency.rs", &fixture("r6_concurrency.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R6Concurrency));

    // Two unjustified Relaxed sites (bare, and marker without a reason);
    // the same-line and preceding-line justifications are clean.
    let relaxed: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("relaxed-ok"))
        .collect();
    assert_eq!(relaxed.len(), 2, "{findings:?}");
    assert!(relaxed.iter().all(|f| f.remedy == Remedy::JustifyComment));

    // Blocking primitives: Mutex ×2 (use + field), RwLock ×2, mpsc ×3
    // (use + signature + body), each allowlistable.
    for (token, expected) in [("mutex", 2), ("rwlock", 2), ("channel", 3)] {
        let hits = findings
            .iter()
            .filter(|f| f.allow_token == Some(token))
            .count();
        assert_eq!(hits, expected, "token {token}: {findings:?}");
    }

    // One uncommented unsafe; the SAFETY-commented one is clean.
    let unsafe_hits: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("SAFETY"))
        .collect();
    assert_eq!(unsafe_hits.len(), 1, "{findings:?}");
    assert_eq!(unsafe_hits[0].remedy, Remedy::JustifyComment);

    assert_eq!(findings.len(), 10, "{findings:?}");
}

#[test]
fn r7_flags_allocations_only_inside_tagged_bodies() {
    let findings = lint_hot_path_alloc("fixtures/r7_alloc.rs", &fixture("r7_alloc.rs"));
    assert!(findings.iter().all(|f| f.rule == Rule::R7HotPathAlloc));
    assert!(findings.iter().all(|f| f.remedy == Remedy::Fix));
    // One violation per allocating construct in the tagged body; the
    // untagged fns, the prose mention, and the tagged test fn are exempt.
    for needle in [
        "Vec::new", "vec!", ".collect", ".to_vec", ".clone", "Box::new", "format!",
    ] {
        assert!(
            findings.iter().any(|f| f.message.contains(needle)),
            "seeded `{needle}` violation not flagged: {findings:?}"
        );
    }
    assert_eq!(findings.len(), 7, "{findings:?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let source = fixture("clean.rs");
    assert!(lint_no_panic("fixtures/clean.rs", &source).is_empty());
    assert!(lint_no_hash_collections("fixtures/clean.rs", &source).is_empty());
    assert!(lint_float_discipline("fixtures/clean.rs", &source).is_empty());
    assert!(lint_paper_refs("fixtures/clean.rs", &source).is_empty());
    assert!(lint_rng_discipline("fixtures/clean.rs", &source, false).is_empty());
    assert!(lint_concurrency("fixtures/clean.rs", &source).is_empty());
    assert!(lint_hot_path_alloc("fixtures/clean.rs", &source).is_empty());
}

/// Builds a throwaway workspace skeleton (every crate `lint_workspace`
/// scans, with empty lib sources) under the OS temp dir.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("xtask-lint-{}-{tag}", std::process::id()));
        if root.exists() {
            fs::remove_dir_all(&root).expect("clear stale temp workspace");
        }
        // Every crate any rule scans, derived from the rule constants so
        // the skeleton tracks future crate-list growth.
        let mut crates: Vec<&str> = Vec::new();
        for set in [R1_CRATES, R2_CRATES, R3_CRATES] {
            for krate in set {
                if !crates.contains(krate) {
                    crates.push(krate);
                }
            }
        }
        for krate in crates {
            let src = root.join("crates").join(krate).join("src");
            fs::create_dir_all(&src).expect("create temp crate dir");
            fs::write(src.join("lib.rs"), "// empty\n").expect("write empty lib");
        }
        fs::create_dir_all(root.join("crates/xtask")).expect("create xtask dir");
        Self { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        fs::write(self.root.join(rel), contents).expect("write temp file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn workspace_scan_reports_seeded_violation_and_clean_tree_passes() {
    let ws = TempWorkspace::new("scan");
    let findings = lint_workspace(&ws.root).expect("lint clean tree");
    assert!(findings.is_empty(), "clean tree must pass: {findings:?}");

    ws.write(
        "crates/net/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint seeded tree");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::R1Panic);
    assert_eq!(findings[0].file, "crates/net/src/lib.rs");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn allowlist_justifies_exact_counts_and_flags_drift() {
    let ws = TempWorkspace::new("allow");
    ws.write(
        "crates/db/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );

    // Exact-count entry: the finding is justified, the gate passes.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with exact allowlist");
    assert!(findings.is_empty(), "{findings:?}");

    // Slack entry (allows 3, only 1 remains): shrink-only rule fires.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 3 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with slack allowlist");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Allowlist);
    assert!(findings[0].message.contains("slack entry"), "{findings:?}");

    // Stale entry (violation fixed, entry left behind): also a finding.
    ws.write("crates/db/src/lib.rs", "// fixed\n");
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with stale allowlist");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Allowlist);
    assert!(findings[0].message.contains("stale entry"), "{findings:?}");

    // Undocumented entry: allowlist syntax error surfaces as Err.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1\n",
    );
    let err = lint_workspace(&ws.root).expect_err("undocumented entry must be rejected");
    assert!(err.contains("justification"), "{err}");
}

#[test]
fn allowlist_does_not_mask_count_growth() {
    let ws = TempWorkspace::new("growth");
    // Two unwraps, but only one is allowlisted: the gate must fail.
    ws.write(
        "crates/db/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n\
         pub fn g(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R1 crates/db/src/lib.rs unwrap 1 # legacy slot invariant\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint grown tree");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::R1Panic && f.file == "crates/db/src/lib.rs"),
        "count growth past the allowlisted budget must fail: {findings:?}"
    );
}

#[test]
fn r5_allowlist_round_trip() {
    let ws = TempWorkspace::new("r5allow");
    ws.write(
        "crates/workload/src/lib.rs",
        "pub fn new_world(seed: u64) -> u64 {\n    \
             let _rng = ChaCha8Rng::seed_from_u64(seed);\n    \
             seed\n\
         }\n",
    );

    // Unallowlisted: one R5 finding carrying the allowlist token.
    let findings = lint_workspace(&ws.root).expect("lint seeded tree");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::R5RngDiscipline);
    assert_eq!(findings[0].allow_token, Some("seed_from_u64"));

    // Exact-count entry: the gate passes.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R5 crates/workload/src/lib.rs seed_from_u64 1 # root-seed derivation\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with R5 allowlist");
    assert!(findings.is_empty(), "{findings:?}");

    // Stale after the site is fixed: shrink-only rule fires.
    ws.write("crates/workload/src/lib.rs", "// fixed\n");
    let findings = lint_workspace(&ws.root).expect("lint with stale R5 entry");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Allowlist);
    assert!(findings[0].message.contains("stale entry"), "{findings:?}");
}

#[test]
fn r5_seeding_modules_are_exempt_in_workspace_scan() {
    let ws = TempWorkspace::new("r5seed");
    // Write an ad-hoc seeding site into a designated seeding module: the
    // scan must not flag it (and the fixture derives the path from the
    // constant so renames keep the test honest).
    let module = R5_SEEDING_MODULES[0];
    ws.write(
        module,
        "pub fn walk_stream_seed(occasion_seed: u64, slot: u64) -> u64 {\n    \
             let _rng = ChaCha8Rng::seed_from_u64(occasion_seed ^ slot);\n    \
             occasion_seed\n\
         }\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint seeding module");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r6_allowlist_covers_locks_but_never_missing_justifications() {
    let ws = TempWorkspace::new("r6allow");
    ws.write(
        "crates/telemetry/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub static SINK: Mutex<Option<u64>> = Mutex::new(None);\n",
    );

    // Two Mutex sites, allowlisted exactly: the gate passes.
    ws.write(
        "crates/xtask/lint-allowlist.txt",
        "R6 crates/telemetry/src/lib.rs mutex 2 # sink registration is off the hot path\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with R6 allowlist");
    assert!(findings.is_empty(), "{findings:?}");

    // An unjustified Relaxed is NOT allowlistable: it must surface even
    // with a lock allowlist in place.
    ws.write(
        "crates/telemetry/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub static SINK: Mutex<Option<u64>> = Mutex::new(None);\n\
         pub fn bump(c: &std::sync::atomic::AtomicU64) {\n    \
             c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);\n\
         }\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint with unjustified Relaxed");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::R6Concurrency);
    assert_eq!(findings[0].remedy, Remedy::JustifyComment);
}

#[test]
fn r7_findings_surface_in_workspace_scan() {
    let ws = TempWorkspace::new("r7scan");
    ws.write(
        "crates/sampling/src/lib.rs",
        "/// xtask: no-alloc\n\
         pub fn hot(buf: &mut [u64]) -> u64 {\n    \
             let v = buf.to_vec();\n    \
             v[0]\n\
         }\n",
    );
    let findings = lint_workspace(&ws.root).expect("lint tagged allocation");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::R7HotPathAlloc);
    assert_eq!(findings[0].line, 3);
}
