//! R3 fixture: bare float comparisons and narrowing casts.

pub fn is_zero(x: f64) -> bool {
    // SEEDED: bare `==` against a float literal.
    x == 0.0
}

pub fn differs(x: f64) -> bool {
    // SEEDED: bare `!=` against a float literal.
    x != 1.5
}

pub fn narrow(n: usize) -> u32 {
    // SEEDED: narrowing `as` cast.
    n as u32
}

pub fn widen(n: u32) -> u64 {
    // Widening casts are fine and must NOT be flagged.
    n as u64
}

pub fn int_compare(a: u64, b: u64) -> bool {
    // Integer comparisons are fine.
    a == b
}

pub fn bounded(a: f64, b: f64) -> bool {
    // `<=` / `>=` are compound operators, not bare `==`.
    a <= b && a >= 0.0
}
