//! Fixture: seeded R6 concurrency-hygiene violations (text-only, never
//! compiled).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, RwLock};

static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Monotone counter with a same-line justification — clean.
pub fn justified_same_line() {
    EVENTS.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone event counter
}

/// Justification on the preceding line — also clean.
pub fn justified_previous_line() {
    // relaxed-ok: monotone event counter, read only at shutdown
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Unjustified relaxed ordering — violation.
pub fn unjustified() {
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Marker without a reason — the `<why>` is mandatory; still a violation.
pub fn empty_reason() {
    EVENTS.fetch_add(1, Ordering::Relaxed); // relaxed-ok:
}

/// Blocking primitives in sim-visible code — violations (allowlistable).
pub struct Locked {
    table: Mutex<Vec<u64>>,
    cache: RwLock<Vec<u64>>,
}

/// Channel construction — violation (`mpsc`, allowlist token `channel`).
pub fn make_channel() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}

/// Commented unsafe — clean.
pub fn commented_unsafe(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` is valid and aligned for reads.
    unsafe { *p }
}

/// Uncommented unsafe — violation.
pub fn uncommented_unsafe(p: *const u64) -> u64 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_locks_and_relaxed() {
        EVENTS.store(0, Ordering::Relaxed);
        let _guard = Mutex::new(0u8);
    }
}
