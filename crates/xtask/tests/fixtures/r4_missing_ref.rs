//! R4 fixture: public estimator items without paper references.

/// The snapshot estimator configuration (paper §IV-B1, Eq. 6).
pub struct CitedConfig {
    /// Pilot sample size.
    pub pilot: usize,
}

/// Sizes the sample for the requested precision.
// SEEDED: doc comment above lacks a `§` or `Eq.` reference.
pub fn uncited_sample_size(epsilon: f64) -> usize {
    epsilon.recip().max(1.0) as usize
}

/// The repeated estimator panel (undocumented provenance).
// SEEDED: struct doc lacks a paper reference.
pub struct UncitedPanel {
    /// Retained handles.
    pub retained: Vec<u64>,
}

/// Combines two occasions per the regression estimator (Eq. 7).
pub fn cited_combine(a: f64, b: f64) -> f64 {
    0.5 * (a + b)
}
