//! Negative fixture: passes every rule.

use std::collections::BTreeMap;

/// Accumulates per-key counts in deterministic order (paper §VI-A cost
/// accounting).
pub struct CleanAccumulator {
    counts: BTreeMap<u32, u64>,
}

/// Creates an empty accumulator (paper §VI-A).
pub fn new_accumulator() -> CleanAccumulator {
    CleanAccumulator {
        counts: BTreeMap::new(),
    }
}

/// Looks a count up, threading the miss as an Option (paper §VI-A).
pub fn lookup(acc: &CleanAccumulator, key: u32) -> Option<u64> {
    acc.counts.get(&key).copied()
}

/// Tolerance-based float equality (paper §II fixed-precision semantics).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Checked narrowing (paper §III handle encoding).
pub fn checked_narrow(n: usize) -> Option<u64> {
    u64::try_from(n).ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
