//! Fixture: seeded R5 RNG-discipline violations (text-only, never
//! compiled). Scanned as a non-seeding-module file.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws OS entropy — banned outright, no allowlist escape.
pub fn entropy_draws() -> u64 {
    let mut a = rand::thread_rng();
    let mut b = ChaCha8Rng::from_entropy();
    a.gen::<u64>() ^ b.gen::<u64>()
}

/// Ad-hoc seeding outside a designated seeding module — allowlistable.
pub fn ad_hoc_seeding(seed: u64) -> ChaCha8Rng {
    let _scratch = ChaCha8Rng::from_seed([0u8; 32]);
    ChaCha8Rng::seed_from_u64(seed)
}

/// Prose and literals must not count: thread_rng in a doc comment is fine.
pub fn innocent() -> &'static str {
    "call thread_rng() or seed_from_u64 here"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rng_construction_is_fine() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = ad_hoc_seeding(rng.gen());
    }
}
