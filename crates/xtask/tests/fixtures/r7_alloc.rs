//! Fixture: seeded R7 hot-path allocation violations (text-only, never
//! compiled).

/// Hot-path walk step: arena buffers only, one violation per line below.
/// xtask: no-alloc
pub fn hot_step(buf: &mut [u64], x: u64) -> u64 {
    let v: Vec<u64> = Vec::new();
    let w = vec![0u64; 4];
    let c: Vec<u64> = buf.iter().copied().collect();
    let d = buf.to_vec();
    let e = w.clone();
    let b = Box::new(x);
    let s = format!("{x}");
    buf[0] + x + v.len() as u64 + c.len() as u64 + d.len() as u64 + e.len() as u64 + *b
        + s.len() as u64
}

/// Tagged but allocation-free — clean.
/// xtask: no-alloc
pub fn hot_clean(buf: &mut [u64], x: u64) -> u64 {
    buf[0] = buf[0].wrapping_add(x);
    buf[0]
}

/// Untagged: allocation is fine here.
pub fn cold(x: u64) -> Vec<u64> {
    vec![x; 8]
}

/// Prose that merely mentions the xtask: no-alloc tag must not tag the
/// next function.
pub fn cold_after_prose(x: u64) -> Vec<u64> {
    vec![x; 8]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xtask: no-alloc
    #[test]
    fn tagged_test_code_is_exempt() {
        let _ = cold(3).clone();
    }
}
