//! R1 fixture: panic-capable constructs in library-position code.
//! Each seeded violation is marked `SEEDED:` for the test assertions.

pub fn lookup(map: &std::collections::BTreeMap<u32, f64>, key: u32) -> f64 {
    // SEEDED: unwrap outside cfg(test).
    *map.get(&key).unwrap()
}

pub fn must_have(opt: Option<u64>) -> u64 {
    // SEEDED: expect outside cfg(test).
    opt.expect("value required")
}

pub fn crash() {
    // SEEDED: explicit panic.
    panic!("boom");
}

pub fn impossible(x: u8) -> u8 {
    match x {
        0 => 1,
        // SEEDED: unreachable outside cfg(test).
        _ => unreachable!(),
    }
}

// The string below must NOT count: it only *mentions* ".unwrap()".
pub fn docs() -> &'static str {
    "never call .unwrap() in library code"
}

#[cfg(test)]
mod tests {
    // Panics in test code are fine and must NOT be flagged.
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Option<u32> = Some(4);
        assert_eq!(w.expect("present"), 4);
    }
}
