//! R2 fixture: nondeterministic hash collections in sim-visible code.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Accumulator {
    // SEEDED: HashMap field — iteration order varies across runs.
    pub counts: HashMap<u32, u64>,
    // SEEDED: HashSet field.
    pub seen: HashSet<u32>,
}

// `MyHashMapLike` must NOT match: word-boundary check.
pub struct MyHashMapLike;

#[cfg(test)]
mod tests {
    // Hash collections in test-only code are fine.
    use std::collections::HashMap;

    #[test]
    fn hash_in_tests_is_allowed() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
