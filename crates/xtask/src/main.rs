//! `cargo xtask` — workspace automation for Digest.
//!
//! Subcommands:
//!
//! * `lint` — run the custom static-analysis pass (rules R1–R7; see the
//!   library crate docs). Exits non-zero on any finding. `--json` emits a
//!   machine-readable findings document on stdout; `--github` emits
//!   GitHub Actions `::error` workflow annotations alongside the human
//!   output so findings surface inline on pull-request diffs.
//! * `determinism` — build the CLI, run a fixed-seed scenario twice —
//!   both with and without `--telemetry` — and byte-diff the stdout
//!   traces and the JSONL event streams. Also replays each scenario
//!   with `--sampling-workers 4` and requires the trace to match the
//!   inline run byte-for-byte (worker-count independence), with
//!   `DIGEST_SNAPSHOT_CACHE=0` to prove the occasion-snapshot cache
//!   never moves a byte of output even under churn, and with
//!   `--event-loop` to prove the hint-driven event scheduler replays
//!   the dense tick sweep exactly. A sketch-aggregate leg replays the
//!   `p90+distinct+top4` mux mix the same way (replay + workers=4
//!   byte-identity) since sweep estimators must be RNG-free. Exits
//!   non-zero on any divergence (including telemetry perturbing the
//!   plain trace).
//! * `telemetry-schema` — run a fixed-seed scenario with `--telemetry`
//!   and validate every emitted JSONL line against the event schema,
//!   requiring coverage of the core event kinds.
//! * `audit` — replay the fixed-seed temperature scenario under
//!   `--audit --audit-json --trace-out`, require the audit report,
//!   Chrome trace, and stdout to be byte-identical across replays and
//!   worker counts, require the audited stdout to extend the plain
//!   stdout, and gate on the report itself: the observed ε-violation
//!   rate must stay within `(1 − p)` plus three-σ binomial slack and
//!   the confidence-calibration drift within a pinned tolerance.
//!
//! All are wired into CI; `cargo xtask lint` is also the local
//! pre-commit gate.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint              run the R1–R7 static-analysis pass over the workspace\n\
                             (--json: machine-readable output; --github: emit\n\
                             GitHub Actions ::error annotations)\n\
           determinism       run fixed-seed scenarios twice (with and without\n\
                             --telemetry) and byte-diff traces and event streams\n\
           telemetry-schema  validate a --telemetry JSONL stream against the schema\n\
           audit             replay a fixed-seed run under --audit/--trace-out and\n\
                             gate on the guarantee report (violation rate within\n\
                             binomial slack, calibration drift within tolerance)\n\
           help              show this message"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    let root = workspace_root();
    match command.as_str() {
        "lint" => {
            let mut json = false;
            let mut github = false;
            for flag in args {
                match flag.as_str() {
                    "--json" => json = true,
                    "--github" => github = true,
                    other => {
                        eprintln!("unknown lint flag `{other}`");
                        return usage();
                    }
                }
            }
            run_lint(&root, json, github)
        }
        "determinism" => run_determinism(&root),
        "telemetry-schema" => run_telemetry_schema(&root),
        "audit" => run_audit(&root),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown xtask command `{other}`");
            usage()
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn run_lint(root: &Path, json: bool, github: bool) -> ExitCode {
    if !json {
        println!("xtask lint: scanning workspace at {}", root.display());
    }
    match xtask::lint_workspace(root) {
        Ok(findings) => {
            if json {
                println!("{}", findings_json(&findings));
            } else if findings.is_empty() {
                println!(
                    "xtask lint: OK — rules {} all clean",
                    xtask::RULES
                        .iter()
                        .filter(|info| info.code != "ALLOW")
                        .map(|info| format!("{} ({})", info.code, info.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            } else {
                for finding in &findings {
                    eprintln!("{finding}");
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
            }
            if github {
                for finding in &findings {
                    println!("{}", github_annotation(finding));
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            if github {
                println!(
                    "::error title=xtask lint::{}",
                    github_escape_message(&message)
                );
            }
            ExitCode::FAILURE
        }
    }
}

/// Renders findings as a stable machine-readable JSON document (used by
/// CI tooling; hand-rolled so the gate stays std-only).
fn findings_json(findings: &[xtask::Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (idx, finding) in findings.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let info = finding.rule.info();
        out.push_str(&format!(
            "{{\"rule\":{},\"name\":{},\"file\":{},\"line\":{},\"message\":{},\
             \"remedy\":{},\"allow_token\":{}}}",
            json_string(info.code),
            json_string(info.name),
            json_string(&finding.file),
            finding.line,
            json_string(&finding.message),
            json_string(finding.remedy.label()),
            finding
                .allow_token
                .map_or_else(|| "null".to_string(), json_string),
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One GitHub Actions workflow-command annotation per finding; the runner
/// attaches these inline to the pull-request diff.
fn github_annotation(finding: &xtask::Finding) -> String {
    let info = finding.rule.info();
    format!(
        "::error file={},line={},title={}({})::{}",
        github_escape_property(&finding.file),
        finding.line.max(1),
        info.code,
        info.name,
        github_escape_message(&finding.message),
    )
}

/// Workflow-command data escaping (`%`, CR, LF).
fn github_escape_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Workflow-command property escaping (data escapes plus `:` and `,`).
fn github_escape_property(s: &str) -> String {
    github_escape_message(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// The fixed-seed scenario replayed twice by `cargo xtask determinism`.
///
/// Exercises both worlds, both estimator kinds, and the PRED scheduler so
/// the diff covers the whole sim → sampling → estimator → scheduler stack.
const DETERMINISM_RUNS: &[(&str, &[&str])] = &[
    (
        "temperature/rpt",
        &[
            "--world",
            "temperature",
            "--ticks",
            "60",
            "--seed",
            "20080402",
            "--scheduler",
            "pred3",
            "--estimator",
            "rpt",
            "SELECT AVG(temperature) FROM R WITH delta=8, epsilon=2, p=0.95",
        ],
    ),
    (
        "memory/indep",
        &[
            "--world",
            "memory",
            "--ticks",
            "40",
            "--seed",
            "8675309",
            "--scheduler",
            "all",
            "--estimator",
            "indep",
            "SELECT AVG(memory) FROM R WITH delta=200, epsilon=50, p=0.9",
        ],
    ),
];

/// The sketch-aggregate mux scenario (DESIGN.md §17): a percentile, a
/// `COUNT DISTINCT`, and a top-k heavy-hitter query served through one
/// shared `QueryMux` with per-kind default contracts. The sweep
/// estimators behind these kinds draw no randomness at all, so the
/// determinism leg demands byte-identical replays and worker-count
/// independence, and the audit leg gates each member's ε-violation rate
/// against its own `1 − p` binomial bound.
const SKETCH_ARGS: &[&str] = &[
    "--world",
    "temperature",
    "--ticks",
    "120",
    "--seed",
    "20080402",
    "--queries",
    "p90+distinct+top4",
];

fn build_cli(root: &Path, gate: &str) -> Result<PathBuf, ExitCode> {
    println!("xtask {gate}: building digest-cli (release)");
    let build = Command::new("cargo")
        .args(["build", "--release", "--bin", "digest-cli"])
        .current_dir(root)
        .status();
    match build {
        Ok(status) if status.success() => Ok(root.join("target/release/digest-cli")),
        Ok(status) => {
            eprintln!("xtask {gate}: cargo build failed with {status}");
            Err(ExitCode::FAILURE)
        }
        Err(e) => {
            eprintln!("xtask {gate}: failed to spawn cargo: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// A scenario's scratch JSONL path under `target/` (labels contain `/`).
fn telemetry_scratch(root: &Path, label: &str, run: usize) -> PathBuf {
    root.join("target").join(format!(
        "xtask-telemetry-{}-{run}.jsonl",
        label.replace('/', "-")
    ))
}

fn run_determinism(root: &Path) -> ExitCode {
    let cli = match build_cli(root, "determinism") {
        Ok(cli) => cli,
        Err(code) => return code,
    };

    let mut all_identical = true;
    for (label, args) in DETERMINISM_RUNS {
        print!("xtask determinism: scenario {label} ... ");
        let first = capture(&cli, args, root);
        let second = capture(&cli, args, root);
        let plain = match (first, second) {
            (Ok(a), Ok(b)) if a == b => {
                println!("identical ({} trace bytes)", a.len());
                Some(a)
            }
            (Ok(a), Ok(b)) => {
                println!("DIVERGED");
                report_divergence(&a, &b);
                all_identical = false;
                None
            }
            (Err(e), _) | (_, Err(e)) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label}: {e}");
                all_identical = false;
                None
            }
        };

        // Re-run with a parallel sampling executor: worker count must
        // never leak into results, so the trace must be byte-identical
        // to the plain (inline) run.
        print!("xtask determinism: scenario {label} (workers=4) ... ");
        let mut workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
        workers_args.extend_from_slice(args);
        match capture(&cli, &workers_args, root) {
            Ok(parallel) => match &plain {
                Some(plain) if *plain == parallel => {
                    println!("identical ({} trace bytes)", parallel.len());
                }
                Some(plain) => {
                    println!("DIVERGED (worker count leaked into the trace)");
                    report_divergence(plain, &parallel);
                    all_identical = false;
                }
                None => println!("skipped (no plain trace to compare against)"),
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (workers=4): {e}");
                all_identical = false;
            }
        }

        // Re-run with the occasion-snapshot cache disabled: caching is a
        // pure perf optimisation, so forcing a cold snapshot rebuild at
        // every occasion must not move a single byte of the trace. The
        // memory world churns the overlay every tick, so this leg also
        // replays the cache's patch/rebuild invalidation paths.
        print!("xtask determinism: scenario {label} (DIGEST_SNAPSHOT_CACHE=0) ... ");
        match capture_with_env(&cli, args, root, "DIGEST_SNAPSHOT_CACHE", "0") {
            Ok(uncached) => match &plain {
                Some(plain) if *plain == uncached => {
                    println!("identical ({} trace bytes)", uncached.len());
                }
                Some(plain) => {
                    println!("DIVERGED (snapshot cache leaked into the trace)");
                    report_divergence(plain, &uncached);
                    all_identical = false;
                }
                None => println!("skipped (no plain trace to compare against)"),
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (DIGEST_SNAPSHOT_CACHE=0): {e}");
                all_identical = false;
            }
        }

        // Re-run with the event-driven scheduler loop: due-time hints
        // may only ever name provably idle spans, so replacing the dense
        // tick sweep with hint-driven skipping must not move a byte of
        // the trace.
        print!("xtask determinism: scenario {label} (--event-loop) ... ");
        let mut event_args: Vec<&str> = vec!["--event-loop"];
        event_args.extend_from_slice(args);
        match capture(&cli, &event_args, root) {
            Ok(evented) => match &plain {
                Some(plain) if *plain == evented => {
                    println!("identical ({} trace bytes)", evented.len());
                }
                Some(plain) => {
                    println!("DIVERGED (event loop leaked into the trace)");
                    report_divergence(plain, &evented);
                    all_identical = false;
                }
                None => println!("skipped (no plain trace to compare against)"),
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (--event-loop): {e}");
                all_identical = false;
            }
        }

        // Re-run with --telemetry: the JSONL streams must be
        // byte-identical across same-seed runs, and telemetry must not
        // perturb the plain trace (its stdout extends the plain stdout).
        print!("xtask determinism: scenario {label} (+telemetry) ... ");
        match capture_with_telemetry(&cli, label, args, root) {
            Ok((stdout_a, events_a)) => match capture_with_telemetry(&cli, label, args, root) {
                Ok((stdout_b, events_b)) => {
                    if stdout_a != stdout_b {
                        println!("DIVERGED (stdout)");
                        report_divergence(&stdout_a, &stdout_b);
                        all_identical = false;
                    } else if events_a != events_b {
                        println!("DIVERGED (event stream)");
                        report_divergence(&events_a, &events_b);
                        all_identical = false;
                    } else if plain
                        .as_ref()
                        .is_some_and(|plain| !stdout_a.starts_with(plain))
                    {
                        println!("PERTURBED");
                        eprintln!(
                            "  --telemetry changed the trace itself: telemetry stdout is \
                             not an extension of the plain stdout"
                        );
                        all_identical = false;
                    } else {
                        println!(
                            "identical ({} trace bytes, {} event bytes)",
                            stdout_a.len(),
                            events_a.len()
                        );
                    }
                }
                Err(e) => {
                    println!("ERROR");
                    eprintln!("xtask determinism: scenario {label} (+telemetry): {e}");
                    all_identical = false;
                }
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (+telemetry): {e}");
                all_identical = false;
            }
        }
    }
    // Sketch-aggregate mux leg: percentile + distinct + top-k share
    // rounds through the mux's deterministic node sweep. Sweep
    // estimators use no RNG (DESIGN.md §17), so the trace must replay
    // byte-identically and stay invariant under the parallel sampling
    // executor even though the AVG-serving machinery runs alongside.
    print!("xtask determinism: scenario temperature/sketch ... ");
    let sketch_plain = match (
        capture(&cli, SKETCH_ARGS, root),
        capture(&cli, SKETCH_ARGS, root),
    ) {
        (Ok(a), Ok(b)) if a == b => {
            println!("identical ({} trace bytes)", a.len());
            Some(a)
        }
        (Ok(a), Ok(b)) => {
            println!("DIVERGED");
            report_divergence(&a, &b);
            all_identical = false;
            None
        }
        (Err(e), _) | (_, Err(e)) => {
            println!("ERROR");
            eprintln!("xtask determinism: scenario temperature/sketch: {e}");
            all_identical = false;
            None
        }
    };
    print!("xtask determinism: scenario temperature/sketch (workers=4) ... ");
    let mut sketch_workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
    sketch_workers_args.extend_from_slice(SKETCH_ARGS);
    match capture(&cli, &sketch_workers_args, root) {
        Ok(parallel) => match &sketch_plain {
            Some(plain) if *plain == parallel => {
                println!("identical ({} trace bytes)", parallel.len());
            }
            Some(plain) => {
                println!("DIVERGED (worker count leaked into the trace)");
                report_divergence(plain, &parallel);
                all_identical = false;
            }
            None => println!("skipped (no plain trace to compare against)"),
        },
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask determinism: scenario temperature/sketch (workers=4): {e}");
            all_identical = false;
        }
    }

    if all_identical {
        println!(
            "xtask determinism: OK — all same-seed traces and telemetry streams byte-identical"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask determinism: FAILED — same-seed replay diverged");
        ExitCode::FAILURE
    }
}

/// Runs the CLI with `--telemetry` and returns `(stdout, jsonl bytes)`.
fn capture_with_telemetry(
    cli: &Path,
    label: &str,
    args: &[&str],
    root: &Path,
) -> Result<(Vec<u8>, Vec<u8>), String> {
    // Alternate between two scratch paths so consecutive runs cannot
    // accidentally compare a file against itself.
    static RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 2;
    let path = telemetry_scratch(root, label, run);
    let path_str = path.to_string_lossy().into_owned();
    let mut full_args: Vec<&str> = vec!["--telemetry", &path_str];
    full_args.extend_from_slice(args);
    let stdout = capture(cli, &full_args, root)?;
    let events = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok((stdout, events))
}

/// The scenario used by `cargo xtask telemetry-schema` (the first
/// determinism scenario: temperature world, PRED-3 + RPT, run with the
/// auditor and span tracing switched on so the audit/trace kinds are
/// exercised too).
const SCHEMA_REQUIRED_KINDS: &[&str] = &[
    "audit.occasion",
    "sampling.batch",
    "sampling.snapshot",
    "sampling.walk",
    "scheduler.decision",
    "span",
    "tick",
];

/// Event kinds the mux telemetry-schema leg must additionally cover: the
/// shared-round envelope plus the member occasions parented to it.
const MUX_SCHEMA_REQUIRED_KINDS: &[&str] = &["audit.occasion", "mux.round", "tick"];

/// Validates one captured JSONL stream line-by-line against the event
/// schema and checks the required kinds appear. Returns false (after
/// printing diagnostics) on any invalid line or missing kind.
fn validate_event_stream(events: &[u8], required: &[&str]) -> bool {
    let text = String::from_utf8_lossy(events);
    let mut kind_counts: Vec<(String, usize)> = Vec::new();
    let mut violations = 0usize;
    let mut lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        if let Err(message) = digest_telemetry::schema::validate_line(line) {
            violations += 1;
            if violations <= 10 {
                eprintln!("  line {}: {message}", idx + 1);
            }
            continue;
        }
        // validate_line guarantees a `"kind":"..."` member exists.
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?");
        match kind_counts.iter_mut().find(|(k, _)| k == kind) {
            Some(entry) => entry.1 += 1,
            None => kind_counts.push((kind.to_owned(), 1)),
        }
    }
    kind_counts.sort();
    for (kind, count) in &kind_counts {
        println!("  {kind:<24} {count:>8} event(s)");
    }
    let mut missing = Vec::new();
    for required in required {
        if !kind_counts.iter().any(|(k, _)| k == required) {
            missing.push(*required);
        }
    }
    if violations > 0 {
        eprintln!("xtask telemetry-schema: FAILED — {violations} invalid line(s) out of {lines}");
        false
    } else if !missing.is_empty() {
        eprintln!(
            "xtask telemetry-schema: FAILED — required event kind(s) missing: {}",
            missing.join(", ")
        );
        false
    } else {
        println!("  {lines} line(s) schema-valid, all required kinds present");
        true
    }
}

fn run_telemetry_schema(root: &Path) -> ExitCode {
    let cli = match build_cli(root, "telemetry-schema") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let (label, args) = DETERMINISM_RUNS[0];
    println!("xtask telemetry-schema: scenario {label} (+audit, +trace)");
    // Route the audit report and Chrome trace to scratch files purely so
    // their event kinds ("audit.occasion", "span") appear in the JSONL
    // stream under validation.
    let report_path = root.join("target/xtask-schema-report.json");
    let trace_path = root.join("target/xtask-schema-trace.json");
    let report_str = report_path.to_string_lossy().into_owned();
    let trace_str = trace_path.to_string_lossy().into_owned();
    let mut full_args: Vec<&str> = vec!["--audit-json", &report_str, "--trace-out", &trace_str];
    full_args.extend_from_slice(args);
    let (_, events) = match capture_with_telemetry(&cli, label, &full_args, root) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("xtask telemetry-schema: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = validate_event_stream(&events, SCHEMA_REQUIRED_KINDS);

    // Mux leg: the shared-round scenario must emit schema-valid
    // `mux.round` envelopes with member `audit.occasion` events.
    println!("xtask telemetry-schema: scenario temperature/mux (+audit)");
    let mux_report_path = root.join("target/xtask-schema-mux-report.json");
    let mux_report_str = mux_report_path.to_string_lossy().into_owned();
    let mut mux_args: Vec<&str> = vec!["--audit-json", &mux_report_str];
    mux_args.extend_from_slice(MUX_AUDIT_ARGS);
    match capture_with_telemetry(&cli, "mux", &mux_args, root) {
        Ok((_, mux_events)) => {
            ok &= validate_event_stream(&mux_events, MUX_SCHEMA_REQUIRED_KINDS);
        }
        Err(e) => {
            eprintln!("xtask telemetry-schema: mux leg: {e}");
            ok = false;
        }
    }

    if ok {
        println!("xtask telemetry-schema: OK — both scenarios schema-valid");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask telemetry-schema: FAILED");
        ExitCode::FAILURE
    }
}

/// Pinned tolerance for the worst absolute confidence-calibration miss,
/// `max_q |coverage(q) − q|`, in `cargo xtask audit`. The fixed-seed
/// temperature scenario lands around 0.10 with ~30 reporting occasions;
/// 0.35 leaves room for finite-sample noise while still catching a
/// mis-scaled CI half-width (which drifts toward 0.5 at the tails).
const AUDIT_DRIFT_TOLERANCE: f64 = 0.35;

/// Minimum reporting occasions for the audit gate to be meaningful.
const AUDIT_MIN_OCCASIONS: u64 = 10;

/// The three artefacts of one audited CLI run.
struct AuditedRun {
    stdout: Vec<u8>,
    report: Vec<u8>,
    trace: Vec<u8>,
}

/// One audited CLI run: captures stdout plus the audit-report and
/// Chrome-trace JSON files. `run` selects the scratch paths so
/// consecutive invocations never compare a file against itself.
fn capture_audited(
    cli: &Path,
    run: usize,
    args: &[&str],
    root: &Path,
) -> Result<AuditedRun, String> {
    let report_path = root.join(format!("target/xtask-audit-report-{run}.json"));
    let trace_path = root.join(format!("target/xtask-audit-trace-{run}.json"));
    let report_str = report_path.to_string_lossy().into_owned();
    let trace_str = trace_path.to_string_lossy().into_owned();
    let mut full_args: Vec<&str> = vec![
        "--audit",
        "--audit-json",
        &report_str,
        "--trace-out",
        &trace_str,
    ];
    full_args.extend_from_slice(args);
    let stdout = capture(cli, &full_args, root)?;
    let report =
        std::fs::read(&report_path).map_err(|e| format!("read {}: {e}", report_path.display()))?;
    let trace =
        std::fs::read(&trace_path).map_err(|e| format!("read {}: {e}", trace_path.display()))?;
    Ok(AuditedRun {
        stdout,
        report,
        trace,
    })
}

/// Pulls a required numeric field out of the audit-report JSON.
fn report_number(report: &serde_json::Value, key: &str) -> Result<f64, String> {
    report
        .get(key)
        .and_then(serde_json::Value::as_f64)
        .ok_or_else(|| format!("audit report is missing numeric field `{key}`"))
}

/// The 5-query mux scenario for `cargo xtask audit`: four generated AVG
/// contracts (the `--queries` tier mix) plus one predicate query, all
/// served through one shared `QueryMux` — so the gate checks every
/// member's empirical ε-violation rate against its *own* `1 − p`
/// binomial bound even when its occasions came from coalesced rounds.
const MUX_AUDIT_ARGS: &[&str] = &[
    "--world",
    "temperature",
    "--ticks",
    "120",
    "--seed",
    "20080402",
    "--scheduler",
    "pred3",
    "--estimator",
    "rpt",
    "--queries",
    "4",
    "SELECT AVG(temperature) FROM R WHERE temperature > 60 WITH delta=4, epsilon=3, p=0.9",
];

/// How a scenario's calibration drift is gated.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DriftGate {
    /// `max_q |coverage(q) − q|` — the standalone-engine gate, where the
    /// CI half-width is sized exactly to the query's own contract.
    Absolute,
    /// `max_q max(q − coverage(q), 0)` — the shared-round gate. Members
    /// piggybacking on rounds sized by a *tighter* member receive more
    /// samples than their own CLT requirement, so their coverage
    /// overshoots nominal (over-delivery, contract-safe by construction);
    /// only *under*-coverage would signal a mis-scaled half-width.
    UnderCoverageOnly,
}

/// The worst under-coverage across the report's calibration table:
/// `max_q max(nominal(q) − coverage(q), 0)`.
fn under_coverage_drift(report: &serde_json::Value) -> Option<f64> {
    let rows = report.get("calibration")?.as_array()?;
    let mut worst = 0.0f64;
    for row in rows {
        let nominal = row.get("nominal").and_then(serde_json::Value::as_f64)?;
        let coverage = row.get("coverage").and_then(serde_json::Value::as_f64)?;
        worst = worst.max(nominal - coverage);
    }
    Some(worst)
}

/// Gates one audit-report array: per query, enough occasions, ε-violation
/// rate within the promised rate plus binomial slack, calibration drift
/// within the pinned tolerance. Flips `ok` on any miss.
fn gate_reports(reports: &[serde_json::Value], scenario: &str, gate: DriftGate, ok: &mut bool) {
    for report in reports {
        let query = report
            .get("query")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("?");
        let fields = (
            report_number(report, "occasions"),
            report_number(report, "violation_rate"),
            report_number(report, "violation_bound"),
            report_number(report, "calibration_drift"),
        );
        let (occasions, rate, bound, mut drift) = match fields {
            (Ok(o), Ok(r), Ok(b), Ok(d)) => (o, r, b, d),
            (o, r, b, d) => {
                for err in [o.err(), r.err(), b.err(), d.err()].into_iter().flatten() {
                    eprintln!("xtask audit [{scenario}]: {query}: {err}");
                }
                *ok = false;
                continue;
            }
        };
        let drift_label = match gate {
            DriftGate::Absolute => "calibration drift",
            DriftGate::UnderCoverageOnly => {
                match under_coverage_drift(report) {
                    Some(d) => drift = d,
                    None => {
                        eprintln!(
                            "xtask audit [{scenario}]: {query}: report has no \
                             usable calibration table"
                        );
                        *ok = false;
                        continue;
                    }
                }
                "under-coverage drift"
            }
        };
        println!(
            "xtask audit [{scenario}]: {query}: occasions {occasions}, violation rate {rate:.4} \
             (gate ≤ {bound:.4}), {drift_label} {drift:.4} (gate ≤ {AUDIT_DRIFT_TOLERANCE})"
        );
        #[allow(clippy::cast_precision_loss)]
        if occasions < AUDIT_MIN_OCCASIONS as f64 {
            eprintln!(
                "xtask audit [{scenario}]: {query}: only {occasions} reporting occasions \
                 (need ≥ {AUDIT_MIN_OCCASIONS} for the gate to mean anything)"
            );
            *ok = false;
        }
        if rate > bound {
            eprintln!(
                "xtask audit [{scenario}]: {query}: ε-violation rate {rate:.4} exceeds the \
                 promised rate plus binomial slack ({bound:.4})"
            );
            *ok = false;
        }
        if drift > AUDIT_DRIFT_TOLERANCE {
            eprintln!(
                "xtask audit [{scenario}]: {query}: {drift_label} {drift:.4} exceeds the \
                 pinned tolerance {AUDIT_DRIFT_TOLERANCE}"
            );
            *ok = false;
        }
    }
}

fn run_audit(root: &Path) -> ExitCode {
    let cli = match build_cli(root, "audit") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let (label, args) = DETERMINISM_RUNS[0];
    println!("xtask audit: scenario {label}");

    // Reference runs: one plain (for the stdout-prefix check) and two
    // audited replays that must agree byte-for-byte on stdout, report,
    // and trace.
    let plain = match capture(&cli, args, root) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("xtask audit: plain run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let AuditedRun {
        stdout: stdout_a,
        report: report_a,
        trace: trace_a,
    } = match capture_audited(&cli, 0, args, root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("xtask audit: audited run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;

    print!("xtask audit: replay determinism ... ");
    match capture_audited(&cli, 1, args, root) {
        Ok(AuditedRun {
            stdout: stdout_b,
            report: report_b,
            trace: trace_b,
        }) => {
            if stdout_a != stdout_b {
                println!("DIVERGED (stdout)");
                report_divergence(&stdout_a, &stdout_b);
                ok = false;
            } else if report_a != report_b {
                println!("DIVERGED (audit report)");
                report_divergence(&report_a, &report_b);
                ok = false;
            } else if trace_a != trace_b {
                println!("DIVERGED (chrome trace)");
                report_divergence(&trace_a, &trace_b);
                ok = false;
            } else {
                println!(
                    "identical ({} report bytes, {} trace bytes)",
                    report_a.len(),
                    trace_a.len()
                );
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: second audited run: {e}");
            ok = false;
        }
    }

    // Worker-count independence: the auditor observes the engine after
    // the deterministic join, so report, trace, and stdout must not move
    // a byte when the sampling executor runs on four workers.
    print!("xtask audit: workers=4 independence ... ");
    let mut workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
    workers_args.extend_from_slice(args);
    match capture_audited(&cli, 2, &workers_args, root) {
        Ok(AuditedRun {
            stdout: stdout_w,
            report: report_w,
            trace: trace_w,
        }) => {
            if stdout_a != stdout_w {
                println!("DIVERGED (stdout)");
                report_divergence(&stdout_a, &stdout_w);
                ok = false;
            } else if report_w != report_a {
                println!("DIVERGED (audit report)");
                report_divergence(&report_a, &report_w);
                ok = false;
            } else if trace_w != trace_a {
                println!("DIVERGED (chrome trace)");
                report_divergence(&trace_a, &trace_w);
                ok = false;
            } else {
                println!("identical");
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: workers=4 run: {e}");
            ok = false;
        }
    }

    // Auditing must be an observer: the audited stdout extends the plain
    // stdout (same per-tick trace, report appended at the end).
    print!("xtask audit: stdout-prefix (auditing perturbs nothing) ... ");
    if stdout_a.starts_with(&plain) {
        println!("ok");
    } else {
        println!("PERTURBED");
        eprintln!("  --audit changed the per-tick trace itself");
        report_divergence(&plain, &stdout_a);
        ok = false;
    }

    // Gate on the report contents.
    let text = String::from_utf8_lossy(&report_a);
    let parsed: serde_json::Value = match serde_json::from_str(&text) {
        Ok(value) => value,
        Err(e) => {
            eprintln!("xtask audit: report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = parsed.as_array().cloned().unwrap_or_default();
    if reports.is_empty() {
        eprintln!("xtask audit: FAILED — report contains no query audits");
        return ExitCode::FAILURE;
    }
    gate_reports(&reports, label, DriftGate::Absolute, &mut ok);

    // 5-query mux scenario: heterogeneous contracts served through one
    // shared QueryMux (coalesced rounds, shared panels). The audited
    // replay must stay byte-identical across replays and worker counts,
    // and *each* member must hold its own contract. The run-3 artefacts
    // (target/xtask-audit-report-3.json / -trace-3.json) are uploaded by
    // CI as the mux audit report.
    println!("xtask audit: scenario temperature/mux (5 queries, shared rounds)");
    let AuditedRun {
        stdout: mux_stdout_a,
        report: mux_report_a,
        trace: mux_trace_a,
    } = match capture_audited(&cli, 3, MUX_AUDIT_ARGS, root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("xtask audit: mux audited run: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("xtask audit: mux replay determinism ... ");
    match capture_audited(&cli, 4, MUX_AUDIT_ARGS, root) {
        Ok(AuditedRun {
            stdout: stdout_b,
            report: report_b,
            trace: trace_b,
        }) => {
            if mux_stdout_a != stdout_b {
                println!("DIVERGED (stdout)");
                report_divergence(&mux_stdout_a, &stdout_b);
                ok = false;
            } else if mux_report_a != report_b {
                println!("DIVERGED (audit report)");
                report_divergence(&mux_report_a, &report_b);
                ok = false;
            } else if mux_trace_a != trace_b {
                println!("DIVERGED (chrome trace)");
                report_divergence(&mux_trace_a, &trace_b);
                ok = false;
            } else {
                println!(
                    "identical ({} report bytes, {} trace bytes)",
                    mux_report_a.len(),
                    mux_trace_a.len()
                );
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: second mux run: {e}");
            ok = false;
        }
    }

    print!("xtask audit: mux workers=4 independence ... ");
    let mut mux_workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
    mux_workers_args.extend_from_slice(MUX_AUDIT_ARGS);
    match capture_audited(&cli, 5, &mux_workers_args, root) {
        Ok(AuditedRun {
            stdout: stdout_w,
            report: report_w,
            trace: trace_w,
        }) => {
            if mux_stdout_a != stdout_w {
                println!("DIVERGED (stdout)");
                report_divergence(&mux_stdout_a, &stdout_w);
                ok = false;
            } else if mux_report_a != report_w {
                println!("DIVERGED (audit report)");
                report_divergence(&mux_report_a, &report_w);
                ok = false;
            } else if mux_trace_a != trace_w {
                println!("DIVERGED (chrome trace)");
                report_divergence(&mux_trace_a, &trace_w);
                ok = false;
            } else {
                println!("identical");
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: mux workers=4 run: {e}");
            ok = false;
        }
    }

    let mux_text = String::from_utf8_lossy(&mux_report_a);
    let mux_parsed: serde_json::Value = match serde_json::from_str(&mux_text) {
        Ok(value) => value,
        Err(e) => {
            eprintln!("xtask audit: mux report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mux_reports = mux_parsed.as_array().cloned().unwrap_or_default();
    if mux_reports.len() != 5 {
        eprintln!(
            "xtask audit: FAILED — mux scenario must audit 5 queries, got {}",
            mux_reports.len()
        );
        return ExitCode::FAILURE;
    }
    gate_reports(
        &mux_reports,
        "temperature/mux",
        DriftGate::UnderCoverageOnly,
        &mut ok,
    );

    // Sketch-aggregate scenario: percentile + COUNT DISTINCT + top-k
    // through one shared mux (DESIGN.md §17). Sweep estimators land far
    // inside their ε budgets, so nominal coverage saturates at 1.0 and
    // only *under*-coverage would flag a mis-scaled band — hence the
    // shared-round drift gate. The run-6 artefacts
    // (target/xtask-audit-report-6.json / -trace-6.json) are uploaded by
    // CI as the sketch audit report.
    println!("xtask audit: scenario temperature/sketch (p90+distinct+top4, shared rounds)");
    let AuditedRun {
        stdout: sketch_stdout_a,
        report: sketch_report_a,
        trace: sketch_trace_a,
    } = match capture_audited(&cli, 6, SKETCH_ARGS, root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("xtask audit: sketch audited run: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("xtask audit: sketch replay determinism ... ");
    match capture_audited(&cli, 7, SKETCH_ARGS, root) {
        Ok(AuditedRun {
            stdout: stdout_b,
            report: report_b,
            trace: trace_b,
        }) => {
            if sketch_stdout_a != stdout_b {
                println!("DIVERGED (stdout)");
                report_divergence(&sketch_stdout_a, &stdout_b);
                ok = false;
            } else if sketch_report_a != report_b {
                println!("DIVERGED (audit report)");
                report_divergence(&sketch_report_a, &report_b);
                ok = false;
            } else if sketch_trace_a != trace_b {
                println!("DIVERGED (chrome trace)");
                report_divergence(&sketch_trace_a, &trace_b);
                ok = false;
            } else {
                println!(
                    "identical ({} report bytes, {} trace bytes)",
                    sketch_report_a.len(),
                    sketch_trace_a.len()
                );
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: second sketch run: {e}");
            ok = false;
        }
    }

    print!("xtask audit: sketch workers=4 independence ... ");
    let mut sketch_workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
    sketch_workers_args.extend_from_slice(SKETCH_ARGS);
    match capture_audited(&cli, 8, &sketch_workers_args, root) {
        Ok(AuditedRun {
            stdout: stdout_w,
            report: report_w,
            trace: trace_w,
        }) => {
            if sketch_stdout_a != stdout_w {
                println!("DIVERGED (stdout)");
                report_divergence(&sketch_stdout_a, &stdout_w);
                ok = false;
            } else if sketch_report_a != report_w {
                println!("DIVERGED (audit report)");
                report_divergence(&sketch_report_a, &report_w);
                ok = false;
            } else if sketch_trace_a != trace_w {
                println!("DIVERGED (chrome trace)");
                report_divergence(&sketch_trace_a, &trace_w);
                ok = false;
            } else {
                println!("identical");
            }
        }
        Err(e) => {
            println!("ERROR");
            eprintln!("xtask audit: sketch workers=4 run: {e}");
            ok = false;
        }
    }

    let sketch_text = String::from_utf8_lossy(&sketch_report_a);
    let sketch_parsed: serde_json::Value = match serde_json::from_str(&sketch_text) {
        Ok(value) => value,
        Err(e) => {
            eprintln!("xtask audit: sketch report is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sketch_reports = sketch_parsed.as_array().cloned().unwrap_or_default();
    if sketch_reports.len() != 3 {
        eprintln!(
            "xtask audit: FAILED — sketch scenario must audit 3 queries, got {}",
            sketch_reports.len()
        );
        return ExitCode::FAILURE;
    }
    gate_reports(
        &sketch_reports,
        "temperature/sketch",
        DriftGate::UnderCoverageOnly,
        &mut ok,
    );

    if ok {
        println!("xtask audit: OK — guarantee report within bounds, replays byte-identical");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask audit: FAILED");
        ExitCode::FAILURE
    }
}

/// Runs the CLI once and returns its stdout bytes (the trace).
fn capture(cli: &Path, args: &[&str], root: &Path) -> Result<Vec<u8>, String> {
    let output = Command::new(cli)
        .args(args)
        .current_dir(root)
        .output()
        .map_err(|e| format!("failed to run {}: {e}", cli.display()))?;
    if !output.status.success() {
        return Err(format!(
            "digest-cli exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}

/// As [`capture`], with one extra environment variable set for the run.
fn capture_with_env(
    cli: &Path,
    args: &[&str],
    root: &Path,
    key: &str,
    value: &str,
) -> Result<Vec<u8>, String> {
    let output = Command::new(cli)
        .args(args)
        .env(key, value)
        .current_dir(root)
        .output()
        .map_err(|e| format!("failed to run {}: {e}", cli.display()))?;
    if !output.status.success() {
        return Err(format!(
            "digest-cli exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}

fn report_divergence(a: &[u8], b: &[u8]) {
    if a.len() != b.len() {
        eprintln!("  trace lengths differ: {} vs {} bytes", a.len(), b.len());
    }
    let text_a = String::from_utf8_lossy(a);
    let text_b = String::from_utf8_lossy(b);
    for (idx, (la, lb)) in text_a.lines().zip(text_b.lines()).enumerate() {
        if la != lb {
            eprintln!("  first divergence at line {}:", idx + 1);
            eprintln!("    run 1: {la}");
            eprintln!("    run 2: {lb}");
            return;
        }
    }
    eprintln!("  one trace is a strict prefix of the other");
}
