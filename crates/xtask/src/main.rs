//! `cargo xtask` — workspace automation for Digest.
//!
//! Subcommands:
//!
//! * `lint` — run the custom static-analysis pass (rules R1–R4; see the
//!   library crate docs). Exits non-zero on any finding.
//! * `determinism` — build the CLI, run a fixed-seed scenario twice, and
//!   byte-diff the traces. Exits non-zero on any divergence.
//!
//! Both are wired into CI; `cargo xtask lint` is also the local
//! pre-commit gate.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint           run the R1–R4 static-analysis pass over the workspace\n\
           determinism    run a fixed-seed scenario twice and byte-diff the traces\n\
           help           show this message"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    let root = workspace_root();
    match command.as_str() {
        "lint" => run_lint(&root),
        "determinism" => run_determinism(&root),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown xtask command `{other}`");
            usage()
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn run_lint(root: &Path) -> ExitCode {
    println!("xtask lint: scanning workspace at {}", root.display());
    match xtask::lint_workspace(root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "xtask lint: OK — R1 (no-panic), R2 (determinism), R3 (float discipline), \
                 R4 (paper refs) all clean"
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                eprintln!("{finding}");
            }
            eprintln!("xtask lint: {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The fixed-seed scenario replayed twice by `cargo xtask determinism`.
///
/// Exercises both worlds, both estimator kinds, and the PRED scheduler so
/// the diff covers the whole sim → sampling → estimator → scheduler stack.
const DETERMINISM_RUNS: &[(&str, &[&str])] = &[
    (
        "temperature/rpt",
        &[
            "--world",
            "temperature",
            "--ticks",
            "60",
            "--seed",
            "20080402",
            "--scheduler",
            "pred3",
            "--estimator",
            "rpt",
            "SELECT AVG(temperature) FROM R WITH delta=8, epsilon=2, p=0.95",
        ],
    ),
    (
        "memory/indep",
        &[
            "--world",
            "memory",
            "--ticks",
            "40",
            "--seed",
            "8675309",
            "--scheduler",
            "all",
            "--estimator",
            "indep",
            "SELECT AVG(memory) FROM R WITH delta=200, epsilon=50, p=0.9",
        ],
    ),
];

fn run_determinism(root: &Path) -> ExitCode {
    println!("xtask determinism: building digest-cli (release)");
    let build = Command::new("cargo")
        .args(["build", "--release", "--bin", "digest-cli"])
        .current_dir(root)
        .status();
    match build {
        Ok(status) if status.success() => {}
        Ok(status) => {
            eprintln!("xtask determinism: cargo build failed with {status}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask determinism: failed to spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    }
    let cli = root.join("target/release/digest-cli");

    let mut all_identical = true;
    for (label, args) in DETERMINISM_RUNS {
        print!("xtask determinism: scenario {label} ... ");
        let first = capture(&cli, args, root);
        let second = capture(&cli, args, root);
        match (first, second) {
            (Ok(a), Ok(b)) if a == b => {
                println!("identical ({} trace bytes)", a.len());
            }
            (Ok(a), Ok(b)) => {
                println!("DIVERGED");
                report_divergence(&a, &b);
                all_identical = false;
            }
            (Err(e), _) | (_, Err(e)) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label}: {e}");
                all_identical = false;
            }
        }
    }
    if all_identical {
        println!("xtask determinism: OK — all same-seed traces byte-identical");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask determinism: FAILED — same-seed replay diverged");
        ExitCode::FAILURE
    }
}

/// Runs the CLI once and returns its stdout bytes (the trace).
fn capture(cli: &Path, args: &[&str], root: &Path) -> Result<Vec<u8>, String> {
    let output = Command::new(cli)
        .args(args)
        .current_dir(root)
        .output()
        .map_err(|e| format!("failed to run {}: {e}", cli.display()))?;
    if !output.status.success() {
        return Err(format!(
            "digest-cli exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}

fn report_divergence(a: &[u8], b: &[u8]) {
    if a.len() != b.len() {
        eprintln!("  trace lengths differ: {} vs {} bytes", a.len(), b.len());
    }
    let text_a = String::from_utf8_lossy(a);
    let text_b = String::from_utf8_lossy(b);
    for (idx, (la, lb)) in text_a.lines().zip(text_b.lines()).enumerate() {
        if la != lb {
            eprintln!("  first divergence at line {}:", idx + 1);
            eprintln!("    run 1: {la}");
            eprintln!("    run 2: {lb}");
            return;
        }
    }
    eprintln!("  one trace is a strict prefix of the other");
}
