//! `cargo xtask` — workspace automation for Digest.
//!
//! Subcommands:
//!
//! * `lint` — run the custom static-analysis pass (rules R1–R7; see the
//!   library crate docs). Exits non-zero on any finding. `--json` emits a
//!   machine-readable findings document on stdout; `--github` emits
//!   GitHub Actions `::error` workflow annotations alongside the human
//!   output so findings surface inline on pull-request diffs.
//! * `determinism` — build the CLI, run a fixed-seed scenario twice —
//!   both with and without `--telemetry` — and byte-diff the stdout
//!   traces and the JSONL event streams. Also replays each scenario
//!   with `--sampling-workers 4` and requires the trace to match the
//!   inline run byte-for-byte (worker-count independence), and with
//!   `DIGEST_SNAPSHOT_CACHE=0` to prove the occasion-snapshot cache
//!   never moves a byte of output even under churn. Exits non-zero on
//!   any divergence (including telemetry perturbing the plain trace).
//! * `telemetry-schema` — run a fixed-seed scenario with `--telemetry`
//!   and validate every emitted JSONL line against the event schema,
//!   requiring coverage of the core event kinds.
//!
//! All are wired into CI; `cargo xtask lint` is also the local
//! pre-commit gate.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint              run the R1–R7 static-analysis pass over the workspace\n\
                             (--json: machine-readable output; --github: emit\n\
                             GitHub Actions ::error annotations)\n\
           determinism       run fixed-seed scenarios twice (with and without\n\
                             --telemetry) and byte-diff traces and event streams\n\
           telemetry-schema  validate a --telemetry JSONL stream against the schema\n\
           help              show this message"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    let root = workspace_root();
    match command.as_str() {
        "lint" => {
            let mut json = false;
            let mut github = false;
            for flag in args {
                match flag.as_str() {
                    "--json" => json = true,
                    "--github" => github = true,
                    other => {
                        eprintln!("unknown lint flag `{other}`");
                        return usage();
                    }
                }
            }
            run_lint(&root, json, github)
        }
        "determinism" => run_determinism(&root),
        "telemetry-schema" => run_telemetry_schema(&root),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown xtask command `{other}`");
            usage()
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

fn run_lint(root: &Path, json: bool, github: bool) -> ExitCode {
    if !json {
        println!("xtask lint: scanning workspace at {}", root.display());
    }
    match xtask::lint_workspace(root) {
        Ok(findings) => {
            if json {
                println!("{}", findings_json(&findings));
            } else if findings.is_empty() {
                println!(
                    "xtask lint: OK — rules {} all clean",
                    xtask::RULES
                        .iter()
                        .filter(|info| info.code != "ALLOW")
                        .map(|info| format!("{} ({})", info.code, info.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            } else {
                for finding in &findings {
                    eprintln!("{finding}");
                }
                eprintln!("xtask lint: {} violation(s)", findings.len());
            }
            if github {
                for finding in &findings {
                    println!("{}", github_annotation(finding));
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            if github {
                println!(
                    "::error title=xtask lint::{}",
                    github_escape_message(&message)
                );
            }
            ExitCode::FAILURE
        }
    }
}

/// Renders findings as a stable machine-readable JSON document (used by
/// CI tooling; hand-rolled so the gate stays std-only).
fn findings_json(findings: &[xtask::Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (idx, finding) in findings.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        let info = finding.rule.info();
        out.push_str(&format!(
            "{{\"rule\":{},\"name\":{},\"file\":{},\"line\":{},\"message\":{},\
             \"remedy\":{},\"allow_token\":{}}}",
            json_string(info.code),
            json_string(info.name),
            json_string(&finding.file),
            finding.line,
            json_string(&finding.message),
            json_string(finding.remedy.label()),
            finding
                .allow_token
                .map_or_else(|| "null".to_string(), json_string),
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One GitHub Actions workflow-command annotation per finding; the runner
/// attaches these inline to the pull-request diff.
fn github_annotation(finding: &xtask::Finding) -> String {
    let info = finding.rule.info();
    format!(
        "::error file={},line={},title={}({})::{}",
        github_escape_property(&finding.file),
        finding.line.max(1),
        info.code,
        info.name,
        github_escape_message(&finding.message),
    )
}

/// Workflow-command data escaping (`%`, CR, LF).
fn github_escape_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Workflow-command property escaping (data escapes plus `:` and `,`).
fn github_escape_property(s: &str) -> String {
    github_escape_message(s)
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// The fixed-seed scenario replayed twice by `cargo xtask determinism`.
///
/// Exercises both worlds, both estimator kinds, and the PRED scheduler so
/// the diff covers the whole sim → sampling → estimator → scheduler stack.
const DETERMINISM_RUNS: &[(&str, &[&str])] = &[
    (
        "temperature/rpt",
        &[
            "--world",
            "temperature",
            "--ticks",
            "60",
            "--seed",
            "20080402",
            "--scheduler",
            "pred3",
            "--estimator",
            "rpt",
            "SELECT AVG(temperature) FROM R WITH delta=8, epsilon=2, p=0.95",
        ],
    ),
    (
        "memory/indep",
        &[
            "--world",
            "memory",
            "--ticks",
            "40",
            "--seed",
            "8675309",
            "--scheduler",
            "all",
            "--estimator",
            "indep",
            "SELECT AVG(memory) FROM R WITH delta=200, epsilon=50, p=0.9",
        ],
    ),
];

fn build_cli(root: &Path, gate: &str) -> Result<PathBuf, ExitCode> {
    println!("xtask {gate}: building digest-cli (release)");
    let build = Command::new("cargo")
        .args(["build", "--release", "--bin", "digest-cli"])
        .current_dir(root)
        .status();
    match build {
        Ok(status) if status.success() => Ok(root.join("target/release/digest-cli")),
        Ok(status) => {
            eprintln!("xtask {gate}: cargo build failed with {status}");
            Err(ExitCode::FAILURE)
        }
        Err(e) => {
            eprintln!("xtask {gate}: failed to spawn cargo: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// A scenario's scratch JSONL path under `target/` (labels contain `/`).
fn telemetry_scratch(root: &Path, label: &str, run: usize) -> PathBuf {
    root.join("target").join(format!(
        "xtask-telemetry-{}-{run}.jsonl",
        label.replace('/', "-")
    ))
}

fn run_determinism(root: &Path) -> ExitCode {
    let cli = match build_cli(root, "determinism") {
        Ok(cli) => cli,
        Err(code) => return code,
    };

    let mut all_identical = true;
    for (label, args) in DETERMINISM_RUNS {
        print!("xtask determinism: scenario {label} ... ");
        let first = capture(&cli, args, root);
        let second = capture(&cli, args, root);
        let plain = match (first, second) {
            (Ok(a), Ok(b)) if a == b => {
                println!("identical ({} trace bytes)", a.len());
                Some(a)
            }
            (Ok(a), Ok(b)) => {
                println!("DIVERGED");
                report_divergence(&a, &b);
                all_identical = false;
                None
            }
            (Err(e), _) | (_, Err(e)) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label}: {e}");
                all_identical = false;
                None
            }
        };

        // Re-run with a parallel sampling executor: worker count must
        // never leak into results, so the trace must be byte-identical
        // to the plain (inline) run.
        print!("xtask determinism: scenario {label} (workers=4) ... ");
        let mut workers_args: Vec<&str> = vec!["--sampling-workers", "4"];
        workers_args.extend_from_slice(args);
        match capture(&cli, &workers_args, root) {
            Ok(parallel) => match &plain {
                Some(plain) if *plain == parallel => {
                    println!("identical ({} trace bytes)", parallel.len());
                }
                Some(plain) => {
                    println!("DIVERGED (worker count leaked into the trace)");
                    report_divergence(plain, &parallel);
                    all_identical = false;
                }
                None => println!("skipped (no plain trace to compare against)"),
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (workers=4): {e}");
                all_identical = false;
            }
        }

        // Re-run with the occasion-snapshot cache disabled: caching is a
        // pure perf optimisation, so forcing a cold snapshot rebuild at
        // every occasion must not move a single byte of the trace. The
        // memory world churns the overlay every tick, so this leg also
        // replays the cache's patch/rebuild invalidation paths.
        print!("xtask determinism: scenario {label} (DIGEST_SNAPSHOT_CACHE=0) ... ");
        match capture_with_env(&cli, args, root, "DIGEST_SNAPSHOT_CACHE", "0") {
            Ok(uncached) => match &plain {
                Some(plain) if *plain == uncached => {
                    println!("identical ({} trace bytes)", uncached.len());
                }
                Some(plain) => {
                    println!("DIVERGED (snapshot cache leaked into the trace)");
                    report_divergence(plain, &uncached);
                    all_identical = false;
                }
                None => println!("skipped (no plain trace to compare against)"),
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (DIGEST_SNAPSHOT_CACHE=0): {e}");
                all_identical = false;
            }
        }

        // Re-run with --telemetry: the JSONL streams must be
        // byte-identical across same-seed runs, and telemetry must not
        // perturb the plain trace (its stdout extends the plain stdout).
        print!("xtask determinism: scenario {label} (+telemetry) ... ");
        match capture_with_telemetry(&cli, label, args, root) {
            Ok((stdout_a, events_a)) => match capture_with_telemetry(&cli, label, args, root) {
                Ok((stdout_b, events_b)) => {
                    if stdout_a != stdout_b {
                        println!("DIVERGED (stdout)");
                        report_divergence(&stdout_a, &stdout_b);
                        all_identical = false;
                    } else if events_a != events_b {
                        println!("DIVERGED (event stream)");
                        report_divergence(&events_a, &events_b);
                        all_identical = false;
                    } else if plain
                        .as_ref()
                        .is_some_and(|plain| !stdout_a.starts_with(plain))
                    {
                        println!("PERTURBED");
                        eprintln!(
                            "  --telemetry changed the trace itself: telemetry stdout is \
                             not an extension of the plain stdout"
                        );
                        all_identical = false;
                    } else {
                        println!(
                            "identical ({} trace bytes, {} event bytes)",
                            stdout_a.len(),
                            events_a.len()
                        );
                    }
                }
                Err(e) => {
                    println!("ERROR");
                    eprintln!("xtask determinism: scenario {label} (+telemetry): {e}");
                    all_identical = false;
                }
            },
            Err(e) => {
                println!("ERROR");
                eprintln!("xtask determinism: scenario {label} (+telemetry): {e}");
                all_identical = false;
            }
        }
    }
    if all_identical {
        println!(
            "xtask determinism: OK — all same-seed traces and telemetry streams byte-identical"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask determinism: FAILED — same-seed replay diverged");
        ExitCode::FAILURE
    }
}

/// Runs the CLI with `--telemetry` and returns `(stdout, jsonl bytes)`.
fn capture_with_telemetry(
    cli: &Path,
    label: &str,
    args: &[&str],
    root: &Path,
) -> Result<(Vec<u8>, Vec<u8>), String> {
    // Alternate between two scratch paths so consecutive runs cannot
    // accidentally compare a file against itself.
    static RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 2;
    let path = telemetry_scratch(root, label, run);
    let path_str = path.to_string_lossy().into_owned();
    let mut full_args: Vec<&str> = vec!["--telemetry", &path_str];
    full_args.extend_from_slice(args);
    let stdout = capture(cli, &full_args, root)?;
    let events = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok((stdout, events))
}

/// The scenario used by `cargo xtask telemetry-schema` (the first
/// determinism scenario: temperature world, PRED-3 + RPT).
const SCHEMA_REQUIRED_KINDS: &[&str] = &["sampling.walk", "scheduler.decision", "tick"];

fn run_telemetry_schema(root: &Path) -> ExitCode {
    let cli = match build_cli(root, "telemetry-schema") {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    let (label, args) = DETERMINISM_RUNS[0];
    println!("xtask telemetry-schema: scenario {label}");
    let (_, events) = match capture_with_telemetry(&cli, label, args, root) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("xtask telemetry-schema: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = String::from_utf8_lossy(&events);
    let mut kind_counts: Vec<(String, usize)> = Vec::new();
    let mut violations = 0usize;
    let mut lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        if let Err(message) = digest_telemetry::schema::validate_line(line) {
            violations += 1;
            if violations <= 10 {
                eprintln!("  line {}: {message}", idx + 1);
            }
            continue;
        }
        // validate_line guarantees a `"kind":"..."` member exists.
        let kind = line
            .split("\"kind\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?");
        match kind_counts.iter_mut().find(|(k, _)| k == kind) {
            Some(entry) => entry.1 += 1,
            None => kind_counts.push((kind.to_owned(), 1)),
        }
    }
    kind_counts.sort();
    for (kind, count) in &kind_counts {
        println!("  {kind:<24} {count:>8} event(s)");
    }
    let mut missing = Vec::new();
    for required in SCHEMA_REQUIRED_KINDS {
        if !kind_counts.iter().any(|(k, _)| k == required) {
            missing.push(*required);
        }
    }
    if violations > 0 {
        eprintln!("xtask telemetry-schema: FAILED — {violations} invalid line(s) out of {lines}");
        ExitCode::FAILURE
    } else if !missing.is_empty() {
        eprintln!(
            "xtask telemetry-schema: FAILED — required event kind(s) missing: {}",
            missing.join(", ")
        );
        ExitCode::FAILURE
    } else {
        println!(
            "xtask telemetry-schema: OK — {lines} line(s) schema-valid, \
             all required kinds present"
        );
        ExitCode::SUCCESS
    }
}

/// Runs the CLI once and returns its stdout bytes (the trace).
fn capture(cli: &Path, args: &[&str], root: &Path) -> Result<Vec<u8>, String> {
    let output = Command::new(cli)
        .args(args)
        .current_dir(root)
        .output()
        .map_err(|e| format!("failed to run {}: {e}", cli.display()))?;
    if !output.status.success() {
        return Err(format!(
            "digest-cli exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}

/// As [`capture`], with one extra environment variable set for the run.
fn capture_with_env(
    cli: &Path,
    args: &[&str],
    root: &Path,
    key: &str,
    value: &str,
) -> Result<Vec<u8>, String> {
    let output = Command::new(cli)
        .args(args)
        .env(key, value)
        .current_dir(root)
        .output()
        .map_err(|e| format!("failed to run {}: {e}", cli.display()))?;
    if !output.status.success() {
        return Err(format!(
            "digest-cli exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}

fn report_divergence(a: &[u8], b: &[u8]) {
    if a.len() != b.len() {
        eprintln!("  trace lengths differ: {} vs {} bytes", a.len(), b.len());
    }
    let text_a = String::from_utf8_lossy(a);
    let text_b = String::from_utf8_lossy(b);
    for (idx, (la, lb)) in text_a.lines().zip(text_b.lines()).enumerate() {
        if la != lb {
            eprintln!("  first divergence at line {}:", idx + 1);
            eprintln!("    run 1: {la}");
            eprintln!("    run 2: {lb}");
            return;
        }
    }
    eprintln!("  one trace is a strict prefix of the other");
}
