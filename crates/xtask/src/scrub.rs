//! Source scrubbing: separates each line into its code text and its
//! comment text (each with the other blanked out), and tracks two kinds of
//! brace-scoped regions — `#[cfg(test)]` items and `/// xtask: no-alloc`
//! tagged function bodies — so rule matching never fires on prose, test
//! helpers, or literals, while justification comments (`// relaxed-ok:`,
//! `// SAFETY:`) and hot-path tags stay inspectable.

/// One source line after scrubbing.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comment bodies and string/char literal contents
    /// replaced by spaces (delimiters preserved).
    pub code: String,
    /// The line's comment text (line and block comments) with all code,
    /// string, and char content replaced by spaces. The `//` / `/*`
    /// delimiters are blanked too, so a doc comment `/// xtask: no-alloc`
    /// surfaces here as `  / xtask: no-alloc`.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// True when the line sits inside a brace-scoped region opened after a
    /// `/// xtask: no-alloc` tag comment (hot-path allocation discipline,
    /// rule R7).
    pub no_alloc: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scrubs `source` into per-line records.
#[must_use]
pub fn scrub(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let mut state = State::Normal;
    let mut i = 0;
    // Invariant: `code` and `comment` receive the same number of chars per
    // step (newlines mirrored), so their line structures are identical.
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                'r' if matches!(next, Some('"' | '#')) && is_raw_string_start(&chars, i) => {
                    let hashes = count_hashes(&chars, i + 1);
                    state = State::RawStr(hashes);
                    code.push('r');
                    comment.push(' ');
                    for _ in 0..hashes {
                        code.push('#');
                        comment.push(' ');
                    }
                    code.push('"');
                    comment.push(' ');
                    i += 2 + hashes as usize;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    code.push('"');
                    comment.push(' ');
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: a lifetime
                    // is `'ident` NOT followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && chars.get(i + 2).copied() != Some('\'');
                    if !is_lifetime {
                        state = State::Char;
                    }
                    code.push('\'');
                    comment.push(' ');
                }
                '\n' => {
                    code.push('\n');
                    comment.push('\n');
                }
                _ => {
                    code.push(c);
                    comment.push(' ');
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    code.push('\n');
                    comment.push('\n');
                } else {
                    code.push(' ');
                    comment.push(c);
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    code.push('\n');
                    comment.push('\n');
                } else {
                    code.push(' ');
                    comment.push(c);
                }
            }
            State::Str => match c {
                '\\' => {
                    // Preserve newlines so line numbering survives string
                    // continuations (`\` at end of line).
                    if next == Some('\n') {
                        code.push_str(" \n");
                        comment.push_str(" \n");
                    } else {
                        code.push_str("  ");
                        comment.push_str("  ");
                    }
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Normal;
                    code.push('"');
                    comment.push(' ');
                }
                '\n' => {
                    code.push('\n');
                    comment.push('\n');
                }
                _ => {
                    code.push(' ');
                    comment.push(' ');
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && count_hashes(&chars, i + 1) >= hashes {
                    state = State::Normal;
                    code.push('"');
                    comment.push(' ');
                    for _ in 0..hashes {
                        code.push('#');
                        comment.push(' ');
                    }
                    i += 1 + hashes as usize;
                    continue;
                }
                if c == '\n' {
                    code.push('\n');
                    comment.push('\n');
                } else {
                    code.push(' ');
                    comment.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = State::Normal;
                    code.push('\'');
                    comment.push(' ');
                }
                '\n' => {
                    code.push('\n');
                    comment.push('\n');
                }
                _ => {
                    code.push(' ');
                    comment.push(' ');
                }
            },
        }
        i += 1;
    }

    mark_regions(&code, &comment)
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, including as the tail of a byte raw string
    // `br"..."` / `br#"..."#`; reject identifiers that merely end in `r`
    // (or `br`) by requiring the char before the prefix to be
    // non-identifier-ish.
    if i > 0 {
        let prev = chars[i - 1];
        if prev == 'b' {
            if i > 1 {
                let before = chars[i - 2];
                if before.is_alphanumeric() || before == '_' {
                    return false;
                }
            }
        } else if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i).copied() == Some('#') {
        n += 1;
        i += 1;
    }
    n
}

/// Test-region attribute markers.
const TEST_CFGS: &[&str] = &["#[cfg(test)]", "#[cfg(all(test", "#[cfg(any(test"];

/// Hot-path tag recognized in comment text (rule R7). The tag must be the
/// start of its comment line (after doc-comment `/` / `!` decoration), so
/// prose that merely mentions it does not open a region.
const NO_ALLOC_TAG: &str = "xtask: no-alloc";

fn is_no_alloc_tag(comment_line: &str) -> bool {
    comment_line
        .trim()
        .trim_start_matches(['/', '!'])
        .trim_start()
        .starts_with(NO_ALLOC_TAG)
}

fn mark_regions(code_src: &str, comment_src: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut depth: usize = 0;
    // Depths at which a cfg(test) / no-alloc region's braces opened.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut alloc_stack: Vec<usize> = Vec::new();
    let mut pending_cfg_test = false;
    let mut pending_no_alloc = false;

    for (code_line, comment_line) in code_src.lines().zip(comment_src.lines()) {
        let started_test = !test_stack.is_empty();
        let started_alloc = !alloc_stack.is_empty();
        if is_no_alloc_tag(comment_line) {
            pending_no_alloc = true;
        }
        // Byte-wise walk: the markers of interest are all ASCII, and `#`
        // is always a char boundary, so slicing at it is safe.
        for (i, b) in code_line.bytes().enumerate() {
            match b {
                b'#' if TEST_CFGS.iter().any(|cfg| code_line[i..].starts_with(cfg)) => {
                    pending_cfg_test = true;
                }
                b'{' => {
                    depth += 1;
                    if pending_cfg_test {
                        test_stack.push(depth);
                        pending_cfg_test = false;
                    }
                    if pending_no_alloc {
                        alloc_stack.push(depth);
                        pending_no_alloc = false;
                    }
                }
                b'}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    if alloc_stack.last() == Some(&depth) {
                        alloc_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use ...;` / a tagged trait method
                // declaration `fn f(&self);` — the pending marker is
                // consumed by a braceless item.
                b';' => {
                    if pending_cfg_test && test_stack.last() != Some(&depth) {
                        pending_cfg_test = false;
                    }
                    if pending_no_alloc && alloc_stack.last() != Some(&depth) {
                        pending_no_alloc = false;
                    }
                }
                _ => {}
            }
        }
        let ended_test = !test_stack.is_empty();
        let ended_alloc = !alloc_stack.is_empty();
        lines.push(Line {
            code: code_line.to_string(),
            comment: comment_line.to_string(),
            in_test: started_test || ended_test || pending_cfg_test,
            no_alloc: started_alloc || ended_alloc || pending_no_alloc,
        });
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scrub(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() comment\nlet y = 1;";
        let lines = codes(src);
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[0].contains("let x = \""));
        assert_eq!(lines[1], "let y = 1;");
    }

    #[test]
    fn comment_text_is_captured_with_code_blanked() {
        let src = "x.store(1, Relaxed); // relaxed-ok: monotone counter\n";
        let lines = scrub(src);
        assert!(lines[0].comment.contains("relaxed-ok: monotone counter"));
        assert!(!lines[0].comment.contains("store"));
        assert!(!lines[0].code.contains("relaxed-ok"));
    }

    #[test]
    fn comment_lines_mirror_code_lines() {
        let src = "fn f() {\n    /* a\n       b */ g();\n}\n";
        let lines = scrub(src);
        assert_eq!(lines.len(), 4);
        assert!(lines[1].comment.contains('a'));
        assert!(lines[2].comment.contains('b'));
        assert!(lines[2].code.contains("g();"));
    }

    #[test]
    fn string_contents_do_not_leak_into_comments() {
        let src = "let s = \"// not a comment\";\n";
        let lines = scrub(src);
        assert!(lines[0].comment.trim().is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let p = r#\"panic!(\"x\")\"#; let c = '\"'; let l: &'static str = \"\";";
        let lines = codes(src);
        assert!(!lines[0].contains("panic!"));
        assert!(lines[0].contains("&'static str"));
    }

    #[test]
    fn byte_raw_strings_are_blanked() {
        // Regression: `br#"..."#` — the `b` prefix must not make the raw
        // string read as an identifier, which would leave the inner quote
        // opening an ordinary string state and swallow following code.
        let src = "let b = br#\"panic!(\"x\")\"#; after.unwrap();\nlet t = br\"y\";";
        let lines = codes(src);
        assert!(!lines[0].contains("panic!"));
        assert!(lines[0].contains("after.unwrap();"));
        assert!(!lines[1].contains('y'));
    }

    #[test]
    fn identifiers_ending_in_r_are_not_raw_strings() {
        let src = "let var\u{5f}br = 1; let x = var\u{5f}br\"tail\";";
        let lines = codes(src);
        // `var_br` keeps its letters; the quoted tail is a plain string.
        assert!(lines[0].contains("var_br = 1"));
        assert!(!lines[0].contains("tail"));
    }

    #[test]
    fn multi_hash_raw_strings_close_on_matching_hashes() {
        let src = "let p = r##\"inner \"# still inner\"##; done();";
        let lines = codes(src);
        assert!(!lines[0].contains("inner"));
        assert!(lines[0].contains("done();"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner unwrap() */ still comment */ let a = 1;";
        let lines = codes(src);
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[0].contains("let a = 1;"));
    }

    #[test]
    fn nested_block_comment_text_is_captured() {
        let src = "/* outer /* SAFETY: nested */ tail */ let a = 1;";
        let lines = scrub(src);
        assert!(lines[0].comment.contains("SAFETY: nested"));
        assert!(lines[0].code.contains("let a = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let lines = scrub(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test); // attribute line
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test); // closing brace
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { baz(); }\n";
        let lines = scrub(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn no_alloc_tag_marks_the_next_fn_body() {
        let src = "/// Doc prose.\n\
                   /// xtask: no-alloc\n\
                   #[inline]\n\
                   fn hot(x: u64) -> u64 {\n\
                       let v = x + 1;\n\
                       v\n\
                   }\n\
                   fn cold() { Vec::new(); }\n";
        let lines = scrub(src);
        assert!(!lines[0].no_alloc);
        assert!(lines[1].no_alloc); // tag line
        assert!(lines[2].no_alloc); // attribute between tag and fn
        assert!(lines[3].no_alloc); // signature + open brace
        assert!(lines[4].no_alloc);
        assert!(lines[6].no_alloc); // closing brace
        assert!(!lines[7].no_alloc);
    }

    #[test]
    fn no_alloc_tag_in_prose_does_not_open_a_region() {
        let src = "/// This fn is not tagged xtask: no-alloc on purpose.\n\
                   fn normal() { Vec::new(); }\n";
        let lines = scrub(src);
        assert!(!lines[1].no_alloc);
    }

    #[test]
    fn no_alloc_tag_is_consumed_by_braceless_declarations() {
        let src = "/// xtask: no-alloc\nfn decl(x: u64) -> u64;\nfn other() { }\n";
        let lines = scrub(src);
        assert!(!lines[2].no_alloc);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n";
        let lines = codes(src);
        assert!(lines[0].contains("&'a str"));
        assert!(lines[1].contains("let c = '"));
        assert!(!lines[1].contains('x'));
    }
}
