//! Source scrubbing: blanks comments and string literals, and tracks
//! `#[cfg(test)]` regions by brace depth, so rule matching never fires on
//! prose, test helpers, or literals.

/// One source line after scrubbing.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comment bodies and string/char literal contents
    /// replaced by spaces (delimiters preserved).
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scrubs `source` into per-line records.
#[must_use]
pub fn scrub(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                'r' if matches!(next, Some('"' | '#')) && is_raw_string_start(&chars, i) => {
                    let hashes = count_hashes(&chars, i + 1);
                    state = State::RawStr(hashes);
                    out.push('r');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    out.push('"');
                    i += 2 + hashes as usize;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: a lifetime
                    // is `'ident` NOT followed by a closing quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && chars.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        out.push('\'');
                    } else {
                        state = State::Char;
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Str => match c {
                '\\' => {
                    // Preserve newlines so line numbering survives string
                    // continuations (`\` at end of line).
                    if next == Some('\n') {
                        out.push_str(" \n");
                    } else {
                        out.push_str("  ");
                    }
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Normal;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && closing_hashes(&chars, i + 1) >= hashes {
                    state = State::Normal;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            State::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = State::Normal;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }

    mark_test_regions(&out)
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`; reject identifiers ending in r (checked by caller
    // context: previous char must not be identifier-ish).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i).copied() == Some('#') {
        n += 1;
        i += 1;
    }
    n
}

fn closing_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i).copied() == Some('#') {
        n += 1;
        i += 1;
    }
    n
}

/// Test-region attribute markers.
const TEST_CFGS: &[&str] = &["#[cfg(test)]", "#[cfg(all(test", "#[cfg(any(test"];

fn mark_test_regions(scrubbed: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut depth: usize = 0;
    // Depths at which a cfg(test) region's braces opened.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_cfg_test = false;

    for raw_line in scrubbed.lines() {
        let started_in_test = !test_stack.is_empty();
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            if TEST_CFGS
                .iter()
                .any(|cfg| raw_line[char_to_byte(raw_line, i)..].starts_with(cfg))
            {
                pending_cfg_test = true;
            }
            match bytes[i] {
                '{' => {
                    depth += 1;
                    if pending_cfg_test {
                        test_stack.push(depth);
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use ...;` — attribute consumed by a
                // braceless item.
                ';' if pending_cfg_test && test_stack.last() != Some(&depth) => {
                    pending_cfg_test = false;
                }
                _ => {}
            }
            i += 1;
        }
        let ended_in_test = !test_stack.is_empty();
        lines.push(Line {
            code: raw_line.to_string(),
            in_test: started_in_test || ended_in_test || pending_cfg_test,
        });
    }
    lines
}

fn char_to_byte(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map_or(s.len(), |(byte_idx, _)| byte_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scrub(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() comment\nlet y = 1;";
        let lines = codes(src);
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[0].contains("let x = \""));
        assert_eq!(lines[1], "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let p = r#\"panic!(\"x\")\"#; let c = '\"'; let l: &'static str = \"\";";
        let lines = codes(src);
        assert!(!lines[0].contains("panic!"));
        assert!(lines[0].contains("&'static str"));
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner unwrap() */ still comment */ let a = 1;";
        let lines = codes(src);
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[0].contains("let a = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let lines = scrub(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test); // attribute line
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test); // closing brace
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { baz(); }\n";
        let lines = scrub(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n";
        let lines = codes(src);
        assert!(lines[0].contains("&'a str"));
        assert!(lines[1].contains("let c = '"));
        assert!(!lines[1].contains('x'));
    }
}
