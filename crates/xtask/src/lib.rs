//! Digest's custom static-analysis pass (`cargo xtask lint`).
//!
//! The engine's statistical contracts — `|X̂ − X| ≤ ε` with probability
//! ≥ p (PAPER.md §II, Eq. 8–11) — are voided by panicking estimator paths
//! and nondeterministic iteration, neither of which default clippy catches.
//! This crate is a std-only source scanner enforcing seven domain rules:
//!
//! * **R1 — panic-free library crates**: no `unwrap()` / `expect()` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
//!   `core`, `stats`, `sampling`, `net`, `db`, `sim`, `telemetry`
//!   outside `#[cfg(test)]` code, modulo a checked-in allowlist that may
//!   only shrink.
//! * **R2 — replay determinism**: no `HashMap` / `HashSet` in simulator-
//!   or estimator-visible crates (`core`, `stats`, `sampling`, `net`,
//!   `db`, `sim`, `workload`, `telemetry`) outside `#[cfg(test)]` — use
//!   `BTreeMap` / `BTreeSet` or an explicit sort so iteration order is
//!   stable.
//! * **R3 — float discipline**: no bare `==` / `!=` against float
//!   operands and no narrowing `as` casts (`u8`/`u16`/`u32`/`i8`/`i16`/
//!   `i32`/`f32`) in `stats` / `core` numeric code.
//! * **R4 — paper traceability**: every top-level public item in the
//!   estimator/scheduler modules must carry a paper-section (`§`) or
//!   equation (`Eq.`) doc reference.
//! * **R5 — RNG discipline**: in sim-visible crates, entropy-drawing
//!   constructors (`thread_rng`, `from_entropy`, `from_os_rng`) are banned
//!   outright, and ad-hoc seeding (`seed_from_u64`, `from_seed`) outside
//!   the designated seeding modules needs an allowlist entry — every RNG
//!   must derive from the run seed through an auditable path, or replay
//!   determinism (the basis of the paper's fixed-precision guarantees) is
//!   silently lost.
//! * **R6 — concurrency hygiene**: `Ordering::Relaxed` only with a
//!   `// relaxed-ok: <why>` justification comment (monotone telemetry
//!   counters are the intended audience); `Mutex` / `RwLock` / `mpsc`
//!   channels banned in sim-visible crates modulo the allowlist (the
//!   parallel substrate is lock-free by design; see DESIGN.md §13); every
//!   `unsafe` needs a `// SAFETY: <why>` comment.
//! * **R7 — hot-path allocation**: function bodies tagged
//!   `/// xtask: no-alloc` may not allocate (`Vec::new`, `vec!`,
//!   `collect`, `to_vec`, `clone`, `Box::new`, `format!`) — the sampling
//!   walk inner loop reuses arena buffers and must stay allocation-free.
//!
//! The scanner is deliberately token-based (comments and string literals
//! are scrubbed before matching, `#[cfg(test)]` and `xtask: no-alloc`
//! regions are tracked by brace depth) rather than a full parser: the
//! rules target textual constructs that survive that approximation, and a
//! std-only pass keeps the gate runnable in the offline build environment.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod scrub;

/// Crates whose library sources must be panic-free (R1).
pub const R1_CRATES: &[&str] = &[
    "core",
    "stats",
    "sampling",
    "net",
    "db",
    "sim",
    "telemetry",
    "audit",
    "sketch",
];

/// Crates whose library sources feed the simulator or estimators and must
/// avoid nondeterministic hash collections (R2).
pub const R2_CRATES: &[&str] = &[
    "core",
    "stats",
    "sampling",
    "net",
    "db",
    "sim",
    "workload",
    "telemetry",
    "audit",
    "sketch",
];

/// Crates holding numeric estimator code subject to float discipline (R3).
pub const R3_CRATES: &[&str] = &["stats", "core"];

/// Estimator/scheduler modules whose public API must cite the paper (R4).
pub const R4_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/rpt.rs",
    "crates/core/src/indep.rs",
    "crates/core/src/baselines.rs",
    "crates/core/src/quantile_est.rs",
    "crates/core/src/grouped.rs",
    "crates/core/src/mux.rs",
    "crates/sampling/src/metropolis.rs",
    "crates/sampling/src/operator.rs",
    "crates/sampling/src/baselines.rs",
    "crates/sampling/src/size_estimate.rs",
    "crates/sampling/src/mixing.rs",
    "crates/stats/src/repeated.rs",
    "crates/stats/src/clt.rs",
    "crates/core/src/sketch_est.rs",
    "crates/sketch/src/quantile.rs",
    "crates/sketch/src/distinct.rs",
    "crates/sketch/src/topk.rs",
    "crates/sketch/src/lib.rs",
];

/// Simulator- or estimator-visible crates, subject to the RNG (R5) and
/// concurrency (R6/R7) discipline rules. Same set as [`R2_CRATES`]: code
/// either of these rules would miss cannot affect a replayed run.
pub const SIM_VISIBLE_CRATES: &[&str] = R2_CRATES;

/// Designated seeding modules (R5): the only files allowed to construct
/// RNGs ad hoc, because constructing per-slot / per-replication streams
/// from the run seed is their whole job.
pub const R5_SEEDING_MODULES: &[&str] = &[
    "crates/sampling/src/executor.rs",
    "crates/sim/src/parallel.rs",
    "crates/sim/src/flat.rs",
];

/// Path of the lint allowlist, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint-allowlist.txt";

/// Panic-capable constructs banned by R1 (matched against scrubbed code).
const R1_TOKENS: &[(&str, &str)] = &[
    ("unwrap", ".unwrap()"),
    ("expect", ".expect("),
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

/// Narrowing cast targets banned by R3.
const R3_NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Entropy-drawing RNG constructors banned outright by R5 (no allowlist
/// escape: a single OS-entropy draw destroys replay determinism).
const R5_ENTROPY_TOKENS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// Ad-hoc seeding constructors restricted by R5 to designated seeding
/// modules; elsewhere each use needs an allowlist entry. The first element
/// doubles as the allowlist token name.
const R5_SEEDING_TOKENS: &[&str] = &["seed_from_u64", "from_seed"];

/// Blocking synchronization primitives banned by R6 in sim-visible crates:
/// (allowlist token, whole-word needle).
const R6_SYNC_TOKENS: &[(&str, &str)] = &[
    ("mutex", "Mutex"),
    ("rwlock", "RwLock"),
    ("channel", "mpsc"),
];

/// Justification-comment markers verified by R6.
const RELAXED_OK_MARKER: &str = "relaxed-ok:";
const SAFETY_MARKER: &str = "SAFETY:";

/// Allocating constructs banned by R7 inside `xtask: no-alloc` regions.
const R7_ALLOC_TOKENS: &[&str] = &[
    "Vec::new", "vec!", ".collect", ".to_vec", ".clone", "Box::new", "format!",
];

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panic-capable construct in library code.
    R1Panic,
    /// Nondeterministic hash collection in sim/estimator-visible code.
    R2HashCollection,
    /// Bare float comparison or narrowing cast in numeric code.
    R3FloatDiscipline,
    /// Public estimator/scheduler item without a paper reference.
    R4PaperRef,
    /// Entropy-drawing or ad-hoc RNG construction in sim-visible code.
    R5RngDiscipline,
    /// Unjustified relaxed ordering, blocking sync primitive, or
    /// uncommented `unsafe` in sim-visible code.
    R6Concurrency,
    /// Allocation inside an `xtask: no-alloc` tagged function body.
    R7HotPathAlloc,
    /// Problem with the allowlist itself (stale or loosened entry).
    Allowlist,
}

/// Registry metadata for one rule: a stable diagnostic code plus the
/// short name and summary used in human-facing and machine-facing output.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule producing the diagnostics.
    pub rule: Rule,
    /// Stable diagnostic code (`R1`..`R7`, `ALLOW`); machine output keys
    /// on this, so it must never be renamed or reused.
    pub code: &'static str,
    /// Short kebab-case name shown next to the code.
    pub name: &'static str,
    /// One-line description of what the rule enforces.
    pub summary: &'static str,
}

/// The rule registry, in diagnostic-code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        rule: Rule::R1Panic,
        code: "R1",
        name: "no-panic",
        summary: "panic-capable constructs are banned in library crates",
    },
    RuleInfo {
        rule: Rule::R2HashCollection,
        code: "R2",
        name: "determinism",
        summary: "hash collections have nondeterministic iteration order",
    },
    RuleInfo {
        rule: Rule::R3FloatDiscipline,
        code: "R3",
        name: "float-discipline",
        summary: "bare float comparisons and narrowing casts are banned in numeric code",
    },
    RuleInfo {
        rule: Rule::R4PaperRef,
        code: "R4",
        name: "paper-ref",
        summary: "public estimator items must cite a paper section or equation",
    },
    RuleInfo {
        rule: Rule::R5RngDiscipline,
        code: "R5",
        name: "rng-discipline",
        summary: "RNGs must derive from the run seed via designated seeding modules",
    },
    RuleInfo {
        rule: Rule::R6Concurrency,
        code: "R6",
        name: "concurrency",
        summary:
            "relaxed orderings need justification; blocking sync is banned in sim-visible code",
    },
    RuleInfo {
        rule: Rule::R7HotPathAlloc,
        code: "R7",
        name: "no-alloc",
        summary: "tagged hot-path function bodies may not allocate",
    },
    RuleInfo {
        rule: Rule::Allowlist,
        code: "ALLOW",
        name: "allowlist",
        summary: "the allowlist may only shrink: stale or slack entries are violations",
    },
];

impl Rule {
    /// Stable diagnostic code for machine output.
    #[must_use]
    pub fn code(self) -> &'static str {
        self.info().code
    }

    /// Registry entry for this rule.
    #[must_use]
    pub fn info(self) -> &'static RuleInfo {
        RULES
            .iter()
            .find(|info| info.rule == self)
            .unwrap_or(&RULES[0])
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Rule::Allowlist {
            return f.write_str("allowlist");
        }
        let info = self.info();
        write!(f, "{}({})", info.code, info.name)
    }
}

/// How a finding is meant to be resolved when rewriting the code is not an
/// option — machine output reports this as the finding's justification
/// status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Remedy {
    /// Only fixing the code clears it.
    Fix,
    /// An exact-count `# justification` allowlist entry may cover it.
    AllowlistEntry,
    /// An inline justification comment (`// relaxed-ok:` / `// SAFETY:`)
    /// clears it.
    JustifyComment,
}

impl Remedy {
    /// Stable label for machine output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Remedy::Fix => "fix",
            Remedy::AllowlistEntry => "allowlist",
            Remedy::JustifyComment => "justify-comment",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Sanctioned resolution when the code cannot simply change.
    pub remedy: Remedy,
    /// Allowlist token an entry must use to justify this finding
    /// (`None` when the finding is not allowlistable).
    pub allow_token: Option<&'static str>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One parsed allowlist entry:
/// `<rule> <path> <token> <count> # justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Diagnostic code of the rule the entry covers (`R1`, `R5`, `R6`).
    pub rule: String,
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// Rule-specific token name (`unwrap`, `seed_from_u64`, `mutex`, ...).
    pub token: String,
    /// Exact number of occurrences the entry justifies.
    pub count: usize,
    /// Line of the allowlist file the entry came from.
    pub line: usize,
}

/// Allowlist token vocabulary per rule code; `None` ⇒ the rule accepts no
/// allowlist entries at all.
fn allow_tokens_for(rule: &str) -> Option<Vec<&'static str>> {
    match rule {
        "R1" => Some(R1_TOKENS.iter().map(|(name, _)| *name).collect()),
        "R5" => Some(R5_SEEDING_TOKENS.to_vec()),
        "R6" => Some(R6_SYNC_TOKENS.iter().map(|(name, _)| *name).collect()),
        _ => None,
    }
}

/// Parses the lint allowlist format.
///
/// Grammar per non-comment line:
/// `<rule> <workspace-relative-path> <token> <count> # <justification>` —
/// the justification is mandatory, which is what "documented entries only"
/// means mechanically. Rules `R1`, `R5`, and `R6` accept entries; the
/// token vocabulary is rule-specific.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed entries.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = match line.split_once('#') {
            Some((spec, justification)) => (spec.trim(), justification.trim()),
            None => {
                return Err(format!(
                    "allowlist line {line_no}: missing `# justification`"
                ))
            }
        };
        if justification.is_empty() {
            return Err(format!("allowlist line {line_no}: empty justification"));
        }
        let fields: Vec<&str> = spec.split_whitespace().collect();
        let [rule, file, token, count] = fields.as_slice() else {
            return Err(format!(
                "allowlist line {line_no}: expected `<rule> <path> <token> <count>`, got `{spec}`"
            ));
        };
        let Some(tokens) = allow_tokens_for(rule) else {
            return Err(format!(
                "allowlist line {line_no}: rule `{rule}` accepts no allowlist entries \
                 (only R1, R5, R6 do)"
            ));
        };
        if !tokens.contains(token) {
            return Err(format!(
                "allowlist line {line_no}: unknown token `{token}` for rule {rule}"
            ));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {line_no}: bad count `{count}`"))?;
        if count == 0 {
            return Err(format!(
                "allowlist line {line_no}: zero-count entry — delete it instead"
            ));
        }
        entries.push(AllowEntry {
            rule: (*rule).to_string(),
            file: (*file).to_string(),
            token: (*token).to_string(),
            count,
            line: line_no,
        });
    }
    Ok(entries)
}

/// R1: panic-capable constructs outside `#[cfg(test)]`.
///
/// `file` is the workspace-relative label used in findings; `source` is the
/// file contents. Allowlisting happens in [`lint_workspace`], not here.
pub fn lint_no_panic(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (name, needle) in R1_TOKENS {
            for _ in 0..count_occurrences(&line.code, needle) {
                findings.push(Finding {
                    rule: Rule::R1Panic,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!("`{needle}` can panic; thread a typed error instead ({name})"),
                    remedy: Remedy::AllowlistEntry,
                    allow_token: Some(name),
                });
            }
        }
    }
    findings
}

/// R2: `HashMap` / `HashSet` outside `#[cfg(test)]`.
pub fn lint_no_hash_collections(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(&line.code, ty) {
                findings.push(Finding {
                    rule: Rule::R2HashCollection,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` iteration order is nondeterministic; use BTree{} or sort explicitly",
                        &ty[4..]
                    ),
                    remedy: Remedy::Fix,
                    allow_token: None,
                });
            }
        }
    }
    findings
}

/// R3: bare float `==` / `!=` and narrowing `as` casts.
pub fn lint_float_discipline(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for op in ["==", "!="] {
            let mut search_from = 0;
            while let Some(pos) = line.code[search_from..].find(op) {
                let at = search_from + pos;
                search_from = at + op.len();
                // Skip `<=`, `>=`, `=>`, `+=`-style compounds and pattern
                // guards: only a standalone `==`/`!=` counts.
                let before = line.code[..at].chars().next_back();
                if op == "==" && matches!(before, Some('=' | '!' | '<' | '>')) {
                    continue;
                }
                let left = last_token(&line.code[..at]);
                let right = first_token(&line.code[at + op.len()..]);
                if is_floatish(left) || is_floatish(right) {
                    findings.push(Finding {
                        rule: Rule::R3FloatDiscipline,
                        file: file.to_string(),
                        line: idx + 1,
                        message: format!(
                            "bare `{op}` on float operands (`{left}` {op} `{right}`); \
                             compare with an explicit tolerance"
                        ),
                        remedy: Remedy::Fix,
                        allow_token: None,
                    });
                }
            }
        }
        let mut search_from = 0;
        while let Some(pos) = line.code[search_from..].find(" as ") {
            let at = search_from + pos;
            search_from = at + 4;
            let target = first_token(&line.code[at + 4..]);
            if R3_NARROWING_TARGETS.contains(&target) {
                findings.push(Finding {
                    rule: Rule::R3FloatDiscipline,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "narrowing cast `as {target}` can silently truncate; \
                         use `try_from` or a checked conversion"
                    ),
                    remedy: Remedy::Fix,
                    allow_token: None,
                });
            }
        }
    }
    findings
}

/// R4: top-level public items must cite a paper section or equation.
///
/// The doc block (contiguous `///` lines, skipping attributes) above each
/// top-level `pub fn|struct|enum|trait` must mention `§` or `Eq.`/
/// `equation`.
pub fn lint_paper_refs(file: &str, source: &str) -> Vec<Finding> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let scrubbed = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in raw_lines.iter().enumerate() {
        if scrubbed.get(idx).is_some_and(|l| l.in_test) {
            continue;
        }
        let Some(item) = public_item_name(line) else {
            continue;
        };
        // Collect the doc block above, skipping attribute lines.
        let mut doc = String::new();
        let mut cursor = idx;
        while cursor > 0 {
            cursor -= 1;
            let above = raw_lines[cursor].trim_start();
            if above.starts_with("#[") || above.starts_with("#![") {
                continue;
            }
            if let Some(text) = above.strip_prefix("///") {
                doc.push_str(text);
                doc.push('\n');
                continue;
            }
            break;
        }
        let cited = doc.contains('§')
            || doc.contains("Eq.")
            || doc.to_ascii_lowercase().contains("equation");
        if !cited {
            findings.push(Finding {
                rule: Rule::R4PaperRef,
                file: file.to_string(),
                line: idx + 1,
                message: format!(
                    "public item `{item}` lacks a paper reference (§ section or Eq. number) \
                     in its doc comment"
                ),
                remedy: Remedy::Fix,
                allow_token: None,
            });
        }
    }
    findings
}

/// R5: RNG discipline outside `#[cfg(test)]`.
///
/// Entropy-drawing constructors are banned outright. Ad-hoc seeding
/// constructors are permitted only when `is_seeding_module` (the file is
/// listed in [`R5_SEEDING_MODULES`]); elsewhere each use needs an
/// allowlist entry, applied by [`lint_workspace`].
pub fn lint_rng_discipline(file: &str, source: &str, is_seeding_module: bool) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for banned in R5_ENTROPY_TOKENS {
            if contains_word(&line.code, banned) {
                findings.push(Finding {
                    rule: Rule::R5RngDiscipline,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{banned}` draws OS entropy and breaks replay determinism; \
                         derive the RNG from the run seed instead"
                    ),
                    remedy: Remedy::Fix,
                    allow_token: None,
                });
            }
        }
        if is_seeding_module {
            continue;
        }
        for token in R5_SEEDING_TOKENS {
            if contains_word(&line.code, token) {
                findings.push(Finding {
                    rule: Rule::R5RngDiscipline,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "ad-hoc RNG construction `{token}` outside a designated seeding \
                         module; route seed derivation through the executor/parallel \
                         runner or add an allowlist entry ({token})"
                    ),
                    remedy: Remedy::AllowlistEntry,
                    allow_token: Some(token),
                });
            }
        }
    }
    findings
}

/// Does line `idx` (or the comment block immediately above it) carry a
/// justification comment containing `marker` followed by a non-empty
/// reason? Scanning walks upward through contiguous comment-only lines,
/// so multi-line justifications count and the marker may sit at the top
/// of its block.
fn has_justification(lines: &[scrub::Line], idx: usize, marker: &str) -> bool {
    let carries_marker = |j: usize| {
        let comment = &lines[j].comment;
        comment
            .find(marker)
            .is_some_and(|at| !comment[at + marker.len()..].trim().is_empty())
    };
    if carries_marker(idx) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        // Stop at the first line that holds code or is fully blank: the
        // justification must be in the comment block touching the site.
        if !line.code.trim().is_empty() || line.comment.trim().is_empty() {
            return false;
        }
        if carries_marker(j) {
            return true;
        }
    }
    false
}

/// R6: concurrency hygiene outside `#[cfg(test)]`.
///
/// * `Ordering::Relaxed` must carry a `// relaxed-ok: <why>` comment on
///   the same line or in the comment block directly above (monotone
///   telemetry counters are the intended audience — anything
///   load-bearing needs a stronger order).
/// * `Mutex` / `RwLock` / `mpsc` are banned; the parallel substrate is
///   lock-free by design (allowlist entries cover the telemetry sink).
/// * Every `unsafe` needs a `// SAFETY: <why>` comment on the same line
///   or in the comment block directly above.
pub fn lint_concurrency(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if contains_word(&line.code, "Relaxed")
            && !has_justification(&lines, idx, RELAXED_OK_MARKER)
        {
            findings.push(Finding {
                rule: Rule::R6Concurrency,
                file: file.to_string(),
                line: idx + 1,
                message: "`Ordering::Relaxed` without a `// relaxed-ok: <why>` comment; \
                          justify it (monotone counter?) or use a stronger ordering"
                    .to_string(),
                remedy: Remedy::JustifyComment,
                allow_token: None,
            });
        }
        for (token, word) in R6_SYNC_TOKENS {
            if contains_word(&line.code, word) {
                findings.push(Finding {
                    rule: Rule::R6Concurrency,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "blocking primitive `{word}` in sim-visible code; the parallel \
                         substrate is lock-free (OnceLock slot tables + atomics) — \
                         restructure or add an allowlist entry ({token})"
                    ),
                    remedy: Remedy::AllowlistEntry,
                    allow_token: Some(token),
                });
            }
        }
        if contains_word(&line.code, "unsafe") && !has_justification(&lines, idx, SAFETY_MARKER) {
            findings.push(Finding {
                rule: Rule::R6Concurrency,
                file: file.to_string(),
                line: idx + 1,
                message: "`unsafe` without a `// SAFETY: <why>` comment on the same or \
                          preceding line"
                    .to_string(),
                remedy: Remedy::JustifyComment,
                allow_token: None,
            });
        }
    }
    findings
}

/// R7: allocation inside `/// xtask: no-alloc` tagged function bodies.
///
/// The tag is an opt-in contract on walk-loop hot paths: arena buffers are
/// pre-sized and reused across batches, so any per-step allocation is a
/// regression. No allowlist — either the function stops allocating or it
/// drops the tag.
pub fn lint_hot_path_alloc(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !line.no_alloc {
            continue;
        }
        for needle in R7_ALLOC_TOKENS {
            for _ in 0..count_occurrences(&line.code, needle) {
                findings.push(Finding {
                    rule: Rule::R7HotPathAlloc,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{needle}` allocates inside an `xtask: no-alloc` tagged body; \
                         reuse an arena buffer or drop the tag"
                    ),
                    remedy: Remedy::Fix,
                    allow_token: None,
                });
            }
        }
    }
    findings
}

/// Returns the item name when `line` declares a top-level public item
/// subject to R4.
fn public_item_name(line: &str) -> Option<&str> {
    // Top level only: declarations start at column 0.
    if line.starts_with(' ') || line.starts_with('\t') {
        return None;
    }
    let rest = line.strip_prefix("pub ")?;
    let rest = rest.strip_prefix("const ").map_or(rest, |r| r); // `pub const fn`
    for kw in ["fn ", "struct ", "enum ", "trait "] {
        if let Some(decl) = rest.strip_prefix(kw) {
            let name: &str = decl
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .unwrap_or_default();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        count += 1;
        from += pos + needle.len();
    }
    count
}

/// Whole-word containment (neighbours must not be identifier chars).
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = haystack[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Trailing operand token of an expression fragment.
fn last_token(fragment: &str) -> &str {
    let trimmed = fragment.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .map_or(0, |p| p + 1);
    &trimmed[start..]
}

/// Leading operand token of an expression fragment.
fn first_token(fragment: &str) -> &str {
    let trimmed = fragment.trim_start();
    let end = trimmed
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .unwrap_or(trimmed.len());
    &trimmed[..end]
}

/// Heuristic: does this operand token denote a float?
fn is_floatish(token: &str) -> bool {
    if token.ends_with("f64") || token.ends_with("f32") {
        return true;
    }
    if token.starts_with("f64::") || token.starts_with("f32::") {
        return true;
    }
    // A digit followed by `.` followed by a digit anywhere in the token
    // (covers 0.0, 1e-3 is exponent-only so also check eE with digits).
    let bytes = token.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

/// Everything `cargo xtask lint` checks, rolled into one call.
///
/// Scans the workspace rooted at `root`, applies the allowlist, and
/// returns all findings (empty ⇒ the gate passes).
///
/// # Errors
///
/// Propagates IO errors reading sources, and allowlist syntax errors as a
/// boxed message.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let allow = parse_allowlist(&allow_text)?;

    let mut findings = Vec::new();

    let lint_crate = |krate: &str, findings: &mut Vec<Finding>| -> Result<(), String> {
        let dir = root.join("crates").join(krate).join("src");
        for path in rust_sources(&dir)? {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = relative_label(root, &path);

            if R1_CRATES.contains(&krate) {
                findings.extend(lint_no_panic(&rel, &source));
            }
            if R2_CRATES.contains(&krate) {
                findings.extend(lint_no_hash_collections(&rel, &source));
            }
            if R3_CRATES.contains(&krate) {
                findings.extend(lint_float_discipline(&rel, &source));
            }
            if R4_FILES.contains(&rel.as_str()) {
                findings.extend(lint_paper_refs(&rel, &source));
            }
            if SIM_VISIBLE_CRATES.contains(&krate) {
                let seeding = R5_SEEDING_MODULES.contains(&rel.as_str());
                findings.extend(lint_rng_discipline(&rel, &source, seeding));
                findings.extend(lint_concurrency(&rel, &source));
                findings.extend(lint_hot_path_alloc(&rel, &source));
            }
        }
        Ok(())
    };

    let mut crates_to_scan: Vec<&str> = Vec::new();
    for set in [R1_CRATES, R2_CRATES, R3_CRATES] {
        for krate in set {
            if !crates_to_scan.contains(krate) {
                crates_to_scan.push(krate);
            }
        }
    }
    for krate in crates_to_scan {
        lint_crate(krate, &mut findings)?;
    }

    apply_allowlist(findings, &allow)
}

/// Applies the exact-count allowlist: drops covered findings, then reports
/// stale or slack entries (the allowlist may only shrink).
fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry]) -> Result<Vec<Finding>, String> {
    // Occurrence counts per (rule code, file, token) across all
    // allowlistable findings.
    let mut counts: Vec<(&'static str, String, &'static str, usize)> = Vec::new();
    for finding in &findings {
        let Some(token) = finding.allow_token else {
            continue;
        };
        let code = finding.rule.code();
        match counts
            .iter_mut()
            .find(|(c, f, t, _)| *c == code && *f == finding.file && *t == token)
        {
            Some(entry) => entry.3 += 1,
            None => counts.push((code, finding.file.clone(), token, 1)),
        }
    }
    let actual_for = |entry: &AllowEntry| -> usize {
        counts
            .iter()
            .find(|(c, f, t, _)| *c == entry.rule && *f == entry.file && *t == entry.token)
            .map_or(0, |(_, _, _, n)| *n)
    };

    // Drop exactly-covered findings, flag drift.
    let mut kept = Vec::new();
    'finding: for finding in findings {
        if let Some(token) = finding.allow_token {
            for entry in allow {
                if entry.rule == finding.rule.code()
                    && entry.file == finding.file
                    && entry.token == token
                    && actual_for(entry) <= entry.count
                {
                    continue 'finding; // justified occurrence
                }
            }
        }
        kept.push(finding);
    }
    let mut findings = kept;

    // The allowlist may only shrink: stale or slack entries are themselves
    // violations.
    for entry in allow {
        let actual = actual_for(entry);
        if actual == 0 {
            findings.push(Finding {
                rule: Rule::Allowlist,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "stale entry: no `{}` occurrences remain in {} — delete the entry",
                    entry.token, entry.file
                ),
                remedy: Remedy::Fix,
                allow_token: None,
            });
        } else if actual < entry.count {
            findings.push(Finding {
                rule: Rule::Allowlist,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "slack entry: {} `{}` occurrences remain in {} but {} are allowed — \
                     tighten the count",
                    actual, entry.token, entry.file, entry.count
                ),
                remedy: Remedy::Fix,
                allow_token: None,
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order.
///
/// # Errors
///
/// Propagates directory-walk IO errors with path context.
pub fn rust_sources(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("read_dir {}: {e}", current.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", current.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_item_names_are_extracted() {
        assert_eq!(public_item_name("pub fn step(&mut self) {"), Some("step"));
        assert_eq!(public_item_name("pub struct Walk {"), Some("Walk"));
        assert_eq!(public_item_name("pub enum Kind {"), Some("Kind"));
        assert_eq!(public_item_name("pub const fn n() -> usize {"), Some("n"));
        assert_eq!(public_item_name("    pub fn indented() {"), None);
        assert_eq!(public_item_name("pub use foo::bar;"), None);
        assert_eq!(public_item_name("pub mod quux;"), None);
    }

    #[test]
    fn floatish_tokens() {
        assert!(is_floatish("0.0"));
        assert!(is_floatish("1.25"));
        assert!(is_floatish("f64::NAN"));
        assert!(is_floatish("1f64"));
        assert!(!is_floatish("count"));
        assert!(!is_floatish("0"));
        assert!(!is_floatish("a.b"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
        assert!(!contains_word("HashMapper", "HashMap"));
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        let codes: Vec<&str> = RULES.iter().map(|info| info.code).collect();
        assert_eq!(codes, ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "ALLOW"]);
        assert_eq!(Rule::R5RngDiscipline.code(), "R5");
        assert_eq!(Rule::R7HotPathAlloc.info().name, "no-alloc");
        assert_eq!(Rule::Allowlist.to_string(), "allowlist");
        assert_eq!(Rule::R6Concurrency.to_string(), "R6(concurrency)");
    }

    #[test]
    fn allowlist_parses_and_validates() {
        let good = "# comment\nR1 crates/db/src/store.rs unwrap 2 # slot invariant\n";
        let entries = parse_allowlist(good).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "R1");
        assert_eq!(entries[0].count, 2);

        assert!(parse_allowlist("R1 f unwrap 2").is_err()); // no justification
        assert!(parse_allowlist("R2 f unwrap 2 # x").is_err()); // R2 not allowlistable
        assert!(parse_allowlist("R1 f frob 2 # x").is_err()); // unknown token
        assert!(parse_allowlist("R1 f unwrap 0 # x").is_err()); // zero count
    }

    #[test]
    fn generalized_allowlist_accepts_r5_and_r6_tokens() {
        let text = "R5 crates/workload/src/memory.rs seed_from_u64 1 # root-seed derivation\n\
                    R6 crates/telemetry/src/lib.rs mutex 2 # sink registration is off the hot path\n";
        let entries = parse_allowlist(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "R5");
        assert_eq!(entries[1].token, "mutex");

        // Vocabulary is rule-scoped: `unwrap` is not an R5 token.
        assert!(parse_allowlist("R5 f unwrap 1 # x").is_err());
        assert!(parse_allowlist("R6 f seed_from_u64 1 # x").is_err());
    }
}
