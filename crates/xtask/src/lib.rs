//! Digest's custom static-analysis pass (`cargo xtask lint`).
//!
//! The engine's statistical contracts — `|X̂ − X| ≤ ε` with probability
//! ≥ p (PAPER.md §II, Eq. 8–11) — are voided by panicking estimator paths
//! and nondeterministic iteration, neither of which default clippy catches.
//! This crate is a std-only source scanner enforcing four domain rules:
//!
//! * **R1 — panic-free library crates**: no `unwrap()` / `expect()` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
//!   `core`, `stats`, `sampling`, `net`, `db`, `sim`, `telemetry`
//!   outside `#[cfg(test)]` code, modulo a checked-in allowlist that may
//!   only shrink.
//! * **R2 — replay determinism**: no `HashMap` / `HashSet` in simulator-
//!   or estimator-visible crates (`core`, `stats`, `sampling`, `net`,
//!   `db`, `sim`, `workload`, `telemetry`) outside `#[cfg(test)]` — use
//!   `BTreeMap` / `BTreeSet` or an explicit sort so iteration order is
//!   stable.
//! * **R3 — float discipline**: no bare `==` / `!=` against float
//!   operands and no narrowing `as` casts (`u8`/`u16`/`u32`/`i8`/`i16`/
//!   `i32`/`f32`) in `stats` / `core` numeric code.
//! * **R4 — paper traceability**: every top-level public item in the
//!   estimator/scheduler modules must carry a paper-section (`§`) or
//!   equation (`Eq.`) doc reference.
//!
//! The scanner is deliberately token-based (comments and string literals
//! are scrubbed before matching, `#[cfg(test)]` regions are tracked by
//! brace depth) rather than a full parser: the rules target textual
//! constructs that survive that approximation, and a std-only pass keeps
//! the gate runnable in the offline build environment.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod scrub;

/// Crates whose library sources must be panic-free (R1).
pub const R1_CRATES: &[&str] = &["core", "stats", "sampling", "net", "db", "sim", "telemetry"];

/// Crates whose library sources feed the simulator or estimators and must
/// avoid nondeterministic hash collections (R2).
pub const R2_CRATES: &[&str] = &[
    "core",
    "stats",
    "sampling",
    "net",
    "db",
    "sim",
    "workload",
    "telemetry",
];

/// Crates holding numeric estimator code subject to float discipline (R3).
pub const R3_CRATES: &[&str] = &["stats", "core"];

/// Estimator/scheduler modules whose public API must cite the paper (R4).
pub const R4_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/rpt.rs",
    "crates/core/src/indep.rs",
    "crates/core/src/baselines.rs",
    "crates/core/src/quantile_est.rs",
    "crates/core/src/grouped.rs",
    "crates/sampling/src/metropolis.rs",
    "crates/sampling/src/operator.rs",
    "crates/sampling/src/baselines.rs",
    "crates/sampling/src/size_estimate.rs",
    "crates/sampling/src/mixing.rs",
    "crates/stats/src/repeated.rs",
    "crates/stats/src/clt.rs",
];

/// Path of the R1 allowlist, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint-allowlist.txt";

/// Panic-capable constructs banned by R1 (matched against scrubbed code).
const R1_TOKENS: &[(&str, &str)] = &[
    ("unwrap", ".unwrap()"),
    ("expect", ".expect("),
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

/// Narrowing cast targets banned by R3.
const R3_NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panic-capable construct in library code.
    R1Panic,
    /// Nondeterministic hash collection in sim/estimator-visible code.
    R2HashCollection,
    /// Bare float comparison or narrowing cast in numeric code.
    R3FloatDiscipline,
    /// Public estimator/scheduler item without a paper reference.
    R4PaperRef,
    /// Problem with the allowlist itself (stale or loosened entry).
    Allowlist,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::R1Panic => "R1(no-panic)",
            Rule::R2HashCollection => "R2(determinism)",
            Rule::R3FloatDiscipline => "R3(float-discipline)",
            Rule::R4PaperRef => "R4(paper-ref)",
            Rule::Allowlist => "allowlist",
        };
        f.write_str(name)
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One parsed allowlist entry: `R1 <path> <token> <count> # justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// R1 token name (`unwrap`, `expect`, ...).
    pub token: String,
    /// Exact number of occurrences the entry justifies.
    pub count: usize,
    /// Line of the allowlist file the entry came from.
    pub line: usize,
}

/// Parses the R1 allowlist format.
///
/// Grammar per non-comment line:
/// `R1 <workspace-relative-path> <token> <count> # <justification>` —
/// the justification is mandatory, which is what "documented entries only"
/// means mechanically.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed entries.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = match line.split_once('#') {
            Some((spec, justification)) => (spec.trim(), justification.trim()),
            None => {
                return Err(format!(
                    "allowlist line {line_no}: missing `# justification`"
                ))
            }
        };
        if justification.is_empty() {
            return Err(format!("allowlist line {line_no}: empty justification"));
        }
        let fields: Vec<&str> = spec.split_whitespace().collect();
        let [rule, file, token, count] = fields.as_slice() else {
            return Err(format!(
                "allowlist line {line_no}: expected `R1 <path> <token> <count>`, got `{spec}`"
            ));
        };
        if *rule != "R1" {
            return Err(format!(
                "allowlist line {line_no}: only R1 entries are supported, got `{rule}`"
            ));
        }
        if !R1_TOKENS.iter().any(|(name, _)| name == token) {
            return Err(format!("allowlist line {line_no}: unknown token `{token}`"));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {line_no}: bad count `{count}`"))?;
        if count == 0 {
            return Err(format!(
                "allowlist line {line_no}: zero-count entry — delete it instead"
            ));
        }
        entries.push(AllowEntry {
            file: (*file).to_string(),
            token: (*token).to_string(),
            count,
            line: line_no,
        });
    }
    Ok(entries)
}

/// R1: panic-capable constructs outside `#[cfg(test)]`.
///
/// `file` is the workspace-relative label used in findings; `source` is the
/// file contents. Allowlisting happens in [`lint_workspace`], not here.
pub fn lint_no_panic(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (name, needle) in R1_TOKENS {
            for _ in 0..count_occurrences(&line.code, needle) {
                findings.push(Finding {
                    rule: Rule::R1Panic,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!("`{needle}` can panic; thread a typed error instead ({name})"),
                });
            }
        }
    }
    findings
}

/// R2: `HashMap` / `HashSet` outside `#[cfg(test)]`.
pub fn lint_no_hash_collections(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(&line.code, ty) {
                findings.push(Finding {
                    rule: Rule::R2HashCollection,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` iteration order is nondeterministic; use BTree{} or sort explicitly",
                        &ty[4..]
                    ),
                });
            }
        }
    }
    findings
}

/// R3: bare float `==` / `!=` and narrowing `as` casts.
pub fn lint_float_discipline(file: &str, source: &str) -> Vec<Finding> {
    let lines = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for op in ["==", "!="] {
            let mut search_from = 0;
            while let Some(pos) = line.code[search_from..].find(op) {
                let at = search_from + pos;
                search_from = at + op.len();
                // Skip `<=`, `>=`, `=>`, `+=`-style compounds and pattern
                // guards: only a standalone `==`/`!=` counts.
                let before = line.code[..at].chars().next_back();
                if op == "==" && matches!(before, Some('=' | '!' | '<' | '>')) {
                    continue;
                }
                let left = last_token(&line.code[..at]);
                let right = first_token(&line.code[at + op.len()..]);
                if is_floatish(left) || is_floatish(right) {
                    findings.push(Finding {
                        rule: Rule::R3FloatDiscipline,
                        file: file.to_string(),
                        line: idx + 1,
                        message: format!(
                            "bare `{op}` on float operands (`{left}` {op} `{right}`); \
                             compare with an explicit tolerance"
                        ),
                    });
                }
            }
        }
        let mut search_from = 0;
        while let Some(pos) = line.code[search_from..].find(" as ") {
            let at = search_from + pos;
            search_from = at + 4;
            let target = first_token(&line.code[at + 4..]);
            if R3_NARROWING_TARGETS.contains(&target) {
                findings.push(Finding {
                    rule: Rule::R3FloatDiscipline,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "narrowing cast `as {target}` can silently truncate; \
                         use `try_from` or a checked conversion"
                    ),
                });
            }
        }
    }
    findings
}

/// R4: top-level public items must cite a paper section or equation.
///
/// The doc block (contiguous `///` lines, skipping attributes) above each
/// top-level `pub fn|struct|enum|trait` must mention `§` or `Eq.`/
/// `equation`.
pub fn lint_paper_refs(file: &str, source: &str) -> Vec<Finding> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let scrubbed = scrub::scrub(source);
    let mut findings = Vec::new();
    for (idx, line) in raw_lines.iter().enumerate() {
        if scrubbed.get(idx).is_some_and(|l| l.in_test) {
            continue;
        }
        let Some(item) = public_item_name(line) else {
            continue;
        };
        // Collect the doc block above, skipping attribute lines.
        let mut doc = String::new();
        let mut cursor = idx;
        while cursor > 0 {
            cursor -= 1;
            let above = raw_lines[cursor].trim_start();
            if above.starts_with("#[") || above.starts_with("#![") {
                continue;
            }
            if let Some(text) = above.strip_prefix("///") {
                doc.push_str(text);
                doc.push('\n');
                continue;
            }
            break;
        }
        let cited = doc.contains('§')
            || doc.contains("Eq.")
            || doc.to_ascii_lowercase().contains("equation");
        if !cited {
            findings.push(Finding {
                rule: Rule::R4PaperRef,
                file: file.to_string(),
                line: idx + 1,
                message: format!(
                    "public item `{item}` lacks a paper reference (§ section or Eq. number) \
                     in its doc comment"
                ),
            });
        }
    }
    findings
}

/// Returns the item name when `line` declares a top-level public item
/// subject to R4.
fn public_item_name(line: &str) -> Option<&str> {
    // Top level only: declarations start at column 0.
    if line.starts_with(' ') || line.starts_with('\t') {
        return None;
    }
    let rest = line.strip_prefix("pub ")?;
    let rest = rest.strip_prefix("const ").map_or(rest, |r| r); // `pub const fn`
    for kw in ["fn ", "struct ", "enum ", "trait "] {
        if let Some(decl) = rest.strip_prefix(kw) {
            let name: &str = decl
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .unwrap_or_default();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    None
}

fn count_occurrences(haystack: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        count += 1;
        from += pos + needle.len();
    }
    count
}

/// Whole-word containment (neighbours must not be identifier chars).
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = haystack[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Trailing operand token of an expression fragment.
fn last_token(fragment: &str) -> &str {
    let trimmed = fragment.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .map_or(0, |p| p + 1);
    &trimmed[start..]
}

/// Leading operand token of an expression fragment.
fn first_token(fragment: &str) -> &str {
    let trimmed = fragment.trim_start();
    let end = trimmed
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .unwrap_or(trimmed.len());
    &trimmed[..end]
}

/// Heuristic: does this operand token denote a float?
fn is_floatish(token: &str) -> bool {
    if token.ends_with("f64") || token.ends_with("f32") {
        return true;
    }
    if token.starts_with("f64::") || token.starts_with("f32::") {
        return true;
    }
    // A digit followed by `.` followed by a digit anywhere in the token
    // (covers 0.0, 1e-3 is exponent-only so also check eE with digits).
    let bytes = token.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

/// Everything `cargo xtask lint` checks, rolled into one call.
///
/// Scans the workspace rooted at `root`, applies the R1 allowlist, and
/// returns all findings (empty ⇒ the gate passes).
///
/// # Errors
///
/// Propagates IO errors reading sources, and allowlist syntax errors as a
/// boxed message.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let allow = parse_allowlist(&allow_text)?;

    let mut findings = Vec::new();
    let mut r1_counts: Vec<(String, String, usize, usize)> = Vec::new(); // file, token, count, first line

    let lint_crate = |krate: &str,
                      findings: &mut Vec<Finding>,
                      r1_counts: &mut Vec<(String, String, usize, usize)>|
     -> Result<(), String> {
        let dir = root.join("crates").join(krate).join("src");
        for path in rust_sources(&dir)? {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = relative_label(root, &path);

            if R1_CRATES.contains(&krate) {
                for finding in lint_no_panic(&rel, &source) {
                    let token = R1_TOKENS
                        .iter()
                        .find(|(name, _)| finding.message.contains(&format!("({name})")))
                        .map(|(name, _)| (*name).to_string())
                        .unwrap_or_default();
                    match r1_counts
                        .iter_mut()
                        .find(|(f, t, _, _)| *f == rel && *t == token)
                    {
                        Some(entry) => entry.2 += 1,
                        None => r1_counts.push((rel.clone(), token, 1, finding.line)),
                    }
                    findings.push(finding);
                }
            }
            if R2_CRATES.contains(&krate) {
                findings.extend(lint_no_hash_collections(&rel, &source));
            }
            if R3_CRATES.contains(&krate) {
                findings.extend(lint_float_discipline(&rel, &source));
            }
            if R4_FILES.contains(&rel.as_str()) {
                findings.extend(lint_paper_refs(&rel, &source));
            }
        }
        Ok(())
    };

    let mut crates_to_scan: Vec<&str> = Vec::new();
    for set in [R1_CRATES, R2_CRATES, R3_CRATES] {
        for krate in set {
            if !crates_to_scan.contains(krate) {
                crates_to_scan.push(krate);
            }
        }
    }
    for krate in crates_to_scan {
        lint_crate(krate, &mut findings, &mut r1_counts)?;
    }

    // Apply the R1 allowlist: drop exactly-covered findings, flag drift.
    let mut kept = Vec::new();
    'finding: for finding in findings {
        if finding.rule == Rule::R1Panic {
            for entry in &allow {
                if entry.file == finding.file
                    && finding.message.contains(&format!("({})", entry.token))
                {
                    let actual = r1_counts
                        .iter()
                        .find(|(f, t, _, _)| *f == entry.file && *t == entry.token)
                        .map_or(0, |(_, _, n, _)| *n);
                    if actual <= entry.count {
                        continue 'finding; // justified occurrence
                    }
                }
            }
        }
        kept.push(finding);
    }
    let mut findings = kept;

    // The allowlist may only shrink: stale or slack entries are themselves
    // violations.
    for entry in &allow {
        let actual = r1_counts
            .iter()
            .find(|(f, t, _, _)| *f == entry.file && *t == entry.token)
            .map_or(0, |(_, _, n, _)| *n);
        if actual == 0 {
            findings.push(Finding {
                rule: Rule::Allowlist,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "stale entry: no `{}` occurrences remain in {} — delete the entry",
                    entry.token, entry.file
                ),
            });
        } else if actual < entry.count {
            findings.push(Finding {
                rule: Rule::Allowlist,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "slack entry: {} `{}` occurrences remain in {} but {} are allowed — \
                     tighten the count",
                    actual, entry.token, entry.file, entry.count
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order.
///
/// # Errors
///
/// Propagates directory-walk IO errors with path context.
pub fn rust_sources(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("read_dir {}: {e}", current.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", current.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_item_names_are_extracted() {
        assert_eq!(public_item_name("pub fn step(&mut self) {"), Some("step"));
        assert_eq!(public_item_name("pub struct Walk {"), Some("Walk"));
        assert_eq!(public_item_name("pub enum Kind {"), Some("Kind"));
        assert_eq!(public_item_name("pub const fn n() -> usize {"), Some("n"));
        assert_eq!(public_item_name("    pub fn indented() {"), None);
        assert_eq!(public_item_name("pub use foo::bar;"), None);
        assert_eq!(public_item_name("pub mod quux;"), None);
    }

    #[test]
    fn floatish_tokens() {
        assert!(is_floatish("0.0"));
        assert!(is_floatish("1.25"));
        assert!(is_floatish("f64::NAN"));
        assert!(is_floatish("1f64"));
        assert!(!is_floatish("count"));
        assert!(!is_floatish("0"));
        assert!(!is_floatish("a.b"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
        assert!(!contains_word("HashMapper", "HashMap"));
    }

    #[test]
    fn allowlist_parses_and_validates() {
        let good = "# comment\nR1 crates/db/src/store.rs unwrap 2 # slot invariant\n";
        let entries = parse_allowlist(good).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);

        assert!(parse_allowlist("R1 f unwrap 2").is_err()); // no justification
        assert!(parse_allowlist("R2 f unwrap 2 # x").is_err()); // not R1
        assert!(parse_allowlist("R1 f frob 2 # x").is_err()); // unknown token
        assert!(parse_allowlist("R1 f unwrap 0 # x").is_err()); // zero count
    }
}
