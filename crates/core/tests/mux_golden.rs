//! Golden-trace regression test for the mux scheduler.
//!
//! Two sections, byte-compared against a checked-in fixture:
//!
//! * **planner** — replays the pure [`RoundPlanner`] over scripted
//!   per-member deadline periods, logging every round's due/pulled split.
//!   Any change to the coalescing rule (fire at earliest member deadline,
//!   pull within the horizon, never pull without a due member) shows up
//!   as a readable line diff.
//! * **mux** — drives a seeded shared [`QueryMux`] over a fixed world and
//!   logs each member's per-tick decision (snapshot or hold, shared round
//!   id, samples, messages, estimate). This pins the end-to-end scheduler
//!   × sizing × panel-sharing pipeline bit-for-bit.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```bash
//! UPDATE_MUX_GOLDEN=1 cargo test -p digest-core --test mux_golden
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation
)]

use digest_core::{ContinuousQuery, MuxConfig, Precision, QueryMux, RoundPlanner, TickContext};
use digest_db::{Expr, P2PDatabase, Schema, Tuple};
use digest_net::{topology, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/mux_decisions.txt"
);

/// Replays the planner over members with fixed re-arm periods: each
/// served member's next deadline is `tick + period`. Deterministic, no
/// randomness — the log is exactly the coalescing rule's output.
fn replay_planner(horizon: u64, periods: &[u64], ticks: u64, out: &mut String) {
    writeln!(out, "planner horizon={horizon} periods={periods:?}").unwrap();
    let mut planner = RoundPlanner::new(horizon);
    for id in 0..periods.len() as u64 {
        planner.register(id);
    }
    for tick in 0..ticks {
        let plan = planner.plan(tick);
        if plan.is_empty() {
            continue;
        }
        writeln!(
            out,
            "  t={tick:>3} due={:?} pulled={:?}",
            plan.due, plan.pulled
        )
        .unwrap();
        for &id in &plan.members() {
            planner.set_deadline(id, tick + periods[id as usize]);
        }
    }
    writeln!(out, "end planner").unwrap();
}

/// The fixed world the mux section runs on: a complete 8-node overlay,
/// 25 tuples per node around 50. Same construction as the mux unit
/// tests; pure seeded arithmetic, so the trace is bit-stable.
fn world(seed: u64) -> (Graph, P2PDatabase) {
    let graph = topology::complete(8).unwrap();
    let mut db = P2PDatabase::new(Schema::single("a"));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for v in 0..8 {
        db.register_node(NodeId(v));
        for _ in 0..25 {
            let value = 50.0 + rng.gen_range(-8.0..8.0);
            db.insert(NodeId(v), Tuple::single(value)).unwrap();
        }
    }
    (graph, db)
}

/// Drives a shared mux over the fixed world and logs every member's
/// per-tick decision. Round ids are renumbered from the first observed
/// one so the fixture does not depend on the process-global trace
/// counter.
fn replay_mux(out: &mut String) {
    writeln!(out, "mux sharing=on horizon=2 piggyback=on").unwrap();
    let (graph, db) = world(42);
    let mut mux = QueryMux::new(MuxConfig::default()).unwrap();
    let schema = Schema::single("a");
    for &(delta, eps, p) in &[(2.0, 1.0, 0.95), (4.0, 2.0, 0.90), (8.0, 4.0, 0.90)] {
        mux.register(ContinuousQuery::avg(
            Expr::first_attr(&schema),
            Precision::new(delta, eps, p).unwrap(),
        ))
        .unwrap();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut round_base: Option<u64> = None;
    for tick in 0..40 {
        let ctx = TickContext {
            tick,
            graph: &graph,
            db: &db,
            origin: NodeId(0),
        };
        let outcomes = mux.on_tick_mux(&ctx, &mut rng).unwrap();
        for o in &outcomes {
            let round = o.round.map(|r| {
                let base = *round_base.get_or_insert(r);
                r - base
            });
            writeln!(
                out,
                "  t={tick:>3} q={} snap={} round={} samples={} messages={} est={:.6}",
                o.query,
                u8::from(o.outcome.snapshot_executed),
                round.map_or_else(|| "-".to_owned(), |r| r.to_string()),
                o.outcome.samples_this_tick,
                o.outcome.messages_this_tick,
                o.outcome.estimate,
            )
            .unwrap();
        }
    }
    writeln!(out, "end mux").unwrap();
}

fn decision_trace() -> String {
    let mut out = String::new();
    out.push_str("mux golden decision trace v1\n");
    // Immediate-due bootstrap, then staggered periods around one another:
    // exercises pull-forward (periods 5/6 within horizon 2) and isolated
    // fires (period 13).
    replay_planner(2, &[5, 6, 13], 60, &mut out);
    // Horizon 0 disables pulling entirely.
    replay_planner(0, &[5, 6, 13], 60, &mut out);
    // A tight member (period 1) drags a loose one (period 9) along only
    // when deadlines actually land within the horizon.
    replay_planner(3, &[1, 9], 30, &mut out);
    replay_mux(&mut out);
    out
}

#[test]
fn mux_scheduler_decisions_match_golden_trace() {
    let trace = decision_trace();
    if std::env::var("UPDATE_MUX_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &trace).unwrap();
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing — run with UPDATE_MUX_GOLDEN=1 to create it");
    if trace == golden {
        return;
    }
    for (i, (got, want)) in trace.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "mux golden trace diverged at line {} (see {})",
            i + 1,
            GOLDEN_PATH,
        );
    }
    panic!(
        "mux golden trace length changed: got {} lines, fixture has {} (see {})",
        trace.lines().count(),
        golden.lines().count(),
        GOLDEN_PATH,
    );
}
