//! Golden-trace regression test for the `PRED-k` scheduler.
//!
//! Drives `PredScheduler` through a fixed piecewise signal — steady,
//! linear drift, accelerating quadratic, plus a mid-trace reset — the
//! way the engine does (each decided delay advances the clock), and
//! byte-compares the full decision log against a checked-in fixture.
//! Any change to the extrapolator's fitting, remainder bound, or skip
//! logic shows up as a readable line diff here.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```bash
//! UPDATE_PRED_GOLDEN=1 cargo test -p digest-core --test pred_golden
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use digest_core::{PredScheduler, SnapshotScheduler};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/pred_decisions.txt"
);

/// The deterministic signal the scheduler watches: steady, then linear
/// drift, then a quadratic ramp. Pure f64 arithmetic on small integers,
/// so the trace is bit-stable across platforms.
fn signal(t: u64) -> f64 {
    let t = t as f64;
    if t < 15.0 {
        100.0
    } else if t < 30.0 {
        100.0 + 4.0 * (t - 15.0)
    } else {
        160.0 + 0.5 * (t - 30.0) * (t - 30.0)
    }
}

/// Replays one `(k, δ)` scenario and appends every decision to `out`.
fn replay(k: usize, delta: f64, horizon: u64, reset_at: Option<u64>, out: &mut String) {
    let mut s = PredScheduler::new(k).unwrap();
    writeln!(
        out,
        "scenario k={k} delta={delta} horizon={horizon} reset_at={reset_at:?}"
    )
    .unwrap();
    let mut t = 0u64;
    let mut pending_reset = reset_at;
    while t < horizon {
        if pending_reset.is_some_and(|r| t >= r) {
            s.reset();
            pending_reset = None;
            writeln!(out, "  t={t:>3} reset").unwrap();
        }
        let estimate = signal(t);
        s.observe(t as f64, estimate);
        let delay = s.next_delay(delta).unwrap();
        writeln!(out, "  t={t:>3} observe={estimate:.6} delay={delay}").unwrap();
        t += delay;
    }
    writeln!(out, "end scenario").unwrap();
}

fn decision_trace() -> String {
    let mut out = String::new();
    out.push_str("PRED-k golden decision trace v1\n");
    for &(k, delta) in &[(2usize, 2.0f64), (3, 5.0), (5, 5.0), (3, 1.0)] {
        replay(k, delta, 200, None, &mut out);
    }
    // A reset mid-trace must restore bootstrap (snapshot every tick).
    replay(3, 5.0, 120, Some(20), &mut out);
    out
}

#[test]
fn pred_scheduler_decisions_match_golden_trace() {
    let trace = decision_trace();
    if std::env::var("UPDATE_PRED_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &trace).unwrap();
        eprintln!("updated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing — run with UPDATE_PRED_GOLDEN=1 to create it");
    if trace == golden {
        return;
    }
    // Readable diff: first divergent line with context.
    for (i, (got, want)) in trace.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "PRED golden trace diverged at line {} (see {})",
            i + 1,
            GOLDEN_PATH,
        );
    }
    panic!(
        "PRED golden trace length changed: got {} lines, fixture has {} (see {})",
        trace.lines().count(),
        golden.lines().count(),
        GOLDEN_PATH,
    );
}
