//! Property-based tests of the query-engine building blocks.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_core::{AggregateOp, ContinuousQuery, PanelKey, Precision, RoundPlanner};
use digest_core::{AllScheduler, PredScheduler, SnapshotScheduler};
use digest_db::{Expr, Predicate, Schema};
use proptest::prelude::*;

proptest! {
    #[test]
    fn precision_accepts_exactly_the_legal_domain(
        delta in -10.0f64..10.0,
        epsilon in -10.0f64..10.0,
        confidence in -0.5f64..1.5,
    ) {
        let legal = delta > 0.0 && epsilon > 0.0 && confidence > 0.0 && confidence < 1.0;
        prop_assert_eq!(Precision::new(delta, epsilon, confidence).is_ok(), legal);
    }

    #[test]
    fn target_variance_is_positive_and_monotone(
        epsilon in 0.01f64..10.0,
        confidence in 0.5f64..0.99,
    ) {
        let p = Precision::new(1.0, epsilon, confidence).unwrap();
        let v = p.target_variance().unwrap();
        prop_assert!(v > 0.0);
        let tighter = Precision::new(1.0, epsilon / 2.0, confidence).unwrap();
        prop_assert!(tighter.target_variance().unwrap() < v);
    }

    #[test]
    fn all_scheduler_always_says_one(delta in 0.001f64..100.0, obs in 0u64..50) {
        let mut s = AllScheduler::new();
        for t in 0..obs {
            s.observe(t as f64, t as f64);
        }
        prop_assert_eq!(s.next_delay(delta).unwrap(), 1);
    }

    #[test]
    fn pred_scheduler_delay_is_bounded_and_monotone_in_delta(
        k in 1usize..5,
        slope in -5.0f64..5.0,
        delta in 0.1f64..50.0,
    ) {
        let mut s = PredScheduler::new(k).unwrap();
        for t in 0..(k as u64 + 4) {
            s.observe(t as f64, slope * t as f64);
        }
        let d1 = s.next_delay(delta).unwrap();
        let d2 = s.next_delay(delta * 2.0).unwrap();
        prop_assert!(d1 >= 1);
        prop_assert!(d2 >= d1, "looser δ must not schedule sooner: {d1} vs {d2}");
    }

    #[test]
    fn query_display_round_trips_predicate_and_expression(
        threshold in -100.0f64..100.0,
        delta in 0.1f64..10.0,
    ) {
        let schema = Schema::new(["a", "b"]);
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::parse("a + b * 2", &schema).unwrap(),
            Precision::new(delta, 1.0, 0.9).unwrap(),
        )
        .with_predicate(
            Predicate::parse(&format!("a > {threshold}"), &schema).unwrap(),
        );
        let shown = q.to_string();
        prop_assert!(shown.contains("SUM"));
        prop_assert!(shown.contains("WHERE"));
        // The displayed predicate reparses to an equivalent one.
        let inner = shown.split("WHERE ").nth(1).unwrap().split(" [").next().unwrap();
        let reparsed = Predicate::parse(inner, &schema).unwrap();
        for a in [-200.0, threshold - 0.5, threshold + 0.5, 200.0] {
            let t = digest_db::Tuple::new(vec![a, 0.0]);
            prop_assert_eq!(reparsed.eval(&t).unwrap(), q.predicate.eval(&t).unwrap());
        }
    }

    /// A coalesced round never serves a member *later* than its own
    /// PRED-k deadline: for every tick and every registered query, if the
    /// deadline is `≤ tick` the query appears in `due`; and nothing is
    /// pulled past the horizon.
    #[test]
    fn planner_never_serves_a_member_late(
        horizon in 0u64..6,
        // 0..40 = a concrete deadline; ≥ 40 = never scheduled (the
        // vendored proptest has no Option strategy).
        deadlines in proptest::collection::vec(
            (0u64..48).prop_map(|v| if v >= 40 { None } else { Some(v) }),
            1..12,
        ),
        tick in 0u64..45,
    ) {
        let mut planner = RoundPlanner::new(horizon);
        for (id, deadline) in deadlines.iter().enumerate() {
            let id = id as u64;
            planner.register(id);
            if let Some(d) = deadline {
                planner.set_deadline(id, *d);
            }
        }
        let plan = planner.plan(tick);
        for (id, deadline) in deadlines.iter().enumerate() {
            let id = id as u64;
            let overdue = deadline.is_none_or(|d| d <= tick);
            prop_assert_eq!(
                plan.due.contains(&id),
                overdue,
                "query {} with deadline {:?} at tick {}: due must equal overdue",
                id, deadline, tick
            );
        }
        for &id in &plan.pulled {
            let d = deadlines[id as usize].unwrap();
            prop_assert!(
                d > tick && d <= tick + horizon,
                "pulled query {id} has deadline {d} outside ({tick}, {}]",
                tick + horizon
            );
        }
        // Pulling without a due member would waste an occasion.
        if plan.due.is_empty() {
            prop_assert!(plan.pulled.is_empty());
        }
        // Members are each listed exactly once, ascending.
        let members = plan.members();
        let mut deduped = members.clone();
        deduped.dedup();
        prop_assert_eq!(&members, &deduped);
    }

    /// Panel-sharing keys form an equivalence relation over queries:
    /// reflexive and symmetric for arbitrary (op, predicate, precision)
    /// combinations, and never compatible with size-estimation panels.
    #[test]
    fn panel_keys_are_reflexive_and_symmetric(
        op_a in 0usize..3,
        op_b in 0usize..3,
        // Thresholds above 50 mean "no predicate".
        pred_a in (-50.0f64..70.0).prop_map(|v| (v <= 50.0).then_some(v)),
        pred_b in (-50.0f64..70.0).prop_map(|v| (v <= 50.0).then_some(v)),
        delta in 0.1f64..10.0,
    ) {
        let schema = Schema::new(["a", "b"]);
        let ops = [AggregateOp::Avg, AggregateOp::Sum, AggregateOp::Count];
        let build = |op: usize, pred: Option<f64>| {
            let mut q = ContinuousQuery::new(
                ops[op],
                Expr::parse("a + b", &schema).unwrap(),
                Precision::new(delta, 1.0, 0.9).unwrap(),
            );
            if let Some(threshold) = pred {
                q = q.with_predicate(
                    Predicate::parse(&format!("a > {threshold}"), &schema).unwrap(),
                );
            }
            q
        };
        let qa = build(op_a, pred_a);
        let qb = build(op_b, pred_b);
        let ka = PanelKey::for_query(&qa);
        let kb = PanelKey::for_query(&qb);
        prop_assert!(ka.shares_panel(&ka), "reflexive");
        prop_assert_eq!(ka.shares_panel(&kb), kb.shares_panel(&ka), "symmetric");
        // All tuple-expression aggregates share the uniform-over-tuples
        // panel (§V), while size-estimation panels never mix in.
        prop_assert!(ka.shares_panel(&kb));
        prop_assert!(!ka.shares_panel(&PanelKey::size_estimation()));
        prop_assert!(!PanelKey::size_estimation().shares_panel(&kb));
    }
}
