//! Property-based tests of the query-engine building blocks.

// Tests may panic freely; the workspace deny-lints target library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use digest_core::{AggregateOp, ContinuousQuery, Precision};
use digest_core::{AllScheduler, PredScheduler, SnapshotScheduler};
use digest_db::{Expr, Predicate, Schema};
use proptest::prelude::*;

proptest! {
    #[test]
    fn precision_accepts_exactly_the_legal_domain(
        delta in -10.0f64..10.0,
        epsilon in -10.0f64..10.0,
        confidence in -0.5f64..1.5,
    ) {
        let legal = delta > 0.0 && epsilon > 0.0 && confidence > 0.0 && confidence < 1.0;
        prop_assert_eq!(Precision::new(delta, epsilon, confidence).is_ok(), legal);
    }

    #[test]
    fn target_variance_is_positive_and_monotone(
        epsilon in 0.01f64..10.0,
        confidence in 0.5f64..0.99,
    ) {
        let p = Precision::new(1.0, epsilon, confidence).unwrap();
        let v = p.target_variance().unwrap();
        prop_assert!(v > 0.0);
        let tighter = Precision::new(1.0, epsilon / 2.0, confidence).unwrap();
        prop_assert!(tighter.target_variance().unwrap() < v);
    }

    #[test]
    fn all_scheduler_always_says_one(delta in 0.001f64..100.0, obs in 0u64..50) {
        let mut s = AllScheduler::new();
        for t in 0..obs {
            s.observe(t as f64, t as f64);
        }
        prop_assert_eq!(s.next_delay(delta).unwrap(), 1);
    }

    #[test]
    fn pred_scheduler_delay_is_bounded_and_monotone_in_delta(
        k in 1usize..5,
        slope in -5.0f64..5.0,
        delta in 0.1f64..50.0,
    ) {
        let mut s = PredScheduler::new(k).unwrap();
        for t in 0..(k as u64 + 4) {
            s.observe(t as f64, slope * t as f64);
        }
        let d1 = s.next_delay(delta).unwrap();
        let d2 = s.next_delay(delta * 2.0).unwrap();
        prop_assert!(d1 >= 1);
        prop_assert!(d2 >= d1, "looser δ must not schedule sooner: {d1} vs {d2}");
    }

    #[test]
    fn query_display_round_trips_predicate_and_expression(
        threshold in -100.0f64..100.0,
        delta in 0.1f64..10.0,
    ) {
        let schema = Schema::new(["a", "b"]);
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            Expr::parse("a + b * 2", &schema).unwrap(),
            Precision::new(delta, 1.0, 0.9).unwrap(),
        )
        .with_predicate(
            Predicate::parse(&format!("a > {threshold}"), &schema).unwrap(),
        );
        let shown = q.to_string();
        prop_assert!(shown.contains("SUM"));
        prop_assert!(shown.contains("WHERE"));
        // The displayed predicate reparses to an equivalent one.
        let inner = shown.split("WHERE ").nth(1).unwrap().split(" [").next().unwrap();
        let reparsed = Predicate::parse(inner, &schema).unwrap();
        for a in [-200.0, threshold - 0.5, threshold + 0.5, 200.0] {
            let t = digest_db::Tuple::new(vec![a, 0.0]);
            prop_assert_eq!(reparsed.eval(&t).unwrap(), q.predicate.eval(&t).unwrap());
        }
    }
}
