//! The sample panel of repeated sampling.
//!
//! Between consecutive sampling occasions the engine keeps handles to the
//! tuples it sampled, together with the value each produced under the
//! query expression. At the next occasion the retained part of the panel
//! is *revisited*: the owning node is contacted directly (it is already
//! located, so this costs a constant couple of messages rather than a
//! random walk) and the tuple re-evaluated. Tuples that were deleted — or
//! whose node left — are detected through the handle's generation check
//! and dropped, forcing replacement by fresh samples exactly as §IV-B2a
//! prescribes.

use digest_db::{Expr, P2PDatabase, Predicate, TupleHandle};

/// One panel member: where the tuple lives and what it evaluated to at the
/// previous sampling occasion.
#[derive(Debug, Clone, Copy)]
pub struct PanelEntry {
    /// Handle to the sampled tuple.
    pub handle: TupleHandle,
    /// The expression value observed at the previous occasion.
    pub prev_value: f64,
}

/// The result of revisiting the retained portion of a panel.
#[derive(Debug, Clone)]
pub struct RevisitReport {
    /// Parallel previous/current values of the retained samples that
    /// survived (still resolvable).
    pub prev_values: Vec<f64>,
    /// Current values, parallel to `prev_values`.
    pub cur_values: Vec<f64>,
    /// Surviving entries, updated so `prev_value` is the *current* value
    /// (ready to become the next occasion's panel).
    pub survivors: Vec<PanelEntry>,
    /// How many retained samples were lost to deletion or node departure.
    pub lost: usize,
}

/// The panel: an ordered multiset of retained samples.
#[derive(Debug, Clone, Default)]
pub struct SamplePanel {
    entries: Vec<PanelEntry>,
}

impl SamplePanel {
    /// Creates an empty panel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the panel is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replaces the panel's contents.
    pub fn replace(&mut self, entries: Vec<PanelEntry>) {
        self.entries = entries;
    }

    /// Adds one entry.
    pub fn push(&mut self, entry: PanelEntry) {
        self.entries.push(entry);
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The entries.
    #[must_use]
    pub fn entries(&self) -> &[PanelEntry] {
        &self.entries
    }

    /// Revisits the first `keep` entries of the panel (the retained
    /// portion under the current replacement policy): re-evaluates each
    /// surviving tuple under `expr` and reports losses. Entries beyond
    /// `keep` are discarded (they are the replaced portion).
    ///
    /// Values that fail to evaluate (e.g. schema drift) count as lost.
    #[must_use]
    pub fn revisit(
        &self,
        db: &P2PDatabase,
        expr: &Expr,
        predicate: &Predicate,
        keep: usize,
    ) -> RevisitReport {
        let take = keep.min(self.entries.len());
        let mut report = RevisitReport {
            prev_values: Vec::with_capacity(take),
            cur_values: Vec::with_capacity(take),
            survivors: Vec::with_capacity(take),
            lost: 0,
        };
        for entry in &self.entries[..take] {
            // A retained sample survives only if it still resolves, still
            // satisfies the query predicate (it may have left the
            // aggregated sub-population), and still evaluates finitely.
            let current = db
                .read(entry.handle)
                .ok()
                .and_then(|t| match predicate.eval(t) {
                    Ok(true) => expr.eval(t).ok(),
                    _ => None,
                });
            match current {
                Some(cur) if cur.is_finite() => {
                    report.prev_values.push(entry.prev_value);
                    report.cur_values.push(cur);
                    report.survivors.push(PanelEntry {
                        handle: entry.handle,
                        prev_value: cur,
                    });
                }
                _ => report.lost += 1,
            }
        }
        report
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{Schema, Tuple};
    use digest_net::NodeId;

    fn setup() -> (P2PDatabase, Vec<TupleHandle>, Expr) {
        let mut db = P2PDatabase::new(Schema::single("a"));
        db.register_node(NodeId(0));
        db.register_node(NodeId(1));
        let handles = vec![
            db.insert(NodeId(0), Tuple::single(1.0)).unwrap(),
            db.insert(NodeId(0), Tuple::single(2.0)).unwrap(),
            db.insert(NodeId(1), Tuple::single(3.0)).unwrap(),
        ];
        let expr = Expr::first_attr(db.schema());
        (db, handles, expr)
    }

    fn panel_from(handles: &[TupleHandle], values: &[f64]) -> SamplePanel {
        let mut p = SamplePanel::new();
        for (&h, &v) in handles.iter().zip(values) {
            p.push(PanelEntry {
                handle: h,
                prev_value: v,
            });
        }
        p
    }

    #[test]
    fn revisit_reads_current_values() {
        let (mut db, handles, expr) = setup();
        let panel = panel_from(&handles, &[1.0, 2.0, 3.0]);
        // Values drift before the next occasion.
        db.update(handles[0], &[1.5]).unwrap();
        let r = panel.revisit(&db, &expr, &Predicate::True, 3);
        assert_eq!(r.lost, 0);
        assert_eq!(r.prev_values, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.cur_values, vec![1.5, 2.0, 3.0]);
        // Survivors carry the refreshed value forward.
        assert_eq!(r.survivors[0].prev_value, 1.5);
    }

    #[test]
    fn revisit_detects_deleted_tuples() {
        let (mut db, handles, expr) = setup();
        let panel = panel_from(&handles, &[1.0, 2.0, 3.0]);
        db.delete(handles[1]).unwrap();
        let r = panel.revisit(&db, &expr, &Predicate::True, 3);
        assert_eq!(r.lost, 1);
        assert_eq!(r.cur_values, vec![1.0, 3.0]);
    }

    #[test]
    fn revisit_detects_departed_nodes() {
        let (mut db, handles, expr) = setup();
        let panel = panel_from(&handles, &[1.0, 2.0, 3.0]);
        db.remove_node(NodeId(0)).unwrap();
        let r = panel.revisit(&db, &expr, &Predicate::True, 3);
        assert_eq!(r.lost, 2);
        assert_eq!(r.cur_values, vec![3.0]);
    }

    #[test]
    fn revisit_detects_slot_reuse() {
        let (mut db, handles, expr) = setup();
        let panel = panel_from(&handles, &[1.0, 2.0, 3.0]);
        // Delete and refill the slot: generation bump must make the old
        // handle stale even though the slot is occupied again.
        db.delete(handles[0]).unwrap();
        db.insert(NodeId(0), Tuple::single(99.0)).unwrap();
        let r = panel.revisit(&db, &expr, &Predicate::True, 3);
        assert_eq!(r.lost, 1);
        assert!(!r.cur_values.contains(&99.0));
    }

    #[test]
    fn revisit_respects_keep_bound() {
        let (db, handles, expr) = setup();
        let panel = panel_from(&handles, &[1.0, 2.0, 3.0]);
        let r = panel.revisit(&db, &expr, &Predicate::True, 2);
        assert_eq!(r.cur_values.len(), 2);
        let r = panel.revisit(&db, &expr, &Predicate::True, 0);
        assert!(r.cur_values.is_empty());
        let r = panel.revisit(&db, &expr, &Predicate::True, 10);
        assert_eq!(r.cur_values.len(), 3, "keep beyond panel size is clamped");
    }

    #[test]
    fn panel_mutators() {
        let (_, handles, _) = setup();
        let mut p = panel_from(&handles, &[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 3);
        p.replace(vec![PanelEntry {
            handle: handles[0],
            prev_value: 9.0,
        }]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.entries()[0].prev_value, 9.0);
        p.clear();
        assert!(p.is_empty());
    }
}
