//! The continuous-query model (paper §II).
//!
//! `SELECT op(expression) FROM R` evaluated continuously from its arrival
//! time, with user-fixed precision:
//!
//! * `δ` — resolution: the reported result must be re-evaluated whenever
//!   the true aggregate has moved by at least `δ` since the last reported
//!   update; smaller excursions may be filtered out ("held").
//! * `ε` — confidence-interval half-width: each reported estimate must
//!   satisfy `|X̂[t_u] − X[t_u]| ≤ ε` …
//! * `p` — … with probability at least `p`.
//!
//! An exact query is the degenerate `δ = ε = 0, p = 1`; Digest requires
//! strictly positive `δ`, `ε` and `p ∈ (0, 1)` (the non-degenerate regime
//! sampling can serve).

use crate::error::CoreError;
use crate::Result;
use digest_db::{Expr, Predicate};
use std::fmt;

/// The aggregate operation of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// `AVG(expression)`.
    Avg,
    /// `SUM(expression)` — estimated as `N̂ · AVG` with a sampled size
    /// estimate `N̂`.
    Sum,
    /// `COUNT(*)` — estimated as `N̂`.
    Count,
    /// `MEDIAN(expression)` — estimated by order statistics with a
    /// distribution-free confidence interval (an extension beyond the
    /// paper's operations; see `quantile_est`).
    Median,
    /// `PERCENTILE(expression, q)` — continuous approximate quantile at
    /// rank `q = q_permille / 1000`, served by the UDDSketch sweep
    /// (DESIGN.md §17); `ε` is an absolute half-width on the reported
    /// quantile value under the §II contract.
    Percentile {
        /// Quantile rank in permille, restricted to `1..=999`.
        q_permille: u16,
    },
    /// `COUNT(DISTINCT expression)` — number of distinct unit-width
    /// value cells, served by HyperLogLog++ (DESIGN.md §17); `ε` is a
    /// *relative* cardinality half-width under the §II contract.
    Distinct,
    /// `TOPK(expression, k)` — mass fraction of the `k` heaviest value
    /// cells, served by a space-saving summary (DESIGN.md §17); `ε` is
    /// an absolute half-width on the fraction under the §II contract.
    TopK {
        /// Number of heavy hitters reported, restricted to `1..=64`.
        k: u16,
    },
}

impl AggregateOp {
    /// True for the sketch-served aggregate kinds of DESIGN.md §17
    /// (`PERCENTILE`, `COUNT DISTINCT`, `TOPK`) whose snapshots are
    /// mergeable-sketch sweeps rather than §IV CLT-sized sample panels.
    #[must_use]
    pub fn is_sketch(&self) -> bool {
        matches!(
            self,
            AggregateOp::Percentile { .. } | AggregateOp::Distinct | AggregateOp::TopK { .. }
        )
    }

    /// True when the `ε` of the §II contract is interpreted as a
    /// *relative* half-width (`|X̂ − X| ≤ ε · max(X, 1)`) rather than an
    /// absolute one — the cardinality semantics of `COUNT DISTINCT`
    /// (DESIGN.md §17).
    #[must_use]
    pub fn uses_relative_epsilon(&self) -> bool {
        matches!(self, AggregateOp::Distinct)
    }

    /// The quantile rank in `[0, 1]` this operation reports, if it is an
    /// order statistic (`MEDIAN` → 0.5, `PERCENTILE` → q; §IV order-
    /// statistic extension).
    #[must_use]
    pub fn quantile_rank(&self) -> Option<f64> {
        match self {
            AggregateOp::Median => Some(0.5),
            AggregateOp::Percentile { q_permille } => Some(f64::from(*q_permille) / 1000.0),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateOp::Avg => write!(f, "AVG"),
            AggregateOp::Sum => write!(f, "SUM"),
            AggregateOp::Count => write!(f, "COUNT"),
            AggregateOp::Median => write!(f, "MEDIAN"),
            AggregateOp::Percentile { .. } => write!(f, "PERCENTILE"),
            AggregateOp::Distinct => write!(f, "COUNT DISTINCT"),
            AggregateOp::TopK { .. } => write!(f, "TOPK"),
        }
    }
}

/// The fixed precision `(δ, ε, p)` of an approximate continuous query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Resolution threshold `δ > 0`.
    pub delta: f64,
    /// Confidence-interval half-width `ε > 0`.
    pub epsilon: f64,
    /// Confidence level `p ∈ (0, 1)`.
    pub confidence: f64,
}

impl Precision {
    /// Creates and validates a precision specification.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidPrecision`] if any parameter is out of range.
    pub fn new(delta: f64, epsilon: f64, confidence: f64) -> Result<Self> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(CoreError::InvalidPrecision {
                reason: "delta must be positive and finite",
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidPrecision {
                reason: "epsilon must be positive and finite",
            });
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(CoreError::InvalidPrecision {
                reason: "confidence must be in (0, 1)",
            });
        }
        Ok(Self {
            delta,
            epsilon,
            confidence,
        })
    }

    /// The target estimator variance `v* = (ε / z_p)²` this precision
    /// demands of any asymptotically normal estimator.
    ///
    /// # Errors
    ///
    /// Propagates quantile-domain errors (unreachable for validated
    /// precisions).
    pub fn target_variance(&self) -> Result<f64> {
        Ok(digest_stats::clt::target_estimator_variance(
            self.epsilon,
            self.confidence,
        )?)
    }
}

/// A fixed-precision approximate continuous aggregate query.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// The aggregate operation.
    pub op: AggregateOp,
    /// The arithmetic expression over `R`'s attributes.
    pub expr: Expr,
    /// The `WHERE` predicate restricting the aggregated sub-population
    /// ([`Predicate::True`] = the paper's unrestricted query model).
    pub predicate: Predicate,
    /// The fixed precision `(δ, ε, p)`.
    pub precision: Precision,
}

impl ContinuousQuery {
    /// Creates a query over the whole relation.
    #[must_use]
    pub fn new(op: AggregateOp, expr: Expr, precision: Precision) -> Self {
        Self {
            op,
            expr,
            predicate: Predicate::True,
            precision,
        }
    }

    /// Convenience constructor for the common `AVG` case.
    #[must_use]
    pub fn avg(expr: Expr, precision: Precision) -> Self {
        Self::new(AggregateOp::Avg, expr, precision)
    }

    /// Restricts the query with a `WHERE` predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Oracle: the exact current answer of this query against a database
    /// (ground truth for simulation; a real peer cannot compute this).
    ///
    /// Returns `None` when the answer is undefined (e.g. `AVG`/`MEDIAN`
    /// over an empty qualifying set) or evaluation fails.
    #[must_use]
    pub fn oracle(&self, db: &digest_db::P2PDatabase) -> Option<f64> {
        match self.op {
            AggregateOp::Avg => db.exact_avg_where(&self.expr, &self.predicate).ok(),
            AggregateOp::Sum => db.exact_sum_where(&self.expr, &self.predicate).ok(),
            AggregateOp::Count => db.exact_count_where(&self.predicate).ok().map(|c| c as f64),
            AggregateOp::Median | AggregateOp::Percentile { .. } => {
                // quantile_rank is Some for both arms by construction.
                let q = self.op.quantile_rank()?;
                let mut values = Vec::new();
                for (_, tuple) in db.iter() {
                    if self.predicate.eval(tuple).ok()? {
                        values.push(self.expr.eval(tuple).ok()?);
                    }
                }
                if values.is_empty() {
                    return None;
                }
                values.sort_by(f64::total_cmp);
                digest_stats::sample_quantile(&values, q).ok()
            }
            AggregateOp::Distinct => {
                let mut cells = std::collections::BTreeSet::new();
                for (_, tuple) in db.iter() {
                    if self.predicate.eval(tuple).ok()? {
                        cells.insert(digest_sketch::value_cell(self.expr.eval(tuple).ok()?));
                    }
                }
                #[allow(clippy::cast_precision_loss)]
                Some(cells.len() as f64)
            }
            AggregateOp::TopK { k } => {
                let mut counts: std::collections::BTreeMap<i64, u64> =
                    std::collections::BTreeMap::new();
                let mut total: u64 = 0;
                for (_, tuple) in db.iter() {
                    if self.predicate.eval(tuple).ok()? {
                        let cell = digest_sketch::value_cell(self.expr.eval(tuple).ok()?);
                        *counts.entry(cell).or_insert(0) += 1;
                        total += 1;
                    }
                }
                if total == 0 {
                    return None;
                }
                let mut entries: Vec<(i64, u64)> = counts.into_iter().collect();
                entries.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then(ka.cmp(kb)));
                let top: u64 = entries.iter().take(usize::from(k)).map(|(_, c)| *c).sum();
                #[allow(clippy::cast_precision_loss)]
                Some((top as f64 / total as f64).clamp(0.0, 1.0))
            }
        }
    }
}

impl fmt::Display for ContinuousQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            // COUNT ignores its expression; render the conventional `*`.
            AggregateOp::Count => write!(f, "SELECT COUNT(*) FROM R")?,
            AggregateOp::Percentile { q_permille } => write!(
                f,
                "SELECT PERCENTILE({}, {}) FROM R",
                self.expr,
                f64::from(q_permille) / 1000.0
            )?,
            AggregateOp::Distinct => write!(f, "SELECT COUNT(DISTINCT {}) FROM R", self.expr)?,
            AggregateOp::TopK { k } => write!(f, "SELECT TOPK({}, {k}) FROM R", self.expr)?,
            _ => write!(f, "SELECT {}({}) FROM R", self.op, self.expr)?,
        }
        if !self.predicate.is_trivial() {
            write!(f, " WHERE {}", self.predicate)?;
        }
        write!(
            f,
            " [δ={}, ε={}, p={}]",
            self.precision.delta, self.precision.epsilon, self.precision.confidence
        )
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::Schema;

    #[test]
    fn precision_validation() {
        assert!(Precision::new(1.0, 1.0, 0.95).is_ok());
        assert!(Precision::new(0.0, 1.0, 0.95).is_err());
        assert!(Precision::new(-1.0, 1.0, 0.95).is_err());
        assert!(Precision::new(1.0, 0.0, 0.95).is_err());
        assert!(Precision::new(1.0, 1.0, 0.0).is_err());
        assert!(Precision::new(1.0, 1.0, 1.0).is_err());
        assert!(Precision::new(f64::NAN, 1.0, 0.95).is_err());
        assert!(Precision::new(1.0, f64::INFINITY, 0.95).is_err());
    }

    #[test]
    fn target_variance_matches_clt() {
        let p = Precision::new(1.0, 2.0, 0.95).unwrap();
        let v = p.target_variance().unwrap();
        // v* = (2/1.95996)² ≈ 1.0414.
        assert!((v - 1.0414).abs() < 1e-3, "v = {v}");
    }

    #[test]
    fn query_display_is_sql_like() {
        let schema = Schema::new(["memory", "storage"]);
        let expr = Expr::parse("memory + storage", &schema).unwrap();
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            expr,
            Precision::new(1.0, 0.5, 0.95).unwrap(),
        );
        let s = q.to_string();
        assert!(s.contains("SUM"), "{s}");
        assert!(s.contains("memory"), "{s}");
        assert!(s.contains("δ=1"), "{s}");
    }

    #[test]
    fn avg_convenience() {
        let schema = Schema::single("t");
        let q = ContinuousQuery::avg(
            Expr::first_attr(&schema),
            Precision::new(2.0, 2.0, 0.95).unwrap(),
        );
        assert_eq!(q.op, AggregateOp::Avg);
    }
}
