//! The continuous-query model (paper §II).
//!
//! `SELECT op(expression) FROM R` evaluated continuously from its arrival
//! time, with user-fixed precision:
//!
//! * `δ` — resolution: the reported result must be re-evaluated whenever
//!   the true aggregate has moved by at least `δ` since the last reported
//!   update; smaller excursions may be filtered out ("held").
//! * `ε` — confidence-interval half-width: each reported estimate must
//!   satisfy `|X̂[t_u] − X[t_u]| ≤ ε` …
//! * `p` — … with probability at least `p`.
//!
//! An exact query is the degenerate `δ = ε = 0, p = 1`; Digest requires
//! strictly positive `δ`, `ε` and `p ∈ (0, 1)` (the non-degenerate regime
//! sampling can serve).

use crate::error::CoreError;
use crate::Result;
use digest_db::{Expr, Predicate};
use std::fmt;

/// The aggregate operation of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// `AVG(expression)`.
    Avg,
    /// `SUM(expression)` — estimated as `N̂ · AVG` with a sampled size
    /// estimate `N̂`.
    Sum,
    /// `COUNT(*)` — estimated as `N̂`.
    Count,
    /// `MEDIAN(expression)` — estimated by order statistics with a
    /// distribution-free confidence interval (an extension beyond the
    /// paper's operations; see `quantile_est`).
    Median,
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateOp::Avg => write!(f, "AVG"),
            AggregateOp::Sum => write!(f, "SUM"),
            AggregateOp::Count => write!(f, "COUNT"),
            AggregateOp::Median => write!(f, "MEDIAN"),
        }
    }
}

/// The fixed precision `(δ, ε, p)` of an approximate continuous query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Resolution threshold `δ > 0`.
    pub delta: f64,
    /// Confidence-interval half-width `ε > 0`.
    pub epsilon: f64,
    /// Confidence level `p ∈ (0, 1)`.
    pub confidence: f64,
}

impl Precision {
    /// Creates and validates a precision specification.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidPrecision`] if any parameter is out of range.
    pub fn new(delta: f64, epsilon: f64, confidence: f64) -> Result<Self> {
        if !delta.is_finite() || delta <= 0.0 {
            return Err(CoreError::InvalidPrecision {
                reason: "delta must be positive and finite",
            });
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidPrecision {
                reason: "epsilon must be positive and finite",
            });
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(CoreError::InvalidPrecision {
                reason: "confidence must be in (0, 1)",
            });
        }
        Ok(Self {
            delta,
            epsilon,
            confidence,
        })
    }

    /// The target estimator variance `v* = (ε / z_p)²` this precision
    /// demands of any asymptotically normal estimator.
    ///
    /// # Errors
    ///
    /// Propagates quantile-domain errors (unreachable for validated
    /// precisions).
    pub fn target_variance(&self) -> Result<f64> {
        Ok(digest_stats::clt::target_estimator_variance(
            self.epsilon,
            self.confidence,
        )?)
    }
}

/// A fixed-precision approximate continuous aggregate query.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// The aggregate operation.
    pub op: AggregateOp,
    /// The arithmetic expression over `R`'s attributes.
    pub expr: Expr,
    /// The `WHERE` predicate restricting the aggregated sub-population
    /// ([`Predicate::True`] = the paper's unrestricted query model).
    pub predicate: Predicate,
    /// The fixed precision `(δ, ε, p)`.
    pub precision: Precision,
}

impl ContinuousQuery {
    /// Creates a query over the whole relation.
    #[must_use]
    pub fn new(op: AggregateOp, expr: Expr, precision: Precision) -> Self {
        Self {
            op,
            expr,
            predicate: Predicate::True,
            precision,
        }
    }

    /// Convenience constructor for the common `AVG` case.
    #[must_use]
    pub fn avg(expr: Expr, precision: Precision) -> Self {
        Self::new(AggregateOp::Avg, expr, precision)
    }

    /// Restricts the query with a `WHERE` predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Oracle: the exact current answer of this query against a database
    /// (ground truth for simulation; a real peer cannot compute this).
    ///
    /// Returns `None` when the answer is undefined (e.g. `AVG`/`MEDIAN`
    /// over an empty qualifying set) or evaluation fails.
    #[must_use]
    pub fn oracle(&self, db: &digest_db::P2PDatabase) -> Option<f64> {
        match self.op {
            AggregateOp::Avg => db.exact_avg_where(&self.expr, &self.predicate).ok(),
            AggregateOp::Sum => db.exact_sum_where(&self.expr, &self.predicate).ok(),
            AggregateOp::Count => db.exact_count_where(&self.predicate).ok().map(|c| c as f64),
            AggregateOp::Median => {
                let mut values = Vec::new();
                for (_, tuple) in db.iter() {
                    if self.predicate.eval(tuple).ok()? {
                        values.push(self.expr.eval(tuple).ok()?);
                    }
                }
                if values.is_empty() {
                    return None;
                }
                values.sort_by(f64::total_cmp);
                digest_stats::sample_quantile(&values, 0.5).ok()
            }
        }
    }
}

impl fmt::Display for ContinuousQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // COUNT ignores its expression; render the conventional `*`.
        if matches!(self.op, AggregateOp::Count) {
            write!(f, "SELECT COUNT(*) FROM R")?;
        } else {
            write!(f, "SELECT {}({}) FROM R", self.op, self.expr)?;
        }
        if !self.predicate.is_trivial() {
            write!(f, " WHERE {}", self.predicate)?;
        }
        write!(
            f,
            " [δ={}, ε={}, p={}]",
            self.precision.delta, self.precision.epsilon, self.precision.confidence
        )
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::Schema;

    #[test]
    fn precision_validation() {
        assert!(Precision::new(1.0, 1.0, 0.95).is_ok());
        assert!(Precision::new(0.0, 1.0, 0.95).is_err());
        assert!(Precision::new(-1.0, 1.0, 0.95).is_err());
        assert!(Precision::new(1.0, 0.0, 0.95).is_err());
        assert!(Precision::new(1.0, 1.0, 0.0).is_err());
        assert!(Precision::new(1.0, 1.0, 1.0).is_err());
        assert!(Precision::new(f64::NAN, 1.0, 0.95).is_err());
        assert!(Precision::new(1.0, f64::INFINITY, 0.95).is_err());
    }

    #[test]
    fn target_variance_matches_clt() {
        let p = Precision::new(1.0, 2.0, 0.95).unwrap();
        let v = p.target_variance().unwrap();
        // v* = (2/1.95996)² ≈ 1.0414.
        assert!((v - 1.0414).abs() < 1e-3, "v = {v}");
    }

    #[test]
    fn query_display_is_sql_like() {
        let schema = Schema::new(["memory", "storage"]);
        let expr = Expr::parse("memory + storage", &schema).unwrap();
        let q = ContinuousQuery::new(
            AggregateOp::Sum,
            expr,
            Precision::new(1.0, 0.5, 0.95).unwrap(),
        );
        let s = q.to_string();
        assert!(s.contains("SUM"), "{s}");
        assert!(s.contains("memory"), "{s}");
        assert!(s.contains("δ=1"), "{s}");
    }

    #[test]
    fn avg_convenience() {
        let schema = Schema::single("t");
        let q = ContinuousQuery::avg(
            Expr::first_attr(&schema),
            Precision::new(2.0, 2.0, 0.95).unwrap(),
        );
        assert_eq!(q.op, AggregateOp::Avg);
    }
}
