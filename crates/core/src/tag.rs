//! TAG-style in-network tree aggregation (the §VII related-work
//! comparator).
//!
//! TAG (Madden et al., OSDI 2002) aggregates *in the network*: a spanning
//! tree rooted at the querier is built once, and every epoch each node
//! combines its local partial aggregate with its children's and forwards
//! one message to its parent — `node_count − 1` messages per snapshot,
//! hard to beat on cost. The paper's §VII dismisses it for unstructured
//! P2P databases because "with its tree-based aggregation scheme, it is
//! prone to severe miscalculations due to frequent fragmentation" under
//! churn: when an interior node leaves, its whole subtree silently drops
//! out of the aggregate until the tree is rebuilt.
//!
//! This implementation reproduces exactly that behaviour: the BFS tree is
//! rebuilt only every `rebuild_interval` ticks (a rebuild floods the
//! network — `≈ 2·edges` messages); between rebuilds, nodes whose path to
//! the root passes through a departed node contribute nothing. The
//! `exp_tag` experiment measures the resulting error spikes against
//! Digest's under identical churn.

use crate::query::{AggregateOp, ContinuousQuery};
use crate::system::{QuerySystem, TickContext, TickOutcome};
use crate::Result;
use digest_net::NodeId;
use rand::RngCore;

/// Tuning of the TAG baseline.
#[derive(Debug, Clone, Copy)]
pub struct TagConfig {
    /// Ticks between full tree rebuilds (1 = rebuild every tick — highest
    /// cost, no fragmentation window).
    pub rebuild_interval: u64,
}

impl Default for TagConfig {
    fn default() -> Self {
        Self {
            rebuild_interval: 10,
        }
    }
}

/// The TAG-style tree-aggregation engine.
#[derive(Debug)]
pub struct TreeAggregationEngine {
    query: ContinuousQuery,
    config: TagConfig,
    /// `parent[id] = Some(parent_id)` for tree members (root maps to
    /// itself); `None` for nodes outside the tree.
    parent: Vec<Option<NodeId>>,
    root: Option<NodeId>,
    ticks_since_rebuild: u64,
    current_estimate: f64,
    last_reported: f64,
    total_messages: u64,
    total_snapshots: u64,
}

impl TreeAggregationEngine {
    /// Creates the engine.
    #[must_use]
    pub fn new(query: ContinuousQuery, config: TagConfig) -> Self {
        Self {
            query,
            config,
            parent: Vec::new(),
            root: None,
            ticks_since_rebuild: 0,
            current_estimate: 0.0,
            last_reported: f64::NAN,
            total_messages: 0,
            total_snapshots: 0,
        }
    }

    /// Rebuilds the BFS spanning tree from `origin`. Costs ≈ 2 messages
    /// per overlay edge (flooded tree-formation + parent acks).
    fn rebuild(&mut self, ctx: &TickContext<'_>) -> u64 {
        self.parent = vec![None; ctx.graph.id_upper_bound()];
        self.root = Some(ctx.origin);
        if let Ok(dists) = ctx.graph.bfs_distances(ctx.origin) {
            // BFS returns nodes in non-decreasing distance order; assign
            // each node the first already-attached neighbor as parent.
            let mut order = dists;
            order.sort_by_key(|&(_, d)| d);
            self.parent[ctx.origin.0 as usize] = Some(ctx.origin);
            for &(v, _) in &order {
                if self.parent[v.0 as usize].is_some() {
                    continue;
                }
                if let Some(&p) = ctx
                    .graph
                    .neighbors(v)
                    .iter()
                    .find(|nb| self.parent[nb.0 as usize].is_some())
                {
                    self.parent[v.0 as usize] = Some(p);
                }
            }
        }
        self.ticks_since_rebuild = 0;
        2 * ctx.graph.edge_count() as u64
    }

    /// Whether `node`'s path to the root survives in the current (possibly
    /// stale) tree.
    fn connected_to_root(&self, ctx: &TickContext<'_>, node: NodeId) -> bool {
        let Some(root) = self.root else {
            return false;
        };
        let mut cur = node;
        // The tree depth is bounded by the id space; guard against cycles
        // from pathological staleness anyway.
        for _ in 0..self.parent.len() + 1 {
            if !ctx.graph.contains(cur) {
                return false;
            }
            if cur == root {
                return true;
            }
            match self.parent.get(cur.0 as usize).copied().flatten() {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
        false
    }

    /// Number of nodes currently reporting through the tree.
    #[must_use]
    pub fn reporting_nodes(&self) -> usize {
        self.parent.iter().filter(|p| p.is_some()).count()
    }
}

impl QuerySystem for TreeAggregationEngine {
    fn name(&self) -> &str {
        "TAG"
    }

    fn on_tick(&mut self, ctx: &TickContext<'_>, _rng: &mut dyn RngCore) -> Result<TickOutcome> {
        let mut messages = 0u64;
        let root_lost = self.root.is_none_or(|r| !ctx.graph.contains(r));
        if root_lost || self.ticks_since_rebuild >= self.config.rebuild_interval {
            messages += self.rebuild(ctx);
        }
        self.ticks_since_rebuild += 1;

        // Epoch: every tree node sends one partial-aggregate message to
        // its parent; fragments whose path to the root is broken are lost.
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut members = 0u64;
        // Sketch kinds (DESIGN.md §17): in-network partials push every
        // qualifying value to the querier, which finalizes exactly over
        // whatever fragments stayed connected.
        let want_values = self.query.op.is_sketch();
        let mut values: Vec<f64> = Vec::new();
        for node in ctx.graph.nodes() {
            if self
                .parent
                .get(node.0 as usize)
                .copied()
                .flatten()
                .is_none()
            {
                continue; // joined after the last rebuild: not in the tree
            }
            if node != ctx.origin {
                messages += 1; // one partial aggregate up the tree
            }
            members += 1;
            if !self.connected_to_root(ctx, node) {
                continue; // fragmented subtree: data silently lost
            }
            if ctx.db.has_node(node) {
                for (handle, tuple) in ctx.db.iter().filter(|(h, _)| h.node == node) {
                    let _ = handle;
                    if !self.query.predicate.eval(tuple).unwrap_or(false) {
                        continue;
                    }
                    let value = self.query.expr.eval(tuple)?;
                    sum += value;
                    count += 1;
                    if want_values {
                        values.push(value);
                    }
                }
            }
        }
        let _ = members;

        let estimate = match self.query.op {
            AggregateOp::Avg | AggregateOp::Median => {
                if count == 0 {
                    self.current_estimate
                } else {
                    sum / count as f64
                }
            }
            AggregateOp::Sum => sum,
            AggregateOp::Count => count as f64,
            AggregateOp::Percentile { .. } => {
                if values.is_empty() {
                    self.current_estimate
                } else {
                    values.sort_by(f64::total_cmp);
                    // quantile_rank is Some for Percentile by construction.
                    let q = self.query.op.quantile_rank().unwrap_or(0.5);
                    digest_stats::sample_quantile(&values, q)
                        .map_err(digest_sampling::SamplingError::from)
                        .map_err(crate::CoreError::from)?
                }
            }
            AggregateOp::Distinct => {
                let cells: std::collections::BTreeSet<i64> = values
                    .iter()
                    .map(|v| digest_sketch::value_cell(*v))
                    .collect();
                cells.len() as f64
            }
            AggregateOp::TopK { k } => {
                if values.is_empty() {
                    self.current_estimate
                } else {
                    let mut counts: std::collections::BTreeMap<i64, u64> =
                        std::collections::BTreeMap::new();
                    for v in &values {
                        *counts.entry(digest_sketch::value_cell(*v)).or_insert(0) += 1;
                    }
                    let mut entries: Vec<(i64, u64)> = counts.into_iter().collect();
                    entries.sort_by(|(ka, ca), (kb, cb)| cb.cmp(ca).then(ka.cmp(kb)));
                    let top: u64 = entries.iter().take(usize::from(k)).map(|(_, c)| *c).sum();
                    (top as f64 / values.len() as f64).clamp(0.0, 1.0)
                }
            }
        };
        self.current_estimate = estimate;
        let updated = self.last_reported.is_nan()
            || (estimate - self.last_reported).abs() >= self.query.precision.delta;
        if updated {
            self.last_reported = estimate;
        }
        self.total_messages += messages;
        self.total_snapshots += 1;
        Ok(TickOutcome {
            estimate,
            updated,
            snapshot_executed: true,
            samples_this_tick: 0,
            fresh_samples_this_tick: 0,
            messages_this_tick: messages,
        })
    }

    fn total_messages(&self) -> u64 {
        self.total_messages
    }

    fn total_samples(&self) -> u64 {
        0
    }

    fn total_snapshots(&self) -> u64 {
        self.total_snapshots
    }

    fn oracle_truth(&self, ctx: &TickContext<'_>) -> Option<f64> {
        self.query.oracle(ctx.db)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::query::Precision;
    use digest_db::{Expr, P2PDatabase, Schema, Tuple};
    use digest_net::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn world() -> (digest_net::Graph, P2PDatabase) {
        let g = topology::mesh(4, 4, false).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        for (i, v) in g.nodes().enumerate() {
            db.register_node(v);
            db.insert(v, Tuple::single(i as f64)).unwrap();
        }
        (g, db)
    }

    fn avg_query(db: &P2PDatabase) -> ContinuousQuery {
        ContinuousQuery::avg(
            Expr::first_attr(db.schema()),
            Precision::new(1.0, 1.0, 0.95).unwrap(),
        )
    }

    #[test]
    fn exact_on_a_static_network() {
        let (g, db) = world();
        let mut tag = TreeAggregationEngine::new(avg_query(&db), TagConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let o = tag.on_tick(&ctx, &mut rng).unwrap();
        let expr = Expr::first_attr(db.schema());
        assert_eq!(o.estimate, db.exact_avg(&expr).unwrap());
        // Rebuild (2·edges) + one message per non-root node.
        assert_eq!(
            o.messages_this_tick,
            2 * g.edge_count() as u64 + (g.node_count() as u64 - 1)
        );
        // Steady state: epochs cost node_count − 1 only.
        let ctx = TickContext {
            tick: 1,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let o = tag.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o.messages_this_tick, g.node_count() as u64 - 1);
    }

    #[test]
    fn fragmentation_loses_subtrees_until_rebuild() {
        let (mut g, mut db) = world();
        let mut tag = TreeAggregationEngine::new(
            avg_query(&db),
            TagConfig {
                rebuild_interval: 100,
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let expr = Expr::first_attr(db.schema());
        {
            let ctx = TickContext {
                tick: 0,
                graph: &g,
                db: &db,
                origin: NodeId(0),
            };
            tag.on_tick(&ctx, &mut rng).unwrap();
        }

        // Remove an interior node adjacent to the root: its subtree
        // fragments.
        let victim = NodeId(1);
        g.remove_node(victim).unwrap();
        db.remove_node(victim).unwrap();
        let exact_now = db.exact_avg(&expr).unwrap();
        let ctx = TickContext {
            tick: 1,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let o = tag.on_tick(&ctx, &mut rng).unwrap();
        // TAG must now be *wrong* (subtree data lost), by more than the
        // victim's own share explains.
        assert!(
            (o.estimate - exact_now).abs() > 0.2,
            "stale tree should miscalculate: {} vs {exact_now}",
            o.estimate
        );

        // After a forced rebuild the estimate is exact again.
        let mut tag2 = TreeAggregationEngine::new(
            avg_query(&db),
            TagConfig {
                rebuild_interval: 1,
            },
        );
        let ctx = TickContext {
            tick: 2,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let o2 = tag2.on_tick(&ctx, &mut rng).unwrap();
        assert!((o2.estimate - exact_now).abs() < 1e-12);
    }

    #[test]
    fn root_departure_triggers_rebuild_from_new_origin() {
        let (mut g, mut db) = world();
        let mut tag = TreeAggregationEngine::new(avg_query(&db), TagConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        {
            let ctx = TickContext {
                tick: 0,
                graph: &g,
                db: &db,
                origin: NodeId(0),
            };
            tag.on_tick(&ctx, &mut rng).unwrap();
        }
        g.remove_node(NodeId(0)).unwrap();
        db.remove_node(NodeId(0)).unwrap();
        let expr = Expr::first_attr(db.schema());
        let ctx = TickContext {
            tick: 1,
            graph: &g,
            db: &db,
            origin: NodeId(5),
        };
        let o = tag.on_tick(&ctx, &mut rng).unwrap();
        assert_eq!(o.estimate, db.exact_avg(&expr).unwrap());
    }

    #[test]
    fn joins_are_invisible_until_rebuild() {
        let (mut g, mut db) = world();
        let mut tag = TreeAggregationEngine::new(
            avg_query(&db),
            TagConfig {
                rebuild_interval: 100,
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        {
            let ctx = TickContext {
                tick: 0,
                graph: &g,
                db: &db,
                origin: NodeId(0),
            };
            tag.on_tick(&ctx, &mut rng).unwrap();
        }
        // A newcomer with an outlier value joins.
        let newcomer = g.add_node();
        g.add_edge(newcomer, NodeId(0)).unwrap();
        db.register_node(newcomer);
        db.insert(newcomer, Tuple::single(1_000.0)).unwrap();
        let ctx = TickContext {
            tick: 1,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let o = tag.on_tick(&ctx, &mut rng).unwrap();
        // The stale tree does not see the newcomer.
        assert!(o.estimate < 100.0, "newcomer leaked into stale tree");
    }
}
