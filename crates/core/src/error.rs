//! Error type for the query-engine crate.

use std::fmt;

/// Errors produced by the query evaluation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The query's precision parameters are invalid.
    InvalidPrecision {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// Engine configuration out of range.
    InvalidConfig {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// A continuous-query statement failed to parse.
    InvalidStatement {
        /// Description of the problem.
        message: String,
    },
    /// A simulation workload's overlay graph has no live nodes, so no
    /// querying node can be elected.
    EmptyWorkload,
    /// An error from the database substrate.
    Db(digest_db::DbError),
    /// An error from the sampling operator.
    Sampling(digest_sampling::SamplingError),
    /// An error from the statistics layer.
    Stats(digest_stats::StatsError),
    /// An error from the mergeable-sketch layer.
    Sketch(digest_sketch::SketchError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidPrecision { reason } => write!(f, "invalid precision: {reason}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            CoreError::InvalidStatement { message } => {
                write!(f, "invalid query statement: {message}")
            }
            CoreError::EmptyWorkload => {
                write!(f, "workload graph has no live nodes to query from")
            }
            CoreError::Db(e) => write!(f, "database error: {e}"),
            CoreError::Sampling(e) => write!(f, "sampling error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Sketch(e) => write!(f, "sketch error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Db(e) => Some(e),
            CoreError::Sampling(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<digest_db::DbError> for CoreError {
    fn from(e: digest_db::DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<digest_sampling::SamplingError> for CoreError {
    fn from(e: digest_sampling::SamplingError) -> Self {
        CoreError::Sampling(e)
    }
}

impl From<digest_stats::StatsError> for CoreError {
    fn from(e: digest_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<digest_sketch::SketchError> for CoreError {
    fn from(e: digest_sketch::SketchError) -> Self {
        CoreError::Sketch(e)
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = digest_stats::StatsError::SingularMatrix.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = digest_db::DbError::StaleHandle.into();
        assert!(e.to_string().contains("database"));
        let e: CoreError = digest_sampling::SamplingError::EmptyGraph.into();
        assert!(e.to_string().contains("sampling"));
        let e = CoreError::InvalidPrecision {
            reason: "delta must be positive",
        };
        assert!(e.to_string().contains("delta"));
        let e = CoreError::EmptyWorkload;
        assert!(e.to_string().contains("no live nodes"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
