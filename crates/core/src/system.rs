//! The interface every continuous-query system exposes to the simulator.
//!
//! One trait covers Digest in all its scheduler/estimator combinations and
//! the push-based baselines, so experiments can drive them uniformly and
//! compare sample and message counts on equal footing.

use crate::Result;
use digest_db::P2PDatabase;
use digest_net::{Graph, NodeId};
use rand::RngCore;

/// Everything a query system may look at during one tick.
///
/// The `graph`/`db` references are the *real* distributed state; each
/// system is honour-bound to access them only in ways its real-world
/// counterpart could (Digest through sampling walks, push baselines
/// through their installed filters). Message accounting makes the cost of
/// every access explicit.
#[derive(Debug, Clone, Copy)]
pub struct TickContext<'a> {
    /// The current discrete time.
    pub tick: u64,
    /// The overlay network.
    pub graph: &'a Graph,
    /// The partitioned database.
    pub db: &'a P2PDatabase,
    /// The node where the continuous query was issued.
    pub origin: NodeId,
}

/// What happened during one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickOutcome {
    /// The system's current running estimate `X̂[t]` (held from the last
    /// update when no snapshot ran).
    pub estimate: f64,
    /// Whether the reported result was updated this tick.
    pub updated: bool,
    /// Whether a snapshot query executed this tick.
    pub snapshot_executed: bool,
    /// Samples drawn this tick (fresh + revisited).
    pub samples_this_tick: u64,
    /// Of those, samples freshly drawn through the sampling operator.
    pub fresh_samples_this_tick: u64,
    /// Node-to-node messages spent this tick.
    pub messages_this_tick: u64,
}

impl TickOutcome {
    /// An idle tick: hold the estimate, spend nothing.
    #[must_use]
    pub fn idle(estimate: f64) -> Self {
        Self {
            estimate,
            updated: false,
            snapshot_executed: false,
            samples_this_tick: 0,
            fresh_samples_this_tick: 0,
            messages_this_tick: 0,
        }
    }
}

/// A continuous-query answering system under test.
pub trait QuerySystem {
    /// Short name for experiment tables (e.g. `"PRED3+RPT"`).
    fn name(&self) -> &str;

    /// Advances the system one tick.
    ///
    /// # Errors
    ///
    /// Any engine error; the simulator aborts the run on error.
    fn on_tick(&mut self, ctx: &TickContext<'_>, rng: &mut dyn RngCore) -> Result<TickOutcome>;

    /// Total messages spent since construction.
    fn total_messages(&self) -> u64;

    /// Total samples drawn since construction (fresh + revisited; 0 for
    /// non-sampling systems).
    fn total_samples(&self) -> u64;

    /// Total snapshot queries executed since construction.
    fn total_snapshots(&self) -> u64;

    /// Oracle ground truth for the system's query at this instant, when
    /// the system knows how to compute one (simulation-only; used by the
    /// runner to verify precision). Default: `None` — the runner falls
    /// back to the workload's plain-AVG oracle.
    fn oracle_truth(&self, _ctx: &TickContext<'_>) -> Option<f64> {
        None
    }

    /// The next tick (strictly after `now`) at which this system needs
    /// to run, or `None` when it cannot predict one and must be ticked
    /// every tick (the safe default).
    ///
    /// Contract with the event-driven runner: a system reporting
    /// `Some(t)` promises that `on_tick` for every tick in `(now, t)`
    /// would have been a pure idle hold — no snapshot, no samples, no
    /// messages, no randomness — so the runner may skip straight to
    /// `t` without perturbing the replayed byte stream.
    /// Takes `&mut self` so schedule caches (e.g. the mux's lazy-deleted
    /// deadline heap) may discard stale entries while answering; the
    /// *observable* state must not change.
    fn next_due(&mut self, _now: u64) -> Option<u64> {
        None
    }

    /// Sets the worker count used to execute sampling-walk batches.
    ///
    /// Results are byte-identical for every worker count (the sampling
    /// executor derives one RNG stream per walk slot), so this only
    /// changes wall-clock behaviour. Default: no-op — non-sampling
    /// systems have no walk pool to parallelise.
    fn set_sampling_workers(&mut self, _workers: usize) {}

    /// The causal trace id of the reporting occasion that produced the
    /// current estimate (see `digest_telemetry::begin_trace`). Drivers
    /// restore this per engine segment so multi-query runs attribute
    /// every tick/audit event to the right occasion. Default: 0 (no
    /// trace) — non-instrumented systems never allocate ids.
    fn trace_id(&self) -> u64 {
        0
    }
}

/// Observes every simulation tick from the driver's vantage point —
/// after the system reacted, with the oracle's exact aggregate in hand.
/// This is the hook the guarantee auditor (`digest-audit`) attaches to:
/// it sees the same `(estimate, exact)` pair the run trace records, plus
/// full read access to the simulated database for baseline message
/// accounting. Observers must be passive — they may not mutate shared
/// state the system reads, and they consume no randomness, so attaching
/// one never perturbs a replayed run.
pub trait TickObserver {
    /// Called once per tick, after the system's `on_tick`, with the
    /// exact aggregate for the system's query at this instant.
    fn observe(&mut self, ctx: &TickContext<'_>, outcome: &TickOutcome, exact: f64);
}

/// The do-nothing observer (plain, unaudited runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl TickObserver for NoopObserver {
    fn observe(&mut self, _ctx: &TickContext<'_>, _outcome: &TickOutcome, _exact: f64) {}
}

/// Per-query tick observation for multiplexed runs: like
/// [`TickObserver`], but called once per *member query* with the member's
/// own outcome, exact value, and — when the occasion was served from a
/// coalesced sampling round — the round's trace id, so auditors can
/// account each `(δ, ε, p)` contract separately while still attributing
/// shared costs to the round that paid them. The same passivity contract
/// applies: no shared-state mutation, no randomness.
pub trait MuxObserver {
    /// Called once per member query per tick, after the mux's tick, with
    /// the exact aggregate for *that member's* query.
    fn observe_query(
        &mut self,
        query: u64,
        ctx: &TickContext<'_>,
        outcome: &TickOutcome,
        exact: f64,
        round: Option<u64>,
    );
}

/// The do-nothing multiplexed observer (plain, unaudited mux runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMuxObserver;

impl MuxObserver for NoopMuxObserver {
    fn observe_query(
        &mut self,
        _query: u64,
        _ctx: &TickContext<'_>,
        _outcome: &TickOutcome,
        _exact: f64,
        _round: Option<u64>,
    ) {
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    #[test]
    fn idle_outcome_holds_value() {
        let o = TickOutcome::idle(42.0);
        assert_eq!(o.estimate, 42.0);
        assert!(!o.updated);
        assert!(!o.snapshot_executed);
        assert_eq!(o.messages_this_tick, 0);
    }
}
