//! Parsing full continuous-query statements from text.
//!
//! The paper writes queries as SQL-flavoured statements
//! (`SELECT op(expression) FROM R`); this module accepts that form plus
//! the precision contract, so applications can take whole queries as
//! strings:
//!
//! ```text
//! SELECT AVG(temperature) FROM R
//!   WHERE station_ok = 1
//!   WITH delta = 2, epsilon = 1, confidence = 0.95
//! ```
//!
//! Keywords are case-insensitive; `p` is accepted as an alias for
//! `confidence`; commas in the `WITH` clause are optional. The relation
//! name after `FROM` is required but uninterpreted — the model is
//! single-relation (§II).

use crate::error::CoreError;
use crate::query::{AggregateOp, ContinuousQuery, Precision};
use crate::Result;
use digest_db::{Expr, Predicate, Schema};

/// Case-insensitive search for a *word* occurrence of `kw` at paren depth
/// zero; returns the byte offset.
fn find_keyword(text: &str, kw: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            c if depth == 0 && c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if text[start..i].eq_ignore_ascii_case(kw) {
                    return Some(start);
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn err(message: impl Into<String>) -> CoreError {
    CoreError::InvalidStatement {
        message: message.into(),
    }
}

/// Parses one `key = value` pair list (the `WITH` clause).
fn parse_with_clause(text: &str) -> Result<Precision> {
    let mut delta = None;
    let mut epsilon = None;
    let mut confidence = None;
    for part in text.split(',').flat_map(|s| {
        // Allow both comma- and whitespace-separated pairs by re-splitting
        // on whitespace boundaries between assignments.
        split_assignments(s)
    }) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part.split_once('=').ok_or_else(|| {
            err(format!(
                "expected `key = value` in WITH clause, got `{part}`"
            ))
        })?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| err(format!("invalid number `{}` in WITH clause", value.trim())))?;
        match key.trim().to_ascii_lowercase().as_str() {
            "delta" | "δ" => delta = Some(value),
            "epsilon" | "eps" | "ε" => epsilon = Some(value),
            "confidence" | "p" => confidence = Some(value),
            other => return Err(err(format!("unknown WITH parameter `{other}`"))),
        }
    }
    Precision::new(
        delta.ok_or_else(|| err("WITH clause must set delta"))?,
        epsilon.ok_or_else(|| err("WITH clause must set epsilon"))?,
        confidence.ok_or_else(|| err("WITH clause must set confidence (or p)"))?,
    )
}

/// Splits `"delta = 1 epsilon = 2"` into assignment-sized chunks.
fn split_assignments(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while let Some(eq) = rest.find('=') {
        // The value runs to the next key (a word followed by '='), or EOL.
        let after = &rest[eq + 1..];
        let mut value_end = after.len();
        let mut offset = 0;
        for word_start in after
            .char_indices()
            .filter(|(_, c)| c.is_alphabetic())
            .map(|(i, _)| i)
        {
            if word_start < offset {
                continue;
            }
            let word_len = after[word_start..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .count();
            let after_word = after[word_start + word_len..].trim_start();
            if after_word.starts_with('=') {
                value_end = word_start;
                break;
            }
            offset = word_start + word_len;
        }
        out.push(&rest[..eq + 1 + value_end]);
        rest = rest[eq + 1 + value_end..].trim();
        if rest.is_empty() {
            break;
        }
    }
    if out.is_empty() && !s.trim().is_empty() {
        out.push(s);
    }
    out
}

/// Strips a leading case-insensitive `DISTINCT` keyword (followed by
/// whitespace) from a `COUNT(...)` body, returning the inner expression
/// text of the DESIGN.md §17 cardinality kind.
fn strip_distinct(body: &str) -> Option<&str> {
    let head = body.get(..8)?;
    if !head.eq_ignore_ascii_case("distinct") {
        return None;
    }
    let rest = &body[8..];
    let trimmed = rest.trim_start();
    // Require a separator so attributes like `distinctness` still parse
    // as plain COUNT expressions.
    (trimmed.len() < rest.len() && !trimmed.is_empty()).then_some(trimmed)
}

/// Splits `"expr, arg"` at the last depth-zero comma (the two-argument
/// aggregate forms `PERCENTILE(expr, q)` / `TOPK(expr, k)`).
fn split_last_comma(body: &str) -> Option<(&str, &str)> {
    let mut depth = 0usize;
    let mut split = None;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => split = Some(i),
            _ => {}
        }
    }
    split.map(|i| (&body[..i], &body[i + 1..]))
}

impl ContinuousQuery {
    /// Parses a full continuous-query statement against a schema.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStatement`] for malformed statements,
    /// [`CoreError::Db`] for expression/predicate errors, and
    /// [`CoreError::InvalidPrecision`] for out-of-range precision values.
    pub fn parse(text: &str, schema: &Schema) -> Result<ContinuousQuery> {
        let text = text.trim();
        let rest = text
            .get(..6)
            .filter(|head| head.eq_ignore_ascii_case("select"))
            .map(|_| text[6..].trim_start())
            .ok_or_else(|| err("statement must start with SELECT"))?;

        // Aggregate op up to '('.
        let open = rest
            .find('(')
            .ok_or_else(|| err("expected `(` after the aggregate operation"))?;
        let op_name = rest[..open].trim().to_ascii_uppercase();
        if !matches!(
            op_name.as_str(),
            "AVG" | "SUM" | "COUNT" | "MEDIAN" | "PERCENTILE" | "TOPK"
        ) {
            return Err(err(format!("unknown aggregate operation `{op_name}`")));
        }

        // Balanced expression inside the parens.
        let body = &rest[open + 1..];
        let mut depth = 1usize;
        let mut close = None;
        for (i, c) in body.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| err("unbalanced parentheses in aggregate expression"))?;
        let expr_text = body[..close].trim();
        let (op, expr) = match op_name.as_str() {
            "AVG" => (AggregateOp::Avg, Expr::parse(expr_text, schema)?),
            "SUM" => (AggregateOp::Sum, Expr::parse(expr_text, schema)?),
            "MEDIAN" => (AggregateOp::Median, Expr::parse(expr_text, schema)?),
            "COUNT" => {
                // COUNT(*) — the expression is irrelevant to a pure
                // count; COUNT(DISTINCT expression) — the sketch-served
                // cardinality kind of DESIGN.md §17.
                if expr_text == "*" {
                    (AggregateOp::Count, Expr::first_attr(schema))
                } else if let Some(inner) = strip_distinct(expr_text) {
                    (AggregateOp::Distinct, Expr::parse(inner, schema)?)
                } else {
                    (AggregateOp::Count, Expr::parse(expr_text, schema)?)
                }
            }
            "PERCENTILE" => {
                let (inner, arg) = split_last_comma(expr_text)
                    .ok_or_else(|| err("PERCENTILE requires `(expression, rank)`"))?;
                let q: f64 = arg
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("invalid PERCENTILE rank `{}`", arg.trim())))?;
                let permille = (q * 1000.0).round();
                if !q.is_finite() || !(1.0..=999.0).contains(&permille) {
                    return Err(err("PERCENTILE rank must be in [0.001, 0.999]"));
                }
                // In [1, 999] by the guard above; the checked narrowing
                // keeps the float-discipline rule satisfied.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let permille_wide = permille as u64;
                let q_permille = u16::try_from(permille_wide)
                    .map_err(|_| err("PERCENTILE rank must be in [0.001, 0.999]"))?;
                (
                    AggregateOp::Percentile { q_permille },
                    Expr::parse(inner.trim(), schema)?,
                )
            }
            "TOPK" => {
                let (inner, arg) = split_last_comma(expr_text)
                    .ok_or_else(|| err("TOPK requires `(expression, k)`"))?;
                let k: u16 = arg
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("invalid TOPK count `{}`", arg.trim())))?;
                if !(1..=64).contains(&k) {
                    return Err(err("TOPK count must be in [1, 64]"));
                }
                (AggregateOp::TopK { k }, Expr::parse(inner.trim(), schema)?)
            }
            // Unreachable: op_name was validated above.
            other => return Err(err(format!("unknown aggregate operation `{other}`"))),
        };

        let after_expr = body[close + 1..].trim_start();

        // FROM <relation>.
        let from_pos =
            find_keyword(after_expr, "from").ok_or_else(|| err("expected FROM clause"))?;
        if !after_expr[..from_pos].trim().is_empty() {
            return Err(err("unexpected tokens between the aggregate and FROM"));
        }
        let after_from = after_expr[from_pos + 4..].trim_start();
        let rel_len = after_from
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .count();
        if rel_len == 0 {
            return Err(err("expected a relation name after FROM"));
        }
        let after_rel = after_from[rel_len..].trim_start();

        // Optional WHERE … up to WITH.
        let with_pos = find_keyword(after_rel, "with");
        let (where_text, with_text) = match (find_keyword(after_rel, "where"), with_pos) {
            (Some(wh), Some(wi)) if wh < wi => (
                Some(after_rel[wh + 5..wi].trim()),
                Some(&after_rel[wi + 4..]),
            ),
            (Some(wh), None) => (Some(after_rel[wh + 5..].trim()), None),
            (None, Some(wi)) => {
                if !after_rel[..wi].trim().is_empty() {
                    return Err(err("unexpected tokens between FROM and WITH"));
                }
                (None, Some(&after_rel[wi + 4..]))
            }
            (None, None) => {
                if !after_rel.trim().is_empty() {
                    return Err(err("unexpected trailing tokens after FROM clause"));
                }
                (None, None)
            }
            (Some(_), Some(_)) => return Err(err("WHERE must precede WITH")),
        };

        let precision = parse_with_clause(
            with_text.ok_or_else(|| err("statement must end with a WITH precision clause"))?,
        )?;
        let predicate = match where_text {
            None => Predicate::True,
            Some("") => return Err(err("empty WHERE clause")),
            Some(p) => Predicate::parse(p, schema)?,
        };

        Ok(ContinuousQuery::new(op, expr, precision).with_predicate(predicate))
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["temperature", "memory", "storage"])
    }

    #[test]
    fn parses_the_paper_style_query() {
        let q = ContinuousQuery::parse(
            "SELECT AVG(temperature) FROM R WITH delta = 2, epsilon = 1, confidence = 0.95",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Avg);
        assert!(q.predicate.is_trivial());
        assert_eq!(q.precision.delta, 2.0);
        assert_eq!(q.precision.epsilon, 1.0);
        assert_eq!(q.precision.confidence, 0.95);
    }

    #[test]
    fn parses_sum_expression_and_where() {
        let q = ContinuousQuery::parse(
            "select sum(memory + storage) from resources \
             where memory > 4 and storage >= 10 \
             with delta=1000 epsilon=500 p=0.9",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Sum);
        assert!(!q.predicate.is_trivial());
        let t = digest_db::Tuple::new(vec![0.0, 8.0, 100.0]);
        assert_eq!(q.expr.eval(&t).unwrap(), 108.0);
        assert!(q.predicate.eval(&t).unwrap());
        assert_eq!(q.precision.confidence, 0.9);
    }

    #[test]
    fn parses_median() {
        let q = ContinuousQuery::parse(
            "SELECT MEDIAN(temperature) FROM R WITH delta=2, epsilon=1, p=0.95",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Median);
        assert!(q.to_string().contains("MEDIAN"));
    }

    #[test]
    fn parses_percentile_with_rank() {
        let q = ContinuousQuery::parse(
            "SELECT PERCENTILE(temperature, 0.9) FROM R WITH delta=2, epsilon=1, p=0.95",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Percentile { q_permille: 900 });
        assert_eq!(q.op.quantile_rank(), Some(0.9));
        assert!(q.to_string().contains("PERCENTILE"));
    }

    #[test]
    fn parses_count_distinct() {
        let q = ContinuousQuery::parse(
            "SELECT COUNT(DISTINCT temperature) FROM R WITH delta=2, epsilon=0.1, p=0.95",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Distinct);
        assert!(q.op.uses_relative_epsilon());
        assert!(q.to_string().contains("COUNT(DISTINCT"));
    }

    #[test]
    fn parses_topk() {
        let q = ContinuousQuery::parse(
            "select topk(memory + storage, 4) from R with delta=0.05 epsilon=0.05 p=0.9",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::TopK { k: 4 });
        assert!(q.to_string().contains("TOPK"));
    }

    #[test]
    fn sketch_forms_round_trip_through_display() {
        for statement in [
            "SELECT PERCENTILE(temperature, 0.25) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT COUNT(DISTINCT memory) FROM R WITH delta=1, epsilon=0.2, p=0.9",
            "SELECT TOPK(temperature, 3) FROM R WHERE memory > 1 WITH delta=1, epsilon=0.1, p=0.9",
        ] {
            let q = ContinuousQuery::parse(statement, &schema()).unwrap();
            let shown = q.to_string();
            let back = shown
                .replace("[δ=", "WITH delta=")
                .replace(", ε=", ", epsilon=")
                .replace(", p=", ", confidence=")
                .replace(']', "");
            let q2 = ContinuousQuery::parse(&back, &schema()).unwrap();
            assert_eq!(q2.op, q.op, "{statement}");
            assert_eq!(q2.predicate, q.predicate, "{statement}");
        }
    }

    #[test]
    fn rejects_bad_sketch_arguments() {
        let s = schema();
        for bad in [
            "SELECT PERCENTILE(temperature) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT PERCENTILE(temperature, 1.5) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT PERCENTILE(temperature, 0) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT TOPK(temperature) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT TOPK(temperature, 0) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT TOPK(temperature, 65) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT TOPK(temperature, 2.5) FROM R WITH delta=1, epsilon=1, p=0.9",
            "SELECT COUNT(DISTINCT) FROM R WITH delta=1, epsilon=1, p=0.9",
        ] {
            assert!(
                ContinuousQuery::parse(bad, &s).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn parses_count_star() {
        let q = ContinuousQuery::parse(
            "SELECT COUNT(*) FROM R WHERE memory < 8 WITH delta=10, epsilon=5, p=0.9",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Count);
        assert!(!q.predicate.is_trivial());
    }

    #[test]
    fn keywords_inside_expressions_do_not_confuse_the_parser() {
        // Attribute names containing 'from'/'where' as substrings.
        let schema = Schema::new(["fromage", "whereabouts"]);
        let q = ContinuousQuery::parse(
            "SELECT AVG(fromage) FROM R WHERE whereabouts > 0 WITH delta=1, epsilon=1, p=0.5",
            &schema,
        )
        .unwrap();
        assert!(!q.predicate.is_trivial());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let q = ContinuousQuery::parse(
            "SELECT AVG(temperature) FROM R WHERE memory > 1 WITH delta=2, epsilon=1, p=0.95",
            &schema(),
        )
        .unwrap();
        // Display format: "... [δ=2, ε=1, p=0.95]" — convert back to WITH
        // form and reparse.
        let shown = q.to_string();
        let statement = shown
            .replace("[δ=", "WITH delta=")
            .replace(", ε=", ", epsilon=")
            .replace(", p=", ", confidence=")
            .replace(']', "");
        let q2 = ContinuousQuery::parse(&statement, &schema()).unwrap();
        assert_eq!(q2.op, q.op);
        assert_eq!(q2.precision, q.precision);
        assert_eq!(q2.predicate, q.predicate);
    }

    #[test]
    fn rejects_malformed_statements() {
        let s = schema();
        for bad in [
            "",
            "AVG(temperature) FROM R WITH delta=1, epsilon=1, p=0.5",
            "SELECT MODE(temperature) FROM R WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG temperature FROM R WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(temperature FROM R WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(temperature) WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(temperature) FROM R",
            "SELECT AVG(temperature) FROM R WITH delta=1, epsilon=1",
            "SELECT AVG(temperature) FROM R WITH delta=1, epsilon=1, p=0.5, bogus=2",
            "SELECT AVG(temperature) FROM R WITH delta=one, epsilon=1, p=0.5",
            "SELECT AVG(temperature) FROM R WHERE WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(temperature) FROM R junk WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(unknown_attr) FROM R WITH delta=1, epsilon=1, p=0.5",
            "SELECT AVG(temperature) FROM R WITH delta=0, epsilon=1, p=0.5",
        ] {
            assert!(
                ContinuousQuery::parse(bad, &s).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn count_star_requires_count() {
        assert!(ContinuousQuery::parse(
            "SELECT AVG(*) FROM R WITH delta=1, epsilon=1, p=0.5",
            &schema()
        )
        .is_err());
    }

    #[test]
    fn whitespace_and_case_are_flexible() {
        let q = ContinuousQuery::parse(
            "  SeLeCt   CoUnT( * )   FrOm   r   WiTh   DELTA=3   EPSILON = 2   P=0.8  ",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.op, AggregateOp::Count);
        assert_eq!(q.precision.delta, 3.0);
        assert_eq!(q.precision.epsilon, 2.0);
    }
}
