//! Sampling-based quantile (MEDIAN) estimation.
//!
//! An extension beyond the paper's `AVG`/`SUM`/`COUNT` model (its §VIII
//! asks for "more complex aggregate queries"): the engine estimates a
//! population quantile with a *distribution-free* guarantee. Samples are
//! drawn through the same two-stage operator; after each batch the
//! order-statistic confidence interval of
//! [`digest_stats::quantile_interval`] is evaluated, and sampling stops
//! as soon as the bracket is narrower than `2ε` — so
//! `Pr(|Q̂ − Q| ≤ ε) ≥ p` holds with no assumption on the value
//! distribution (no CLT, no variance estimate).
//!
//! Repeated-sampling-style panel reuse does not transfer: regression
//! estimation corrects a *mean*, not an order statistic, so quantile
//! snapshots always draw fresh samples (the scheduler tier still applies
//! unchanged).

use crate::error::CoreError;
use crate::indep::SnapshotEstimate;
use crate::query::Precision;
use crate::system::TickContext;
use crate::Result;
use digest_db::{Expr, Predicate};
use digest_sampling::SamplingOperator;
use digest_stats::quantile_interval;
use rand::RngCore;

/// The quantile estimator — a §VIII "more complex aggregate queries"
/// extension with a distribution-free precision guarantee.
#[derive(Debug, Clone, Copy)]
pub struct QuantileEstimator {
    /// Which quantile to estimate (0.5 = median).
    pub q: f64,
    /// Samples drawn per sizing round before the stopping rule is
    /// re-evaluated.
    pub batch: usize,
    /// Hard cap on qualifying samples per snapshot.
    pub max_samples: usize,
}

impl Default for QuantileEstimator {
    fn default() -> Self {
        Self {
            q: 0.5,
            batch: 40,
            max_samples: 20_000,
        }
    }
}

impl QuantileEstimator {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] unless `0 < q < 1`, `batch ≥ 2`, and
    /// `max_samples ≥ batch`.
    pub fn new(q: f64, batch: usize, max_samples: usize) -> Result<Self> {
        if !(q > 0.0 && q < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: "quantile q must be in (0, 1)",
            });
        }
        if batch < 2 || max_samples < batch {
            return Err(CoreError::InvalidConfig {
                reason: "batch must be >= 2 and max_samples >= batch",
            });
        }
        Ok(Self {
            q,
            batch,
            max_samples,
        })
    }

    /// Evaluates one snapshot: estimates the `q`-quantile of `expr` over
    /// the qualifying sub-population, drawing until the order-statistic
    /// confidence bracket at level `p` is narrower than `2ε`.
    ///
    /// # Errors
    ///
    /// Sampling/database errors (e.g. an empty relation).
    pub fn evaluate(
        &self,
        ctx: &TickContext<'_>,
        expr: &Expr,
        predicate: &Predicate,
        precision: &Precision,
        operator: &mut SamplingOperator,
        rng: &mut dyn RngCore,
    ) -> Result<SnapshotEstimate> {
        operator.begin_occasion();
        let trivial = predicate.is_trivial();
        let mut values: Vec<f64> = Vec::with_capacity(self.batch * 2);
        let mut drawn = 0u64;
        let mut messages = 0u64;
        let max_draws = if trivial {
            self.max_samples
        } else {
            self.max_samples.saturating_mul(4)
        };

        let mut interval = None;
        while drawn < max_draws as u64 {
            for _ in 0..self.batch {
                if drawn >= max_draws as u64 {
                    break;
                }
                let (_, tuple, cost) = operator.sample_tuple(ctx.graph, ctx.db, ctx.origin, rng)?;
                messages += cost.total();
                drawn += 1;
                if !trivial && !predicate.eval(&tuple).unwrap_or(false) {
                    continue;
                }
                let value = expr.eval(&tuple)?;
                if value.is_finite() {
                    values.push(value);
                }
            }
            if values.len() < self.batch {
                continue;
            }
            values.sort_by(f64::total_cmp);
            let ci = quantile_interval(&values, self.q, precision.confidence)?;
            let done = ci.width() <= 2.0 * precision.epsilon;
            interval = Some(ci);
            if done || values.len() >= self.max_samples {
                break;
            }
        }

        let (estimate, half_width) = match interval {
            Some(ci) => (ci.estimate, ci.width() / 2.0),
            None => {
                // Nothing qualified at all.
                (0.0, f64::INFINITY)
            }
        };
        let qualifying = values.len() as u64;
        // Pseudo-variance so the engine's generic bookkeeping stays
        // meaningful: treat the bracket half-width as a z·σ̂ band.
        let z = digest_stats::z_for_confidence(precision.confidence)?;
        let pseudo_var = (half_width / z).powi(2);

        Ok(SnapshotEstimate {
            estimate,
            fresh_samples: drawn,
            revisited_samples: 0,
            messages,
            sigma_hat: pseudo_var.sqrt(),
            rho_hat: None,
            estimator_variance: pseudo_var,
            qualifying_samples: qualifying,
            selectivity: if drawn == 0 {
                1.0
            } else {
                qualifying as f64 / drawn as f64
            },
            panel_for_next: Vec::new(),
        })
    }
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use digest_db::{P2PDatabase, Schema, Tuple};
    use digest_net::{topology, NodeId};
    use digest_sampling::SamplingConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A heavily skewed population: median ≪ mean.
    fn skewed_world(seed: u64) -> (digest_net::Graph, P2PDatabase, f64) {
        let g = topology::complete(10).unwrap();
        let mut db = P2PDatabase::new(Schema::single("a"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut all = Vec::new();
        for v in g.nodes() {
            db.register_node(v);
            for _ in 0..60 {
                // Log-normal-ish: exp of a uniform spread.
                let value = (rng.gen_range(0.0..3.0f64)).exp();
                db.insert(v, Tuple::single(value)).unwrap();
                all.push(value);
            }
        }
        all.sort_by(f64::total_cmp);
        let true_median = all[all.len() / 2];
        (g, db, true_median)
    }

    #[test]
    fn config_validation() {
        assert!(QuantileEstimator::new(0.0, 10, 100).is_err());
        assert!(QuantileEstimator::new(1.0, 10, 100).is_err());
        assert!(QuantileEstimator::new(0.5, 1, 100).is_err());
        assert!(QuantileEstimator::new(0.5, 10, 5).is_err());
        assert!(QuantileEstimator::new(0.5, 10, 100).is_ok());
    }

    #[test]
    fn estimates_the_median_not_the_mean() {
        let (g, db, true_median) = skewed_world(1);
        let expr = Expr::first_attr(db.schema());
        let mean = db.exact_avg(&expr).unwrap();
        assert!(
            mean > true_median * 1.2,
            "population must be skewed: mean {mean}, median {true_median}"
        );

        let est = QuantileEstimator::default();
        let precision = Precision::new(1.0, 0.8, 0.95).unwrap();
        let mut op = SamplingOperator::new(SamplingConfig::recommended(10)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let mut hits = 0;
        for _ in 0..10 {
            let r = est
                .evaluate(&ctx, &expr, &Predicate::True, &precision, &mut op, &mut rng)
                .unwrap();
            if (r.estimate - true_median).abs() <= precision.epsilon {
                hits += 1;
            }
            assert!(
                (r.estimate - mean).abs() > 0.5,
                "median estimate {} drifted to the mean {mean}",
                r.estimate
            );
        }
        assert!(hits >= 8, "median coverage: {hits}/10");
    }

    #[test]
    fn tighter_epsilon_draws_more_samples() {
        let (g, db, _) = skewed_world(3);
        let expr = Expr::first_attr(db.schema());
        let est = QuantileEstimator::default();
        let mut op = SamplingOperator::new(SamplingConfig::recommended(10)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let loose = est
            .evaluate(
                &ctx,
                &expr,
                &Predicate::True,
                &Precision::new(1.0, 2.0, 0.95).unwrap(),
                &mut op,
                &mut rng,
            )
            .unwrap();
        let tight = est
            .evaluate(
                &ctx,
                &expr,
                &Predicate::True,
                &Precision::new(1.0, 0.3, 0.95).unwrap(),
                &mut op,
                &mut rng,
            )
            .unwrap();
        assert!(
            tight.fresh_samples > 2 * loose.fresh_samples,
            "tight {} vs loose {}",
            tight.fresh_samples,
            loose.fresh_samples
        );
    }

    #[test]
    fn respects_predicate() {
        let g = topology::complete(6).unwrap();
        let mut db = P2PDatabase::new(Schema::new(["kind", "v"]));
        for (i, node) in g.nodes().enumerate() {
            db.register_node(node);
            for j in 0..40 {
                // kind 0 values near 10, kind 1 values near 100.
                let kind = f64::from((i + j) as u32 % 2);
                let v = if kind == 0.0 { 10.0 } else { 100.0 } + j as f64 * 0.01;
                db.insert(node, Tuple::new(vec![kind, v])).unwrap();
            }
        }
        let schema = db.schema().clone();
        let expr = Expr::attr(&schema, "v").unwrap();
        let pred = Predicate::parse("kind = 1", &schema).unwrap();
        let est = QuantileEstimator::default();
        let mut op = SamplingOperator::new(SamplingConfig::recommended(6)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ctx = TickContext {
            tick: 0,
            graph: &g,
            db: &db,
            origin: NodeId(0),
        };
        let r = est
            .evaluate(
                &ctx,
                &expr,
                &pred,
                &Precision::new(1.0, 0.5, 0.9).unwrap(),
                &mut op,
                &mut rng,
            )
            .unwrap();
        assert!(
            (r.estimate - 100.2).abs() < 1.0,
            "median of kind-1 values: {}",
            r.estimate
        );
        assert!(
            (r.selectivity - 0.5).abs() < 0.15,
            "selectivity {}",
            r.selectivity
        );
    }
}
