//! The sketch sweep estimator: per-node mergeable sketches with
//! fingerprint-cached retain/replace semantics (DESIGN.md §17).
//!
//! The paper's CLT-sized sample panels (§IV-B, Eq. 6) answer *mean-like*
//! aggregates; population statistics such as quantile values, distinct
//! cardinality, and heavy-hitter mass cannot be unbiasedly extrapolated
//! from a uniform tuple sample of unknown population size. The sketch
//! kinds therefore take a different snapshot shape: the querying node
//! sweeps the live overlay in ascending node order, each peer folds its
//! *own* fragment into a small mergeable sketch
//! ([`digest_sketch::UddSketch`] / [`digest_sketch::HllSketch`] /
//! [`digest_sketch::SpaceSavingSketch`]), and the sweep merges the
//! per-node partials into one global sketch that finalizes to the
//! scalar estimate.
//!
//! The cost model mirrors RPT's retain/replace economics (§IV-B2): each
//! node's qualifying fragment is fingerprinted, and a node whose
//! fingerprint is unchanged since the previous occasion is a *retained*
//! panel member — its cached sketch keeps contributing mass at zero
//! message cost — while changed or new nodes are *fresh* members that
//! cost one message each to re-pull. No randomness is used anywhere, so
//! sweeps replay byte-identically at any sampling worker count (R5).

use std::collections::BTreeMap;

use crate::query::{AggregateOp, ContinuousQuery};
use crate::Result;
use digest_db::{Expr, P2PDatabase, Predicate};
use digest_sketch::{HllSketch, SpaceSavingSketch, UddSketch};

/// Initial UDDSketch relative accuracy α₀ (DESIGN.md §17; fine enough
/// that the value error is dominated by the §II ε budget, coarse enough
/// to stay within the bucket cap without collapsing on the workloads).
const UDD_ALPHA0: f64 = 1e-3;

/// UDDSketch bucket cap (collapse threshold) for quantile sweeps
/// (DESIGN.md §17 sizing against the §II contract).
const UDD_MAX_BUCKETS: usize = 4096;

/// FNV-1a 64-bit offset basis for fragment fingerprints.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One sweep occasion's outcome (the sketch analogue of the §IV-B
/// snapshot estimate): the finalized scalar plus retain/replace cost
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSnapshot {
    /// Finalized estimate, or `None` when no tuple qualified (callers
    /// apply the §IV hold rule; `COUNT DISTINCT` legitimately reports 0).
    pub estimate: Option<f64>,
    /// Total qualifying tuples folded into the merged sketch.
    pub qualifying: u64,
    /// Messages charged this occasion: one per fresh (changed or new)
    /// node, zero for retained nodes — the §IV-B2 retain/replace
    /// economics applied to sweep membership.
    pub messages: u64,
    /// Nodes re-pulled this occasion (fingerprint changed or unseen).
    pub fresh_nodes: u64,
    /// Nodes whose cached sketch was reused (fingerprint unchanged).
    pub retained_nodes: u64,
}

/// Per-kind sketch configuration, sized once from the query's `(ε, p)`
/// contract (§II, Eq. 1; the kind-specific mappings of DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq)]
enum SweepKind {
    /// `MEDIAN` / `PERCENTILE`: UDDSketch at rank `q`.
    Quantile { q: f64 },
    /// `COUNT DISTINCT`: HyperLogLog++ with `2^p_bits` registers.
    Distinct { p_bits: u8 },
    /// `TOPK`: space-saving summary of `capacity` counters, reporting
    /// the top-`k` mass fraction.
    TopK { k: usize, capacity: usize },
}

/// Cached per-node partial: the fragment fingerprint that validates it
/// plus the node's sketch and qualifying count.
#[derive(Debug, Clone)]
struct NodeState {
    fingerprint: u64,
    qualifying: u64,
    sketch: NodeSketch,
}

/// The per-node mergeable partial for each sweep kind.
#[derive(Debug, Clone)]
enum NodeSketch {
    Udd(UddSketch),
    Hll(HllSketch),
    SpaceSaving(SpaceSavingSketch),
}

/// Sweep estimator for the sketch-served aggregate kinds of DESIGN.md
/// §17 (`MEDIAN`/`PERCENTILE`/`COUNT DISTINCT`/`TOPK` under the §II
/// `(ε, p)` contract), with RPT-style (§IV-B2) retained membership.
#[derive(Debug, Clone)]
pub struct SketchSweepEstimator {
    kind: SweepKind,
    nodes: BTreeMap<u32, NodeState>,
}

impl SketchSweepEstimator {
    /// Builds a sweep estimator for `query`, sizing the sketch from the
    /// query's `(ε, p)` contract per the DESIGN.md §17 mappings (HLL
    /// registers from the relative half-width via the `1.04/√m` standard
    /// error; space-saving capacity from the `k/m` mass-error bound;
    /// UDDSketch at a fixed fine α₀).
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] when `query.op` is not a
    /// sketch-served kind; sketch-layer errors for degenerate contracts.
    pub fn for_query(query: &ContinuousQuery) -> Result<Self> {
        let kind = match query.op {
            AggregateOp::Median | AggregateOp::Percentile { .. } => SweepKind::Quantile {
                // quantile_rank is Some for both arms by construction.
                q: query.op.quantile_rank().unwrap_or(0.5),
            },
            AggregateOp::Distinct => {
                let z = digest_stats::z_for_confidence(query.precision.confidence)?;
                let proto = HllSketch::for_relative_error(query.precision.epsilon, z)?;
                SweepKind::Distinct {
                    p_bits: proto.p_bits(),
                }
            }
            AggregateOp::TopK { k } => {
                let proto =
                    SpaceSavingSketch::for_mass_error(usize::from(k), query.precision.epsilon)?;
                SweepKind::TopK {
                    k: usize::from(k),
                    capacity: proto.capacity(),
                }
            }
            _ => {
                return Err(crate::CoreError::InvalidConfig {
                    reason: "sketch sweep serves only MEDIAN/PERCENTILE/DISTINCT/TOPK",
                })
            }
        };
        Ok(Self {
            kind,
            nodes: BTreeMap::new(),
        })
    }

    /// A short estimator name for engine/CLI labels (the §IV estimator
    /// taxonomy extended with the DESIGN.md §17 sweep family).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self.kind {
            SweepKind::Quantile { .. } => "SKETCH-UDD",
            SweepKind::Distinct { .. } => "SKETCH-HLL",
            SweepKind::TopK { .. } => "SKETCH-SS",
        }
    }

    fn empty_sketch(&self) -> Result<NodeSketch> {
        Ok(match self.kind {
            SweepKind::Quantile { .. } => {
                NodeSketch::Udd(UddSketch::new(UDD_ALPHA0, UDD_MAX_BUCKETS)?)
            }
            SweepKind::Distinct { p_bits } => NodeSketch::Hll(HllSketch::new(p_bits)?),
            SweepKind::TopK { capacity, .. } => {
                NodeSketch::SpaceSaving(SpaceSavingSketch::new(capacity)?)
            }
        })
    }

    /// Executes one sweep occasion against the database: revalidates
    /// every live node's fingerprint, re-pulls changed fragments,
    /// merges the per-node partials in ascending node order, and
    /// finalizes — the sketch analogue of a §IV snapshot query with
    /// §IV-B2 retain/replace cost accounting (DESIGN.md §17).
    ///
    /// # Errors
    ///
    /// Database expression/predicate evaluation errors and sketch merge
    /// errors (the latter unreachable for same-configuration partials).
    pub fn sweep(
        &mut self,
        db: &P2PDatabase,
        expr: &Expr,
        predicate: &Predicate,
    ) -> Result<SweepSnapshot> {
        let mut fresh_nodes = 0u64;
        let mut retained_nodes = 0u64;
        let live: Vec<u32> = db.nodes().map(|n| n.0).collect();

        for &node_raw in &live {
            let node = digest_net::NodeId(node_raw);
            let mut fingerprint = FNV_OFFSET;
            let mut qualifying = 0u64;
            let mut values: Vec<f64> = Vec::new();
            for tuple in db.iter_node(node) {
                if predicate.eval(tuple)? {
                    let value = expr.eval(tuple)?;
                    fingerprint = fnv_fold(fingerprint, value.to_bits());
                    qualifying = qualifying.saturating_add(1);
                    values.push(value);
                }
            }
            fingerprint = fnv_fold(fingerprint, qualifying);

            let unchanged = self
                .nodes
                .get(&node_raw)
                .is_some_and(|state| state.fingerprint == fingerprint);
            if unchanged {
                retained_nodes += 1;
                continue;
            }
            fresh_nodes += 1;
            let mut sketch = self.empty_sketch()?;
            for value in values {
                match &mut sketch {
                    NodeSketch::Udd(s) => s.accumulate(value),
                    NodeSketch::Hll(s) => s.accumulate_value(value),
                    NodeSketch::SpaceSaving(s) => {
                        s.accumulate_cell(digest_sketch::value_cell(value));
                    }
                }
            }
            self.nodes.insert(
                node_raw,
                NodeState {
                    fingerprint,
                    qualifying,
                    sketch,
                },
            );
        }

        // Drop cached members that left the overlay.
        self.nodes.retain(|raw, _| live.binary_search(raw).is_ok());

        let qualifying: u64 = self.nodes.values().map(|s| s.qualifying).sum();
        let estimate = self.finalize(qualifying)?;
        Ok(SweepSnapshot {
            estimate,
            qualifying,
            messages: fresh_nodes,
            fresh_nodes,
            retained_nodes,
        })
    }

    /// Merges the cached per-node partials (ascending node order — the
    /// byte-deterministic merge order of DESIGN.md §17) and finalizes
    /// into the kind's scalar under its §II ε-semantics.
    fn finalize(&self, qualifying: u64) -> Result<Option<f64>> {
        match self.kind {
            SweepKind::Quantile { q } => {
                let mut merged = UddSketch::new(UDD_ALPHA0, UDD_MAX_BUCKETS)?;
                for state in self.nodes.values() {
                    if let NodeSketch::Udd(s) = &state.sketch {
                        merged.merge(s)?;
                    }
                }
                Ok(merged.quantile(q))
            }
            SweepKind::Distinct { p_bits } => {
                if qualifying == 0 {
                    // An empty qualifying set has exactly zero distinct
                    // cells — COUNT-like, well-defined (§II).
                    return Ok(Some(0.0));
                }
                let mut merged = HllSketch::new(p_bits)?;
                for state in self.nodes.values() {
                    if let NodeSketch::Hll(s) = &state.sketch {
                        merged.merge(s)?;
                    }
                }
                Ok(Some(merged.estimate()))
            }
            SweepKind::TopK { k, capacity } => {
                let mut merged = SpaceSavingSketch::new(capacity)?;
                for state in self.nodes.values() {
                    if let NodeSketch::SpaceSaving(s) = &state.sketch {
                        merged.merge(s)?;
                    }
                }
                Ok(merged.top_k_mass(k))
            }
        }
    }
}

/// One FNV-1a fold step over a 64-bit word (byte-wise, so fingerprints
/// are platform-independent; the cache-validation hash of the §IV-B2
/// retain analogy in DESIGN.md §17 — never used for estimation).
fn fnv_fold(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_be_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
#[allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
mod tests {
    use super::*;
    use crate::query::Precision;
    use digest_db::{Schema, Tuple};
    use digest_net::NodeId;

    fn db_with(values_per_node: &[&[f64]]) -> P2PDatabase {
        let mut db = P2PDatabase::new(Schema::single("a"));
        for (i, values) in values_per_node.iter().enumerate() {
            let node = NodeId(u32::try_from(i).unwrap());
            db.register_node(node);
            for v in *values {
                db.insert(node, Tuple::single(*v)).unwrap();
            }
        }
        db
    }

    fn query(op: AggregateOp) -> ContinuousQuery {
        let schema = Schema::single("a");
        ContinuousQuery::new(
            op,
            Expr::first_attr(&schema),
            Precision::new(1.0, 0.5, 0.95).unwrap(),
        )
    }

    #[test]
    fn rejects_non_sketch_ops() {
        assert!(SketchSweepEstimator::for_query(&query(AggregateOp::Avg)).is_err());
        assert!(SketchSweepEstimator::for_query(&query(AggregateOp::Count)).is_err());
    }

    #[test]
    fn percentile_sweep_matches_oracle() {
        let db = db_with(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let q = query(AggregateOp::Percentile { q_permille: 500 });
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let snap = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        let exact = q.oracle(&db).unwrap();
        let got = snap.estimate.unwrap();
        assert!((got - exact).abs() <= 0.05, "got {got}, exact {exact}");
        assert_eq!(snap.qualifying, 9);
        assert_eq!(snap.fresh_nodes, 3);
        assert_eq!(snap.messages, 3);
    }

    #[test]
    fn distinct_sweep_counts_cells() {
        let db = db_with(&[&[1.1, 1.9, 2.5], &[2.7, 30.0, 30.2]]);
        let q = query(AggregateOp::Distinct);
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let snap = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        // Cells: 1 (×2), 2 (×2), 30 (×2) → 3 distinct. COUNT DISTINCT
        // carries *relative* ε-semantics (DESIGN.md §17): ±ε·exact.
        let exact = q.oracle(&db).unwrap();
        assert_eq!(exact, 3.0);
        let got = snap.estimate.unwrap();
        let tol = q.precision.epsilon * exact;
        assert!((got - exact).abs() <= tol, "got {got}, exact {exact}");
    }

    #[test]
    fn topk_sweep_reports_mass_fraction() {
        let db = db_with(&[&[5.2, 5.4, 5.9, 5.1], &[7.0, 8.5, 9.9, 5.3]]);
        let q = query(AggregateOp::TopK { k: 1 });
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let snap = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        // Cell 5 holds 5 of 8 tuples.
        let exact = q.oracle(&db).unwrap();
        assert_eq!(exact, 5.0 / 8.0);
        assert_eq!(snap.estimate.unwrap(), exact);
    }

    #[test]
    fn unchanged_nodes_are_retained_at_zero_cost() {
        let mut db = db_with(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let q = query(AggregateOp::Percentile { q_permille: 500 });
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let first = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert_eq!(first.fresh_nodes, 2);
        let second = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert_eq!(second.fresh_nodes, 0);
        assert_eq!(second.retained_nodes, 2);
        assert_eq!(second.messages, 0);
        assert_eq!(second.estimate, first.estimate);
        // Mutate one node: only that node is re-pulled.
        db.insert(NodeId(1), Tuple::single(100.0)).unwrap();
        let third = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert_eq!(third.fresh_nodes, 1);
        assert_eq!(third.retained_nodes, 1);
        assert_eq!(third.messages, 1);
    }

    #[test]
    fn departed_nodes_drop_out() {
        let mut db = db_with(&[&[1.0], &[50.0]]);
        let q = query(AggregateOp::Distinct);
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let first = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert!((first.estimate.unwrap() - 2.0).abs() < 0.5);
        db.remove_node(NodeId(1)).unwrap();
        let second = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert!((second.estimate.unwrap() - 1.0).abs() < 0.5);
        assert_eq!(second.qualifying, 1);
    }

    #[test]
    fn empty_database_holds_for_order_statistics() {
        let db = P2PDatabase::new(Schema::single("a"));
        let q = query(AggregateOp::Percentile { q_permille: 900 });
        let mut est = SketchSweepEstimator::for_query(&q).unwrap();
        let snap = est.sweep(&db, &q.expr, &q.predicate).unwrap();
        assert!(snap.estimate.is_none());
        let qd = query(AggregateOp::Distinct);
        let mut est = SketchSweepEstimator::for_query(&qd).unwrap();
        let snap = est.sweep(&db, &qd.expr, &qd.predicate).unwrap();
        assert_eq!(snap.estimate, Some(0.0));
    }
}
