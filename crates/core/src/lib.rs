//! # digest-core
//!
//! The top tier of Digest: the query evaluation engine for fixed-precision
//! approximate continuous aggregate queries (paper §II, §IV).
//!
//! A continuous query `SELECT op(expression) FROM R` with precision
//! `(δ, ε, p)` is answered by *continual-approximate snapshot queries*:
//!
//! * **when** to run the next snapshot is decided by a
//!   [`scheduler`] — either every tick (`ALL`) or by the `PRED-k`
//!   Taylor extrapolation of §IV-A, which skips ticks while the predicted
//!   drift plus the Lagrange remainder stays below `δ`;
//! * **how many samples** each snapshot draws is decided by an
//!   [estimator](rpt) — either classical independent sampling (`INDEP`,
//!   §IV-B1) or repeated sampling (`RPT`, §IV-B2), which retains the
//!   optimally sized part of the previous panel and combines a regression
//!   estimate with the fresh-sample mean.
//!
//! [`engine::DigestEngine`] composes a scheduler, an estimator, and the
//! bottom-tier sampling operator into the full system; [`baselines`]
//! implements the push-based comparators of the paper's §VI-B3 evaluation
//! (`ALL+ALL` flooding and the Olston-style `ALL+FILTER` adaptive
//! filters). Everything implements the [`system::QuerySystem`] trait the
//! simulator drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod engine;
pub mod error;
pub mod grouped;
pub mod indep;
pub mod mux;
pub mod panel;
pub mod quantile_est;
pub mod query;
pub mod rpt;
pub mod scheduler;
pub mod sketch_est;
pub mod statement;
pub mod system;
pub mod tag;

pub use engine::{DigestEngine, EngineConfig, EstimatorKind, SchedulerKind};
pub use error::CoreError;
pub use grouped::{GroupEstimate, GroupedEstimator, GroupedQuery, GroupedSnapshot};
pub use indep::IndependentEstimator;
pub use mux::{
    MuxConfig, MuxQueryOutcome, MuxQueryTotals, PanelKey, PanelWeight, QueryMux, RoundPlan,
    RoundPlanner,
};
pub use panel::SamplePanel;
pub use quantile_est::QuantileEstimator;
pub use query::{AggregateOp, ContinuousQuery, Precision};
pub use rpt::{ForwardCorrection, RepeatedEstimator, RptConfig};
pub use scheduler::{AllScheduler, PredScheduler, SnapshotScheduler};
pub use sketch_est::{SketchSweepEstimator, SweepSnapshot};
pub use system::{
    MuxObserver, NoopMuxObserver, NoopObserver, QuerySystem, TickContext, TickObserver, TickOutcome,
};
pub use tag::{TagConfig, TreeAggregationEngine};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
